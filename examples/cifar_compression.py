#!/usr/bin/env python
"""Reproduce the CIFAR-10 comparison (Table II) and the Fig. 2c pruning dynamics.

Cost columns are computed at the true 32x32 CIFAR geometry; accuracies come
from proxy-scale training on the synthetic CIFAR stand-in (see DESIGN.md for
the substitution rationale).

Run:  python examples/cifar_compression.py [--scale ci|small]
"""

import argparse

from repro.experiments import cifar_comparison, config_space
from repro.experiments.paper_values import HEADLINE_CLAIMS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", choices=["ci", "small"],
                        help="size of the proxy training runs behind the accuracy column")
    parser.add_argument("--skip-accuracy", action="store_true",
                        help="only compute the (exact) Params / OPs columns")
    parser.add_argument("--executor", default=None,
                        help="sweep executor for the cost columns "
                             "(serial/thread/process)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker cap for the cost-column sweep")
    parser.add_argument("--stream", action="store_true",
                        help="print per-method progress while the cost "
                             "sweep's shard results stream in")
    parser.add_argument("--cache", default=None,
                        choices=["off", "read", "write", "readwrite"],
                        help="result cache policy for the cost-column sweep "
                             "(store: REPRO_CACHE_DIR or the default dir)")
    args = parser.parse_args()

    print("=" * 72)
    print("Table II — pruned CNNs on CIFAR-10 (conv layers only)")
    print("=" * 72)
    result = cifar_comparison.run(scale=args.scale,
                                  measure_accuracy=not args.skip_accuracy,
                                  workers=args.workers, executor=args.executor,
                                  stream=args.stream, cache=args.cache)
    print(result.render())

    reductions = cifar_comparison.headline_reductions(result)
    print(f"\nALF vs ResNet-20: params -{reductions['params_reduction'] * 100:.0f}% "
          f"(paper -{HEADLINE_CLAIMS['params_reduction'] * 100:.0f}%), "
          f"OPs -{reductions['ops_reduction'] * 100:.0f}% "
          f"(paper -{HEADLINE_CLAIMS['ops_reduction'] * 100:.0f}%)")

    print()
    print("=" * 72)
    print("Fig. 2c — pruning dynamics (remaining filters / accuracy per variant)")
    print("=" * 72)
    curves = config_space.run_fig2c(scale=args.scale)
    for curve in curves:
        trajectory = " ".join(f"{r * 100:3.0f}" for r in curve.remaining_filters)
        print(f"{curve.label:>16}: remaining per epoch [%]: {trajectory}  "
              f"final acc {curve.final_accuracy * 100:.1f}%")


if __name__ == "__main__":
    main()
