#!/usr/bin/env python
"""Quickstart: compress a small CNN with ALF in a few lines.

The workflow is exactly the paper's: build a CNN, swap its convolutions for
ALF blocks, run the two-player training (task optimizer + per-block
autoencoder optimizers), then deploy by dropping the autoencoders and the
zeroed filters.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ALFConfig, ALFTrainer, compress_model, convert_to_alf
from repro.data import DataLoader, make_synthetic_dataset
from repro.metrics import format_count, profile_model
from repro.models import lenet
from repro.nn import Tensor
from repro.nn.utils import seed_everything


def main():
    rng = seed_everything(0)

    # 1. Data: a small synthetic image-classification task (4 classes, 12x12).
    dataset = make_synthetic_dataset(320, num_classes=4, image_shape=(1, 12, 12), seed=0)
    train, test = dataset.split(0.8)
    train_loader = DataLoader(train, batch_size=32, shuffle=True, seed=0)
    test_loader = DataLoader(test, batch_size=64)

    # 2. Model: a small CNN, then convert its convolutions to ALF blocks.
    model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
    config = ALFConfig(
        lr_task=0.05,          # task optimizer (SGD + momentum)
        lr_autoencoder=3e-2,   # per-block autoencoder optimizer
        threshold=8e-2,        # mask clipping threshold t
        pr_max=0.6,            # maximum pruning rate of the schedule
        mask_init=0.5,
    )
    blocks = convert_to_alf(model, config, rng=rng)
    print(f"Converted {len(blocks)} convolutions to ALF blocks:")
    for name, block in blocks:
        print(f"  {name}: {block.in_channels}->{block.out_channels} filters, "
              f"Ccode,max={block.ccode_max()}")

    # 3. Two-player training.
    trainer = ALFTrainer(model, config)
    history = trainer.fit(train_loader, test_loader, epochs=12)
    for stats in history.epochs[::3] + [history.final]:
        print(f"epoch {stats.epoch:2d}: loss={stats.train_loss:.3f} "
              f"val acc={stats.val_accuracy * 100:5.1f}% "
              f"remaining filters={stats.remaining_filters * 100:5.1f}% "
              f"nu_prune={stats.nu_prune_mean:.2f}")

    # 4. Deployment: drop the autoencoders and the zeroed filters.
    result = compress_model(model)
    print("\nDeployment:")
    for record in result.records:
        print(f"  {record.name}: kept {record.kept_filters}/{record.original_filters} filters "
              f"({record.filter_reduction * 100:.0f}% removed)")

    dense = lenet(num_classes=4, in_channels=1, width=8, rng=np.random.default_rng(0))
    dense_profile = profile_model(dense, (1, 12, 12))
    compressed_profile = profile_model(result.model, (1, 12, 12))
    print(f"  params: {format_count(dense_profile.total_params(), 'K')} -> "
          f"{format_count(compressed_profile.total_params(), 'K')}")
    print(f"  OPs:    {format_count(dense_profile.total_ops(), 'M')} -> "
          f"{format_count(compressed_profile.total_ops(), 'M')}")

    # 5. The compressed model is a plain dense CNN: use it like any other.
    images, labels = test_loader.full_batch()
    result.model.eval()
    predictions = np.argmax(result.model(Tensor(images)).data, axis=1)
    print(f"  compressed model accuracy: {np.mean(predictions == labels) * 100:.1f}%")


if __name__ == "__main__":
    main()
