#!/usr/bin/env python
"""Quickstart: compress a small CNN with ALF in one `repro.api.compress` call.

The unified pipeline runs the paper's whole workflow: it profiles the dense
model, swaps its convolutions for ALF blocks, runs the two-player training
(task optimizer + per-block autoencoder optimizers), deploys by dropping the
autoencoders and the zeroed filters, and reports cost + accuracy — the dense
baseline profile is carried in the report, so nothing is rebuilt here.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.api as api
from repro.core import ALFConfig
from repro.data import DataLoader, make_synthetic_dataset
from repro.metrics import format_count, format_reduction
from repro.models import lenet
from repro.nn import Tensor
from repro.nn.utils import seed_everything


def main():
    rng = seed_everything(0)

    # 1. Data: a small synthetic image-classification task (4 classes, 12x12).
    dataset = make_synthetic_dataset(320, num_classes=4, image_shape=(1, 12, 12), seed=0)
    train, test = dataset.split(0.8)
    train_loader = DataLoader(train, batch_size=32, shuffle=True, seed=0)
    test_loader = DataLoader(test, batch_size=64)

    # 2. Model + method config (paper workflow, quickstart-scale knobs).
    model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
    config = api.ALFSpec(alf=ALFConfig(
        lr_task=0.05,          # task optimizer (SGD + momentum)
        lr_autoencoder=3e-2,   # per-block autoencoder optimizer
        threshold=8e-2,        # mask clipping threshold t
        pr_max=0.6,            # maximum pruning rate of the schedule
        mask_init=0.5,
    ))

    # 3. One call: convert -> two-player training -> deploy -> report.
    report = api.compress(
        model, method="alf", config=config,
        data=(train_loader, test_loader),
        input_shape=(1, 12, 12), epochs=12, seed=0,
        hardware=None,          # Eyeriss stage not needed at 12x12 toy scale
        conv_only=False,
    )

    for stats in report.history.epochs[::3] + [report.history.final]:
        print(f"epoch {stats.epoch:2d}: loss={stats.train_loss:.3f} "
              f"val acc={stats.val_accuracy * 100:5.1f}% "
              f"remaining filters={stats.remaining_filters * 100:5.1f}% "
              f"nu_prune={stats.nu_prune_mean:.2f}")

    # 4. Deployment records: what the pipeline removed per block.
    print("\nDeployment:")
    for record in report.compressed.detail.records:
        print(f"  {record.name}: kept {record.kept_filters}/{record.original_filters} filters "
              f"({record.filter_reduction * 100:.0f}% removed)")

    # 5. The report carries the dense baseline profile — no rebuilding.
    print(f"  params: {format_count(report.dense.cost['params'], 'K')} -> "
          f"{format_count(report.cost['params'], 'K')} "
          f"({format_reduction(report.params_reduction)})")
    print(f"  OPs:    {format_count(report.dense.cost['ops'], 'M')} -> "
          f"{format_count(report.cost['ops'], 'M')} "
          f"({format_reduction(report.ops_reduction)})")
    print(f"  compressed model accuracy: {report.accuracy * 100:.1f}%")

    # 6. The compressed model is a plain dense CNN: use it like any other.
    images, labels = test_loader.full_batch()
    report.model.eval()
    predictions = np.argmax(report.model(Tensor(images)).data, axis=1)
    print(f"  re-checked on the full test batch: "
          f"{np.mean(predictions == labels) * 100:.1f}%")


if __name__ == "__main__":
    main()
