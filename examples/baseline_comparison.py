#!/usr/bin/env python
"""Compare every compression method on the same model with one sweep call.

``repro.api.run_sweep()`` evaluates the full Table II method set — magnitude
pruning, FPGM, the AMC-style agent, LCNN dictionary sharing, SVD low-rank
decomposition and ALF — on a shared ResNet-20 at CIFAR-10 geometry, with the
dense profile and the Eyeriss hardware evaluation computed once.

Run:  python examples/baseline_comparison.py [--no-hardware]
      python examples/baseline_comparison.py --executor process --workers 4
      python examples/baseline_comparison.py --executor remote --stream
"""

import argparse

import repro.api as api
from repro.metrics import format_count


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-hardware", action="store_true",
                        help="skip the Eyeriss energy/latency stage")
    parser.add_argument("--executor", default=None,
                        choices=api.available_executors(),
                        help="sweep sharding strategy (default: serial, or "
                             "REPRO_SWEEP_EXECUTOR)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker cap for thread/process/remote executors")
    parser.add_argument("--stream", action="store_true",
                        help="submit through a SweepSession and print each "
                             "method's progress as shard results stream back")
    parser.add_argument("--cache", default=None,
                        choices=api.CACHE_POLICIES,
                        help="result cache policy against the default store "
                             "(REPRO_CACHE_DIR): a second run with "
                             "--cache readwrite replays instantly")
    args = parser.parse_args()

    hardware = None if args.no_hardware else api.EYERISS_PAPER
    specs = api.table2_specs()
    with api.SweepSession(model="resnet20", hardware=hardware,
                          executor=args.executor,
                          max_workers=args.workers,
                          cache=args.cache) as session:
        if args.stream:
            session.add_progress_callback(
                api.print_progress("sweep", total=len(specs)))
        session.submit_all(specs, fail_fast=True)
        sweep = session.result()
    print(sweep.render(title="Compression methods on ResNet-20 @ CIFAR-10 geometry"))

    cheapest = min(sweep.reports, key=lambda r: r.cost["ops"])
    print(f"\nFewest operations: {cheapest.spec.display_label} "
          f"({format_count(cheapest.cost['ops'])} OPs, "
          f"{cheapest.ops_reduction:.0%} below the dense baseline)")

    front = {r.method for r in sweep.pareto()}
    print(f"Pareto front over (params, OPs): {', '.join(sorted(front))}")

    if not args.no_hardware:
        alf = sweep.by_method("alf")
        print(f"ALF on Eyeriss: -{alf.energy_reduction * 100:.0f}% energy, "
              f"-{alf.latency_reduction * 100:.0f}% latency vs. the dense ResNet-20")


if __name__ == "__main__":
    main()
