#!/usr/bin/env python
"""Compare every compression baseline against ALF on the same model.

Applies magnitude pruning, FPGM, the AMC-style agent, LCNN dictionary
sharing and SVD low-rank decomposition to a ResNet-20 and reports the
effective Params / OPs of each, next to the ALF-compressed block structure —
the Table II / Table III comparison machinery in one script.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro.baselines import (
    AMCPruner,
    FPGMPruner,
    LCNNCompressor,
    LowRankDecomposer,
    MagnitudePruner,
    effective_cost,
)
from repro.experiments import cifar_comparison
from repro.metrics import MethodResult, format_count, pareto_front, profile_model, render_table
from repro.models import resnet20


def main():
    input_shape = (3, 32, 32)
    rows = []

    baseline_model = resnet20(rng=np.random.default_rng(0))
    baseline = profile_model(baseline_model, input_shape)
    rows.append(("ResNet-20 (dense)", "—",
                 baseline.total_params(conv_only=True), baseline.total_ops(conv_only=True)))

    for pruner, ratio in [(MagnitudePruner(), 0.5), (FPGMPruner(), 0.3)]:
        model = resnet20(rng=np.random.default_rng(0))
        plan = pruner.plan(model, prune_ratio=ratio)
        cost = effective_cost(model, plan, input_shape, conv_only=True)
        rows.append((f"{pruner.method_name} (ratio {ratio})", pruner.policy,
                     cost["params"], cost["ops"]))

    model = resnet20(rng=np.random.default_rng(0))
    amc = AMCPruner(target_ops_fraction=0.49, iterations=4, population=8, seed=0)
    plan = amc.plan(model, prune_ratio=0.51)
    cost = effective_cost(model, plan, input_shape, conv_only=True)
    rows.append(("AMC (OPs budget 49%)", amc.policy, cost["params"], cost["ops"]))

    model = resnet20(rng=np.random.default_rng(0))
    lcnn = LCNNCompressor(dictionary_fraction=0.25, sparsity=3, seed=0)
    cost = lcnn.effective_cost(model, lcnn.compress(model), input_shape, conv_only=True)
    rows.append(("LCNN (dict 25%)", lcnn.policy, cost["params"], cost["ops"]))

    model = resnet20(rng=np.random.default_rng(0))
    lowrank = LowRankDecomposer(rank_fraction=0.4)
    cost = lowrank.effective_cost(model, lowrank.decompose(model), input_shape, conv_only=True)
    rows.append(("Low-rank SVD (rank 40%)", lowrank.policy, cost["params"], cost["ops"]))

    alf = cifar_comparison.alf_compressed_cost()
    rows.append(("ALF (stage-wise pruning)", "Automatic", alf["params"], alf["ops"]))

    print(render_table(
        ["Method", "Policy", "Params (conv)", "OPs (conv)"],
        [[name, policy, format_count(params), format_count(ops)]
         for name, policy, params, ops in rows],
        title="Compression baselines on ResNet-20 @ CIFAR-10 geometry"))

    results = [MethodResult(name, policy, params, ops, accuracy=0.0)
               for name, policy, params, ops in rows]
    cheapest = min(results, key=lambda r: r.ops)
    print(f"\nFewest operations: {cheapest.method} "
          f"({format_count(cheapest.ops)} OPs, "
          f"{1 - cheapest.ops / results[0].ops:.0%} below the dense baseline)")


if __name__ == "__main__":
    main()
