#!/usr/bin/env python
"""Hardware-aware evaluation of ALF compression (Fig. 3).

Runs the analytical Eyeriss model (16x16 PEs, row-stationary dataflow,
128 KB global buffer) on vanilla and ALF-compressed Plain-20 / ResNet-20 and
prints the per-layer energy breakdown (register file / global buffer / DRAM)
and latency, plus the network-level reductions the paper reports (29% energy,
41% latency).

Run:  python examples/hardware_aware_pruning.py [--arch plain20|resnet20]
"""

import argparse

from repro.experiments import hardware_breakdown
from repro.experiments.paper_values import HEADLINE_CLAIMS
from repro.hardware import EYERISS_PAPER


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arch", default="plain20", choices=["plain20", "resnet20"])
    parser.add_argument("--batch", type=int, default=16,
                        help="batch size, as used in the paper's hardware study")
    parser.add_argument("--remaining", type=float, default=0.386,
                        help="fraction of code filters kept per ALF block")
    parser.add_argument("--executor", default=None,
                        help="sweep executor (serial/thread/process)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker cap for the sweep executor")
    parser.add_argument("--profile", action="store_true",
                        help="measure per-layer wall-clock with the op "
                             "profiler next to the modeled numbers")
    parser.add_argument("--stream", action="store_true",
                        help="print the sweep session's scheduling "
                             "milestones while the evaluation runs")
    parser.add_argument("--cache", default=None,
                        choices=["off", "read", "write", "readwrite"],
                        help="result cache policy for the ALF evaluation "
                             "(store: REPRO_CACHE_DIR or the default dir)")
    args = parser.parse_args()

    spec = EYERISS_PAPER
    print(f"Accelerator: {spec.pe_rows}x{spec.pe_cols} PEs, "
          f"{spec.rf_words_per_pe} RF words/PE, "
          f"{spec.global_buffer_bytes // 1024} KB global buffer, "
          f"{spec.word_bits}-bit words")

    result = hardware_breakdown.run(architecture=args.arch, batch=args.batch,
                                    remaining_fraction=args.remaining,
                                    workers=args.workers, executor=args.executor,
                                    profile=args.profile, stream=args.stream,
                                    cache=args.cache)
    print()
    header = (f"{'Layer':>9} | {'vanilla energy':>16} | {'ALF energy':>12} | "
              f"{'vanilla latency':>15} | {'ALF latency':>12}")
    if args.profile:
        header += f" | {'t vanilla':>10} | {'t ALF':>10}"
    print(header)
    for row in result.rows:
        line = (f"{row.name:>9} | {row.vanilla_total_energy:16.3e} | "
                f"{row.alf_total_energy:12.3e} | {row.vanilla_latency:15.3e} | "
                f"{row.alf_latency:12.3e}")
        if args.profile:
            van_t = f"{row.vanilla_seconds:.3e}" if row.vanilla_seconds is not None else "-"
            alf_t = f"{row.alf_seconds:.3e}" if row.alf_seconds is not None else "-"
            line += f" | {van_t:>10} | {alf_t:>10}"
        print(line)

    summary = hardware_breakdown.summary_vs_paper(result)
    print(f"\nTotal energy reduction : {summary['measured_energy_reduction'] * 100:5.1f}% "
          f"(paper ~{HEADLINE_CLAIMS['energy_reduction'] * 100:.0f}%)")
    print(f"Total latency reduction: {summary['measured_latency_reduction'] * 100:5.1f}% "
          f"(paper ~{HEADLINE_CLAIMS['latency_reduction'] * 100:.0f}%)")

    anomalies = result.anomalous_layers()
    if anomalies:
        print(f"Layers where the compressed model is slower (cf. the conv312 anomaly): "
              f"{', '.join(anomalies)}")

    vanilla_levels = result.vanilla_report.energy_by_level()
    alf_levels = result.alf_report.energy_by_level()
    print("\nEnergy by memory level (vanilla -> ALF):")
    for level in ("register_file", "global_buffer", "dram"):
        print(f"  {level:>14}: {vanilla_levels[level]:.3e} -> {alf_levels[level]:.3e}")


if __name__ == "__main__":
    main()
