"""Straight-Through Estimator (STE) primitives as registered tape ops.

The ALF training procedure relies on the STE in two places (Eqs. 5 and 6 of
the paper):

* **Task path** — the convolution uses the autoencoder code ``Wcode``, but
  the gradient of the task loss with respect to the original filters ``W``
  must skip the encoder matmul and the Hadamard product with the pruning
  mask (otherwise zeroed mask entries would block the information flow).
  :func:`ste_bridge` builds a tape node carrying ``Wcode``'s values whose
  backward pass hands the incoming gradient to ``W`` unchanged.

* **Autoencoder path** — the pruning mask ``M`` is clipped to exactly zero
  below a threshold ``t``; the clipping indicator is non-differentiable, so
  :func:`clip_mask` passes gradients straight through the clip.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, apply_op, register_op


def _ste_bridge_fwd(source, *, values):
    return values, None


def _ste_identity_bwd(ctx, grad, needs):
    return (grad,)


def _clip_mask_fwd(mask, *, threshold):
    keep = np.abs(mask) > threshold
    return mask * keep, None


def _round_fwd(x):
    return np.round(x), None


def _sign_fwd(x):
    return np.where(x >= 0, 1.0, -1.0).astype(x.dtype, copy=False), x


def _sign_bwd(ctx, grad, needs):
    # Clip the gradient to the linear region like Hubara et al. (2016).
    return (grad * (np.abs(ctx) <= 1.0),)


_STE_BRIDGE = register_op("ste_bridge", _ste_bridge_fwd, _ste_identity_bwd)
_CLIP_MASK = register_op("clip_mask", _clip_mask_fwd, _ste_identity_bwd)
_ROUND_STE = register_op("round_ste", _round_fwd, _ste_identity_bwd)
_SIGN_STE = register_op("sign_ste", _sign_fwd, _sign_bwd)


def ste_bridge(values: np.ndarray, source: Tensor) -> Tensor:
    """Create a tensor with ``values`` whose gradient flows identically to ``source``.

    ``values`` must have the same shape as ``source``; this realizes
    ``d values / d source = I`` regardless of how ``values`` were actually
    computed (Eq. 5 of the paper).
    """
    values = np.asarray(values, dtype=source.data.dtype)
    if values.shape != source.data.shape:
        raise ValueError(
            f"STE bridge requires matching shapes, got {values.shape} vs {source.data.shape}"
        )
    return apply_op(_STE_BRIDGE, source, values=values.copy())


def clip_mask(mask: Tensor, threshold: float) -> Tensor:
    """Zero out mask entries with magnitude below ``threshold``; STE backward.

    Forward: ``Mprune = 1{|m| > t} * m``.  Backward: identity, so the mask can
    recover channels that were temporarily clipped (Sec. III-A).
    """
    return apply_op(_CLIP_MASK, mask, threshold=threshold)


def binary_indicator(mask: Tensor, threshold: float) -> np.ndarray:
    """Boolean keep/drop decision per mask entry (no gradient)."""
    return np.abs(mask.data) > threshold


def round_ste(x: Tensor) -> Tensor:
    """Round to the nearest integer with straight-through gradients.

    Not used by the core ALF algorithm but provided for the quantization
    experiments that the paper describes as orthogonal follow-up work.
    """
    return apply_op(_ROUND_STE, x)


def sign_ste(x: Tensor) -> Tensor:
    """Binarize to {-1, +1} with straight-through gradients (BNN-style)."""
    return apply_op(_SIGN_STE, x)
