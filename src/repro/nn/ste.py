"""Straight-Through Estimator (STE) primitives.

The ALF training procedure relies on the STE in two places (Eqs. 5 and 6 of
the paper):

* **Task path** — the convolution uses the autoencoder code ``Wcode``, but
  the gradient of the task loss with respect to the original filters ``W``
  must skip the encoder matmul and the Hadamard product with the pruning
  mask (otherwise zeroed mask entries would block the information flow).
  :func:`ste_bridge` builds a graph node carrying ``Wcode``'s values whose
  backward pass hands the incoming gradient to ``W`` unchanged.

* **Autoencoder path** — the pruning mask ``M`` is clipped to exactly zero
  below a threshold ``t``; the clipping indicator is non-differentiable, so
  :func:`clip_mask` passes gradients straight through the clip.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def ste_bridge(values: np.ndarray, source: Tensor) -> Tensor:
    """Create a tensor with ``values`` whose gradient flows identically to ``source``.

    ``values`` must have the same shape as ``source``; this realizes
    ``d values / d source = I`` regardless of how ``values`` were actually
    computed (Eq. 5 of the paper).
    """
    values = np.asarray(values, dtype=source.data.dtype)
    if values.shape != source.data.shape:
        raise ValueError(
            f"STE bridge requires matching shapes, got {values.shape} vs {source.data.shape}"
        )

    def backward(grad: np.ndarray) -> None:
        if source.requires_grad:
            source._accumulate_grad(grad)

    return Tensor._make(values.copy(), (source,), backward)


def clip_mask(mask: Tensor, threshold: float) -> Tensor:
    """Zero out mask entries with magnitude below ``threshold``; STE backward.

    Forward: ``Mprune = 1{|m| > t} * m``.  Backward: identity, so the mask can
    recover channels that were temporarily clipped (Sec. III-A).
    """
    keep = np.abs(mask.data) > threshold
    values = mask.data * keep

    def backward(grad: np.ndarray) -> None:
        if mask.requires_grad:
            mask._accumulate_grad(grad)

    return Tensor._make(values, (mask,), backward)


def binary_indicator(mask: Tensor, threshold: float) -> np.ndarray:
    """Boolean keep/drop decision per mask entry (no gradient)."""
    return np.abs(mask.data) > threshold


def round_ste(x: Tensor) -> Tensor:
    """Round to the nearest integer with straight-through gradients.

    Not used by the core ALF algorithm but provided for the quantization
    experiments that the paper describes as orthogonal follow-up work.
    """
    values = np.round(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(grad)

    return Tensor._make(values, (x,), backward)


def sign_ste(x: Tensor) -> Tensor:
    """Binarize to {-1, +1} with straight-through gradients (BNN-style)."""
    values = np.where(x.data >= 0, 1.0, -1.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # Clip the gradient to the linear region like Hubara et al. (2016).
            x._accumulate_grad(grad * (np.abs(x.data) <= 1.0))

    return Tensor._make(values, (x,), backward)
