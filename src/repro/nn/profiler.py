"""Layer-scoped op profiling: structured reports over the op-hook surface.

:func:`repro.nn.profile_ops` yields a raw ``{op: [calls, seconds]}`` dict;
this module grows that into a first-class subsystem:

* :class:`OpProfile` — per-op **and per-layer** call counts / wall-clock of
  one profiled phase, with top-k tables, deterministic merging and a JSON
  ``to_dict`` / ``from_dict`` wire format (how profiles travel out of
  process-pool sweep shards);
* :class:`RunProfile` — the train-vs-eval split of one compression run
  (``dense`` / ``train`` / ``eval`` phases), surfaced on
  :attr:`repro.api.CompressionReport.profile`;
* :func:`collect_profile` — the context manager filling an
  :class:`OpProfile` through a thread-local op hook;
* :func:`profile_inference` — profile a single tape-free forward pass, the
  measured-wall-clock counterpart of the modeled Eyeriss evaluation.

Layer attribution comes from the layer-scope stack ``Module.__call__``
pushes while hooks are installed (see :mod:`repro.nn.tensor`): each op is
recorded under the dot-joined module path of the innermost module call
executing it (e.g. ``"ResNet.stage1.layer0.conv1"``), or ``""`` when it
runs outside any module forward (optimizer updates, loss arithmetic at the
top level).  Profiling costs nothing when inactive — the no-hook fast path
in ``apply_op`` and ``Module.__call__`` is a single truthiness check.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from .backend import get_default_dtype
from .tensor import Tensor, add_op_hook, no_grad, remove_op_hook

#: Wire-format identifier of :meth:`OpProfile.to_dict` payloads.
PROFILE_SCHEMA = "repro-op-profile/1"
#: Wire-format identifier of :meth:`RunProfile.to_dict` payloads.
RUN_PROFILE_SCHEMA = "repro-run-profile/1"


@dataclass
class OpStat:
    """Aggregated executions of one op (within one layer or overall)."""

    calls: int = 0
    seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds

    def merge(self, other: "OpStat") -> None:
        self.calls += other.calls
        self.seconds += other.seconds


@dataclass
class OpProfile:
    """Per-op and per-layer statistics of one profiled phase.

    ``ops`` aggregates across all layers; ``layers`` maps each layer's
    module path to its own per-op breakdown.  Both dicts preserve
    first-execution order, so iterating ``layers`` walks the model in
    forward order — which is what lets the experiments align measured
    per-layer time with the hardware model's layer tables.
    """

    ops: Dict[str, OpStat] = field(default_factory=dict)
    layers: Dict[str, Dict[str, OpStat]] = field(default_factory=dict)

    # -- recording ------------------------------------------------------- #
    def record(self, op: str, seconds: float, layer: str = "") -> None:
        stat = self.ops.get(op)
        if stat is None:
            stat = self.ops[op] = OpStat()
        stat.add(seconds)
        per_layer = self.layers.get(layer)
        if per_layer is None:
            per_layer = self.layers[layer] = {}
        layer_stat = per_layer.get(op)
        if layer_stat is None:
            layer_stat = per_layer[op] = OpStat()
        layer_stat.add(seconds)

    def as_hook(self):
        """An op hook (``(name, seconds, layer)``) recording into this profile."""
        return lambda name, seconds, layer: self.record(name, seconds, layer)

    # -- aggregate views -------------------------------------------------- #
    @property
    def total_calls(self) -> int:
        return sum(stat.calls for stat in self.ops.values())

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.ops.values())

    def is_empty(self) -> bool:
        return not self.ops

    def layer_seconds(self) -> Dict[str, float]:
        """Total seconds per layer path, in first-execution order."""
        return {layer: sum(stat.seconds for stat in per_layer.values())
                for layer, per_layer in self.layers.items()}

    def top_ops(self, k: int = 10) -> List[Tuple[str, OpStat]]:
        """The ``k`` most expensive ops by total seconds (name-tiebroken)."""
        ranked = sorted(self.ops.items(), key=lambda item: (-item[1].seconds, item[0]))
        return ranked[:k]

    def top_layers(self, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` most expensive layer paths by total seconds."""
        ranked = sorted(self.layer_seconds().items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    # -- combination ------------------------------------------------------ #
    def merge(self, other: "OpProfile") -> "OpProfile":
        """Fold ``other`` into this profile in place (and return ``self``).

        Merging is order-deterministic: existing keys keep their position,
        keys new to ``self`` append in ``other``'s order — so folding shard
        profiles in spec order yields the same structure on every executor.
        """
        for op, stat in other.ops.items():
            mine = self.ops.get(op)
            if mine is None:
                self.ops[op] = OpStat(stat.calls, stat.seconds)
            else:
                mine.merge(stat)
        for layer, per_layer in other.layers.items():
            mine_layer = self.layers.setdefault(layer, {})
            for op, stat in per_layer.items():
                mine = mine_layer.get(op)
                if mine is None:
                    mine_layer[op] = OpStat(stat.calls, stat.seconds)
                else:
                    mine.merge(stat)
        return self

    # -- wire format ------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; round-trips exactly through :meth:`from_dict`."""
        return {
            "schema": PROFILE_SCHEMA,
            "ops": {op: {"calls": int(stat.calls), "seconds": float(stat.seconds)}
                    for op, stat in self.ops.items()},
            "layers": {
                layer: {op: {"calls": int(stat.calls),
                             "seconds": float(stat.seconds)}
                        for op, stat in per_layer.items()}
                for layer, per_layer in self.layers.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OpProfile":
        schema = payload.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"unsupported op-profile schema {schema!r}: expected "
                f"'{PROFILE_SCHEMA}'")
        profile = cls()
        for op, stat in payload.get("ops", {}).items():
            profile.ops[op] = OpStat(int(stat["calls"]), float(stat["seconds"]))
        for layer, per_layer in payload.get("layers", {}).items():
            profile.layers[layer] = {
                op: OpStat(int(stat["calls"]), float(stat["seconds"]))
                for op, stat in per_layer.items()
            }
        return profile

    # -- rendering --------------------------------------------------------- #
    def render_top(self, k: int = 10, title: str = "Op profile") -> str:
        """An aligned top-k table of ops and layers by wall-clock."""
        lines = [f"{title} — {self.total_calls} calls, "
                 f"{self.total_seconds * 1e3:.1f} ms total"]
        op_rows = [(op, str(stat.calls), f"{stat.seconds * 1e3:.2f}")
                   for op, stat in self.top_ops(k)]
        lines.extend(_aligned(("op", "calls", "ms"), op_rows))
        layer_rows = [(layer or "(no layer)", f"{seconds * 1e3:.2f}")
                      for layer, seconds in self.top_layers(k)]
        lines.extend(_aligned(("layer", "ms"), layer_rows))
        return "\n".join(lines)


def _aligned(headers: Tuple[str, ...],
             rows: List[Tuple[str, ...]]) -> Iterator[str]:
    # Tiny local table formatter: repro.nn must not depend on repro.metrics.
    widths = [max(len(header), *(len(row[i]) for row in rows)) if rows
              else len(header) for i, header in enumerate(headers)]
    yield "  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    for row in rows:
        yield "  " + "  ".join(cell.ljust(w) for cell, w in zip(row, widths))


def layer_op_seconds(profile: OpProfile, op: str) -> Dict[str, float]:
    """Seconds spent in ``op`` per layer path, in first-execution order.

    The experiments use this with ``op="conv2d"`` to align measured
    per-layer wall-clock with the hardware model's CONV-named layer rows:
    both walk the network's convolutions in forward order.
    """
    return {layer: per_layer[op].seconds
            for layer, per_layer in profile.layers.items() if op in per_layer}


@dataclass
class RunProfile:
    """Train-vs-eval split of one compression run's op profiles.

    ``dense``
        The dense-baseline stage (model profiling forward), present when
        the pipeline computed the baseline itself — sweep shards receive a
        precomputed baseline and leave this ``None``.
    ``train``
        The method's fit stage (two-player training, pre-train +
        fine-tune, or the cost-only mask forcing).
    ``eval``
        The accuracy probe over validation data — or, for cost-only runs,
        one profiled inference batch of the compressed model at the
        spec's hardware batch size (measured wall-clock next to the
        modeled Eyeriss numbers).
    """

    dense: Optional[OpProfile] = None
    train: Optional[OpProfile] = None
    eval: Optional[OpProfile] = None

    def phases(self) -> Dict[str, OpProfile]:
        """The non-``None`` phases, keyed by name."""
        out: Dict[str, OpProfile] = {}
        for name in ("dense", "train", "eval"):
            phase = getattr(self, name)
            if phase is not None:
                out[name] = phase
        return out

    def combined(self) -> OpProfile:
        """All phases folded into one :class:`OpProfile`."""
        merged = OpProfile()
        for phase in self.phases().values():
            merged.merge(phase)
        return merged

    # -- wire format ------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"schema": RUN_PROFILE_SCHEMA}
        payload.update({name: (None if getattr(self, name) is None
                               else getattr(self, name).to_dict())
                        for name in ("dense", "train", "eval")})
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunProfile":
        """Rebuild from :meth:`to_dict` output.

        A payload tagged with a different wire-format version is rejected
        (untagged pre-tag payloads are accepted for backward
        compatibility) — a future ``repro-run-profile/2`` must fail loudly
        instead of being misparsed.
        """
        schema = payload.get("schema", RUN_PROFILE_SCHEMA)
        if schema != RUN_PROFILE_SCHEMA:
            raise ValueError(
                f"unsupported run-profile schema {schema!r}: expected "
                f"'{RUN_PROFILE_SCHEMA}'")
        kwargs = {}
        for name in ("dense", "train", "eval"):
            phase = payload.get(name)
            kwargs[name] = None if phase is None else OpProfile.from_dict(phase)
        return cls(**kwargs)

    def render(self, k: int = 10) -> str:
        parts = [profile.render_top(k, title=f"[{name}]")
                 for name, profile in self.phases().items()]
        return "\n".join(parts) if parts else "RunProfile(empty)"


@contextmanager
def collect_profile(into: Optional[OpProfile] = None):
    """Collect a structured :class:`OpProfile` while the context is active.

    Yields the profile being filled (``into`` when given, else a fresh
    one).  Like every op hook the collection is thread-local; profile
    inside a sweep shard, not around the sweep.
    """
    profile = into if into is not None else OpProfile()
    hook = add_op_hook(profile.as_hook())
    try:
        yield profile
    finally:
        remove_op_hook(hook)


def profile_inference(model, input_shape: Tuple[int, ...],
                      batch: int = 16) -> OpProfile:
    """Profile one tape-free forward pass of ``model`` on a zeros batch.

    The model is switched to eval mode for the forward (and restored), so
    the measured pass is the inference execution the hardware model
    evaluates — per-layer wall-clock next to modeled energy / latency.

    Compiled plans profile too: anything exposing ``profile_steps`` (see
    :meth:`repro.deploy.InferencePlan.profile_steps`) is timed step by
    step, and each step is recorded under the layer path of the module
    that produced its op in the traced forward — so plan profiles line up
    with eager profiles of the same model.  A plan's batch size is baked
    at compile time; the ``batch`` argument is ignored for plans, and
    ``input_shape`` must match the compiled geometry.
    """
    profile_steps = getattr(model, "profile_steps", None)
    if profile_steps is not None:
        if tuple(input_shape) != tuple(model.input_shape):
            raise ValueError(
                f"plan was compiled for input shape {tuple(model.input_shape)}, "
                f"got {tuple(input_shape)}")
        dummy = np.zeros((model.batch,) + tuple(model.input_shape),
                         dtype=model.input_dtype)
        profile = OpProfile()
        _, timings = profile_steps(dummy)
        for name, seconds, layer in timings:
            profile.record(name, seconds, layer)
        return profile

    was_training = model.training
    model.eval()
    dummy = Tensor(np.zeros((batch,) + tuple(input_shape),
                            dtype=get_default_dtype()))
    try:
        with collect_profile() as profile, no_grad():
            model(dummy)
    finally:
        model.train(was_training)
    return profile
