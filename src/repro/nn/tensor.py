"""Reverse-mode automatic differentiation on top of numpy arrays.

The :class:`Tensor` class is the foundation of the ``repro.nn`` framework.
It wraps a ``numpy.ndarray`` and records the operations applied to it so
that :meth:`Tensor.backward` can propagate gradients through the recorded
graph.  The design follows the classic define-by-run approach used by
PyTorch: every operation returns a new :class:`Tensor` holding a closure
that knows how to push gradients to its inputs.

Only the operations required by the ALF reproduction are implemented, but
they are implemented completely (broadcasting, axis reductions, slicing)
so the rest of the library can be written naturally.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64


def set_default_dtype(dtype) -> None:
    """Set the dtype used when constructing tensors from python data."""
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = np.dtype(dtype)


def get_default_dtype():
    """Return the dtype used when constructing tensors from python data."""
    return _DEFAULT_DTYPE


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if dtype is not None and data.dtype != dtype:
            return data.astype(dtype)
        if data.dtype.kind not in "fc":
            return data.astype(_DEFAULT_DTYPE)
        return data
    return np.asarray(data, dtype=dtype or _DEFAULT_DTYPE)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting expands dimensions during the forward pass; the
    corresponding backward pass must sum gradients over the broadcast
    dimensions to recover a gradient of the original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
        dtype=None,
    ):
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple[Tensor, ...] = tuple(_prev)
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autograd machinery
    # ------------------------------------------------------------------ #
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff starting from this tensor."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Helpers to build graph nodes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...], backward: Callable) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    @staticmethod
    def as_tensor(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate_grad(unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate_grad(unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate_grad(
                    unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log explicitly")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.expand_dims(grad, -1) * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate_grad(unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad) if grad.ndim == 1 else (
                        np.swapaxes(np.expand_dims(self.data, -2), -1, -2) @ np.expand_dims(grad, -2)
                    )
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate_grad(unbroadcast(grad_other, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) @ self

    # ------------------------------------------------------------------ #
    # Elementwise math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * mask)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed only inside the interval."""
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * mask)

        return Tensor._make(data, (self,), backward)

    def maximum(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        data = np.maximum(self.data, other.data)
        mask_self = self.data >= other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(unbroadcast(grad * mask_self, self.shape))
            if other.requires_grad:
                other._accumulate_grad(unbroadcast(grad * (~mask_self), other.shape))

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [1 if i in axes else s for i, s in enumerate(self.shape)]
                g = g.reshape(shape)
            self._accumulate_grad(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [1 if i in axes else s for i, s in enumerate(self.shape)]
                g = g.reshape(shape)
                expanded = data.reshape(shape)
            mask = (self.data == expanded)
            # Split gradient equally between ties to keep the operator linear.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate_grad(mask * g / counts)

        return Tensor._make(data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad.reshape(original_shape))

        return Tensor._make(data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate_grad(full)

        return Tensor._make(data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(None) if i < self.ndim - 2 else slice(padding, -padding)
            for i in range(self.ndim)
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad[slices])

        return Tensor._make(data, (self,), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor.as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate_grad(grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor.as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate_grad(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape, requires_grad: bool = False, rng: Optional[np.random.Generator] = None) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(_DEFAULT_DTYPE), requires_grad=requires_grad)
