"""Reverse-mode automatic differentiation on an explicit recorded-op tape.

The :class:`Tensor` class is the foundation of the ``repro.nn`` framework.
It wraps an array produced by the active :mod:`repro.nn.backend` and — when
gradients are enabled — records the operation that produced it as a
:class:`TapeNode` referencing a **registered op**: a named
(forward, backward) pair in the global op registry.  :meth:`Tensor.backward`
replays the recorded tape in reverse topological order.

Compared to the previous design (one backward *closure* captured per
operation), the explicit tape buys three things:

* **Graph-free inference** — under :func:`no_grad` (or a module in eval
  mode) no tape node, context or closure is allocated at all; the forward
  pass is plain array arithmetic.
* **Registered ops** — every differentiable operation is a named entry in
  one registry (:func:`register_op`), so the backward rules live next to
  their forwards and new ops plug in uniformly (see
  :mod:`repro.nn.functional` for conv/pool, :mod:`repro.nn.ste` for the
  straight-through estimators).
* **Per-op profiling hooks** — :func:`add_op_hook` /
  :func:`profile_ops` observe every op execution (name + wall-clock + the
  executing layer's module path) with zero overhead when no hook is
  installed; :mod:`repro.nn.profiler` builds structured per-layer reports
  on top.

Only the operations required by the ALF reproduction are implemented, but
they are implemented completely (broadcasting, axis reductions, slicing)
so the rest of the library can be written naturally.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .backend import current_backend, get_default_dtype, set_default_dtype  # noqa: F401

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    # Numpy scalars (e.g. the result of a full reduction) keep their dtype
    # exactly like arrays do; only python data adopts the backend default.
    if isinstance(data, (np.ndarray, np.generic)):
        data = np.asarray(data)
        if dtype is not None and data.dtype != dtype:
            return data.astype(dtype)
        if data.dtype.kind not in "fc":
            return data.astype(get_default_dtype())
        return data
    return current_backend().asarray(data, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting expands dimensions during the forward pass; the
    corresponding backward pass must sum gradients over the broadcast
    dimensions to recover a gradient of the original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# --------------------------------------------------------------------------- #
# Grad modes
# --------------------------------------------------------------------------- #
#: Per-thread grad mode: ``None`` — default (tape recorded for tensors
#: requiring grad); ``False`` — disabled (:class:`no_grad`); ``True`` —
#: forced on (:class:`enable_grad`, overriding eval-mode inference).
#: Thread-locality means a ``no_grad`` scope in one sweep shard can never
#: turn off recording in a concurrently-training shard.
_GRAD_MODE_TLS = threading.local()


def _grad_mode() -> Optional[bool]:
    return getattr(_GRAD_MODE_TLS, "value", None)


def is_grad_enabled() -> bool:
    """Whether operations currently record tape nodes (in this thread)."""
    return _grad_mode() is not False


def grad_mode_override() -> Optional[bool]:
    """The explicit grad-mode override, or ``None`` when in the default mode."""
    return _grad_mode()


@contextmanager
def set_grad_mode(mode: Optional[bool]):
    """Scoped reinstatement of a captured grad-mode override.

    ``mode`` is a value previously read from :func:`grad_mode_override`;
    sweep workers use this to run each shard under the parent's grad mode.
    """
    previous = _grad_mode()
    _GRAD_MODE_TLS.value = mode
    try:
        yield
    finally:
        _GRAD_MODE_TLS.value = previous


class _GradSwitch:
    """Context manager / decorator flipping the thread's grad mode."""

    _state: Optional[bool] = None

    def __init__(self):
        self._previous: List[Optional[bool]] = []

    def __enter__(self):
        self._previous.append(_grad_mode())
        _GRAD_MODE_TLS.value = self._state
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_MODE_TLS.value = self._previous.pop()
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            with type(self)():
                return fn(*args, **kwargs)
        return wrapped


class no_grad(_GradSwitch):
    """Disable tape recording: forwards allocate no graph nodes at all."""

    _state = False


class enable_grad(_GradSwitch):
    """Force tape recording, overriding :class:`no_grad` and eval-mode inference."""

    _state = True


# --------------------------------------------------------------------------- #
# Registered ops and the tape
# --------------------------------------------------------------------------- #
class Op:
    """A named differentiable operation.

    ``forward(*arrays, **kwargs)`` returns ``(out_array, ctx)``;
    ``backward(ctx, grad, needs)`` returns one gradient array (or ``None``)
    per input, where ``needs[i]`` tells whether input ``i`` requires grad
    (so expensive gradients can be skipped).
    """

    __slots__ = ("name", "forward", "backward")

    def __init__(self, name: str, forward: Optional[Callable],
                 backward: Optional[Callable]):
        self.name = name
        self.forward = forward
        self.backward = backward

    def __repr__(self) -> str:
        return f"Op({self.name!r})"


_OP_REGISTRY: Dict[str, Op] = {}


def register_op(name: str, forward: Callable, backward: Callable) -> Op:
    """Register a named (forward, backward) pair; returns the :class:`Op`."""
    if name in _OP_REGISTRY:
        raise ValueError(f"op '{name}' is already registered")
    op = Op(name, forward, backward)
    _OP_REGISTRY[name] = op
    return op


def registered_ops() -> List[str]:
    return sorted(_OP_REGISTRY)


#: Sentinel op for legacy closure-style nodes created via ``Tensor._make``;
#: its tape node stores the backward closure as ``ctx``.
_CLOSURE_OP = Op("closure", None, None)


class TapeNode:
    """One recorded operation: the op, its input tensors and saved context."""

    __slots__ = ("op", "inputs", "ctx", "needs")

    def __init__(self, op: Op, inputs: Tuple["Tensor", ...], ctx,
                 needs: Tuple[bool, ...]):
        self.op = op
        self.inputs = inputs
        self.ctx = ctx
        self.needs = needs


#: Monotonic counter of tape nodes allocated since import; lets tests assert
#: that inference paths are graph-free (snapshot before / after).  Guarded
#: by a lock: concurrent training shards (thread-executor sweeps) must not
#: lose increments to interleaved read-modify-write.
_TAPE_NODES_CREATED = 0
_TAPE_COUNTER_LOCK = threading.Lock()


def _bump_tape_counter() -> None:
    global _TAPE_NODES_CREATED
    with _TAPE_COUNTER_LOCK:
        _TAPE_NODES_CREATED += 1


def tape_nodes_created() -> int:
    """Total number of tape nodes allocated so far in this process."""
    return _TAPE_NODES_CREATED


# -- profiling hooks -------------------------------------------------------- #
#: Per-thread hook lists: like the grad mode and scoped backends, hooks are
#: thread-local so a ``profile_ops`` context in one sweep shard observes
#: exactly its own ops — and a shard restoring its snapshot on exit cannot
#: clobber a hook a concurrently-running shard installed.
_OP_HOOKS_TLS = threading.local()

OpHook = Callable[[str, float, str], None]


def _op_hooks() -> List[OpHook]:
    hooks = getattr(_OP_HOOKS_TLS, "hooks", None)
    if hooks is None:
        hooks = _OP_HOOKS_TLS.hooks = []
    return hooks


def op_hooks_active() -> bool:
    """Whether any op hook is installed in the calling thread.

    This is the one check :meth:`repro.nn.Module.__call__` performs before
    pushing a layer scope — the no-profile path stays a single truthiness
    test, exactly like the hook fast path in :func:`apply_op`.
    """
    return bool(getattr(_OP_HOOKS_TLS, "hooks", None))


def add_op_hook(hook: OpHook) -> OpHook:
    """Install ``hook(op_name, seconds, layer)`` on every op run by this thread.

    ``layer`` is the executing layer's module path (dot-joined
    :func:`current_layer` of the innermost :class:`~repro.nn.Module` call),
    or ``""`` for ops executed outside any module forward.
    """
    _op_hooks().append(hook)
    return hook


def remove_op_hook(hook: OpHook) -> None:
    """Uninstall ``hook`` from this thread; a no-op when it is not installed.

    Idempotency matters: sweep shards restore their op-hook snapshot via
    :func:`restore_op_hooks` on exit, and when that reset fires *inside* an
    active :func:`profile_ops` / ``collect_profile`` context the context's
    own hook is already gone by the time its ``finally`` runs.
    """
    hooks = _op_hooks()
    try:
        hooks.remove(hook)
    except ValueError:
        pass


def installed_op_hooks() -> List[OpHook]:
    """A snapshot of the calling thread's installed op hooks."""
    return list(_op_hooks())


def restore_op_hooks(hooks: Iterable[OpHook]) -> None:
    """Reset this thread's op hooks to an :func:`installed_op_hooks` snapshot.

    Sweep shards restore the snapshot after running a spec so a hook
    installed (or leaked through an exception) inside one shard can never
    observe — or slow down — the specs that follow it.
    """
    _op_hooks()[:] = list(hooks)


# -- layer scopes ------------------------------------------------------------ #
#: Per-thread stack of module names pushed by ``Module.__call__`` while op
#: hooks are installed; :func:`apply_op` joins it into the layer path handed
#: to every hook.  Thread-local for the same reason the hooks are: a profiled
#: shard must attribute ops to *its* layers only.
_LAYER_SCOPE_TLS = threading.local()


def _layer_stack() -> List[str]:
    stack = getattr(_LAYER_SCOPE_TLS, "stack", None)
    if stack is None:
        stack = _LAYER_SCOPE_TLS.stack = []
    return stack


def push_layer_scope(name: str) -> None:
    """Enter a named layer scope (called by ``Module.__call__`` when profiling)."""
    _layer_stack().append(name)


def pop_layer_scope() -> None:
    """Leave the innermost layer scope."""
    stack = getattr(_LAYER_SCOPE_TLS, "stack", None)
    if stack:
        stack.pop()


def current_layer() -> str:
    """The executing layer's module path (``""`` outside any module forward)."""
    stack = getattr(_LAYER_SCOPE_TLS, "stack", None)
    return ".".join(stack) if stack else ""


# -- op tracing --------------------------------------------------------------- #
#: Per-thread op tracer installed by :func:`trace_ops`.  Unlike op hooks
#: (which observe only name/time/layer), a tracer receives the op object,
#: the raw input arrays, the kwargs and the output array of every executed
#: op — enough to reconstruct the dataflow graph of a forward pass.  The
#: plan compiler (:mod:`repro.deploy`) is the one consumer.
_TRACER_TLS = threading.local()


@contextmanager
def trace_ops(tracer):
    """Route every op executed by this thread through ``tracer.record``.

    ``tracer`` must expose ``record(op, input_arrays, kwargs, out_array)``;
    it is called after each forward, whatever the grad mode.  Tracers nest:
    the innermost scope wins, and the previous tracer is restored on exit.
    """
    previous = getattr(_TRACER_TLS, "tracer", None)
    _TRACER_TLS.tracer = tracer
    try:
        yield tracer
    finally:
        _TRACER_TLS.tracer = previous


@contextmanager
def profile_ops():
    """Collect per-op call counts and wall-clock while the context is active.

    Yields a dict ``{op_name: [calls, total_seconds]}`` filled in place.
    Hooks are thread-local: ops executed by other threads (e.g. parallel
    sweep shards) are not observed — profile inside the shard instead.
    For layer-resolved statistics use
    :func:`repro.nn.profiler.collect_profile`, which returns a structured
    :class:`~repro.nn.profiler.OpProfile`.
    """
    stats: Dict[str, List[float]] = {}

    def hook(name: str, seconds: float, layer: str) -> None:
        entry = stats.setdefault(name, [0, 0.0])
        entry[0] += 1
        entry[1] += seconds

    add_op_hook(hook)
    try:
        yield stats
    finally:
        remove_op_hook(hook)


def apply_op(op: Op, *inputs: "Tensor", **kwargs) -> "Tensor":
    """Execute a registered op on tensors, recording a tape node if needed."""
    arrays = tuple(t.data for t in inputs)
    hooks = getattr(_OP_HOOKS_TLS, "hooks", None)
    if hooks:
        layer = current_layer()
        start = time.perf_counter()
        data, ctx = op.forward(*arrays, **kwargs)
        elapsed = time.perf_counter() - start
        for hook in tuple(hooks):
            hook(op.name, elapsed, layer)
    else:
        data, ctx = op.forward(*arrays, **kwargs)
    tracer = getattr(_TRACER_TLS, "tracer", None)
    if tracer is not None:
        tracer.record(op, arrays, kwargs, data)
    if _grad_mode() is False:
        return Tensor(data)
    needs = tuple(t.requires_grad for t in inputs)
    if not any(needs):
        return Tensor(data)
    _bump_tape_counter()
    out = Tensor(data, requires_grad=True)
    out._node = TapeNode(op, inputs, ctx, needs)
    return out


# --------------------------------------------------------------------------- #
# Op definitions: arithmetic
# --------------------------------------------------------------------------- #
def _add_fwd(a, b):
    return a + b, (a.shape, b.shape)


def _add_bwd(ctx, grad, needs):
    sa, sb = ctx
    return (unbroadcast(grad, sa) if needs[0] else None,
            unbroadcast(grad, sb) if needs[1] else None)


def _neg_fwd(a):
    return -a, None


def _neg_bwd(ctx, grad, needs):
    return (-grad,)


def _mul_fwd(a, b):
    return a * b, (a, b)


def _mul_bwd(ctx, grad, needs):
    a, b = ctx
    return (unbroadcast(grad * b, a.shape) if needs[0] else None,
            unbroadcast(grad * a, b.shape) if needs[1] else None)


def _div_fwd(a, b):
    return a / b, (a, b)


def _div_bwd(ctx, grad, needs):
    a, b = ctx
    return (unbroadcast(grad / b, a.shape) if needs[0] else None,
            unbroadcast(-grad * a / (b ** 2), b.shape) if needs[1] else None)


def _pow_fwd(a, *, exponent):
    return a ** exponent, (a, exponent)


def _pow_bwd(ctx, grad, needs):
    a, exponent = ctx
    return (grad * exponent * a ** (exponent - 1),)


def _matmul_fwd(a, b):
    return current_backend().matmul(a, b), (a, b)


def _matmul_bwd(ctx, grad, needs):
    a, b = ctx
    grad_a = grad_b = None
    if needs[0]:
        if b.ndim == 1:
            grad_a = np.expand_dims(grad, -1) * b
        else:
            grad_a = grad @ np.swapaxes(b, -1, -2)
        grad_a = unbroadcast(grad_a, a.shape)
    if needs[1]:
        if a.ndim == 1:
            grad_b = np.outer(a, grad) if grad.ndim == 1 else (
                np.swapaxes(np.expand_dims(a, -2), -1, -2) @ np.expand_dims(grad, -2)
            )
        else:
            grad_b = np.swapaxes(a, -1, -2) @ grad
        grad_b = unbroadcast(grad_b, b.shape)
    return (grad_a, grad_b)


_ADD = register_op("add", _add_fwd, _add_bwd)
_NEG = register_op("neg", _neg_fwd, _neg_bwd)
_MUL = register_op("mul", _mul_fwd, _mul_bwd)
_DIV = register_op("div", _div_fwd, _div_bwd)
_POW = register_op("pow", _pow_fwd, _pow_bwd)
_MATMUL = register_op("matmul", _matmul_fwd, _matmul_bwd)


# --------------------------------------------------------------------------- #
# Op definitions: elementwise math
# --------------------------------------------------------------------------- #
def _exp_fwd(a):
    out = np.exp(a)
    return out, out


def _exp_bwd(ctx, grad, needs):
    return (grad * ctx,)


def _log_fwd(a):
    return np.log(a), a


def _log_bwd(ctx, grad, needs):
    return (grad / ctx,)


def _abs_fwd(a):
    return np.abs(a), a


def _abs_bwd(ctx, grad, needs):
    return (grad * np.sign(ctx),)


def _tanh_fwd(a):
    out = np.tanh(a)
    return out, out


def _tanh_bwd(ctx, grad, needs):
    return (grad * (1.0 - ctx ** 2),)


def _sigmoid_fwd(a):
    out = 1.0 / (1.0 + np.exp(-a))
    return out, out


def _sigmoid_bwd(ctx, grad, needs):
    return (grad * ctx * (1.0 - ctx),)


def _relu_fwd(a):
    mask = a > 0
    return a * mask, mask


def _relu_bwd(ctx, grad, needs):
    return (grad * ctx,)


def _clip_fwd(a, *, low, high):
    return np.clip(a, low, high), (a >= low) & (a <= high)


def _clip_bwd(ctx, grad, needs):
    return (grad * ctx,)


def _maximum_fwd(a, b):
    mask_a = a >= b
    return np.maximum(a, b), (a.shape, b.shape, mask_a)


def _maximum_bwd(ctx, grad, needs):
    sa, sb, mask_a = ctx
    return (unbroadcast(grad * mask_a, sa) if needs[0] else None,
            unbroadcast(grad * (~mask_a), sb) if needs[1] else None)


_EXP = register_op("exp", _exp_fwd, _exp_bwd)
_LOG = register_op("log", _log_fwd, _log_bwd)
_ABS = register_op("abs", _abs_fwd, _abs_bwd)
_TANH = register_op("tanh", _tanh_fwd, _tanh_bwd)
_SIGMOID = register_op("sigmoid", _sigmoid_fwd, _sigmoid_bwd)
_RELU = register_op("relu", _relu_fwd, _relu_bwd)
_CLIP = register_op("clip", _clip_fwd, _clip_bwd)
_MAXIMUM = register_op("maximum", _maximum_fwd, _maximum_bwd)


# --------------------------------------------------------------------------- #
# Op definitions: reductions
# --------------------------------------------------------------------------- #
def _sum_fwd(a, *, axis, keepdims):
    return a.sum(axis=axis, keepdims=keepdims), (a.shape, a.ndim, axis, keepdims)


def _sum_bwd(ctx, grad, needs):
    shape, ndim, axis, keepdims = ctx
    g = grad
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % ndim for a in axes)
        g = g.reshape([1 if i in axes else s for i, s in enumerate(shape)])
    return (np.broadcast_to(g, shape).copy(),)


def _max_fwd(a, *, axis, keepdims):
    out = a.max(axis=axis, keepdims=keepdims)
    return out, (a, out, axis, keepdims)


def _max_bwd(ctx, grad, needs):
    a, out, axis, keepdims = ctx
    g = grad
    expanded = out
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(ax % a.ndim for ax in axes)
        shape = [1 if i in axes else s for i, s in enumerate(a.shape)]
        g = g.reshape(shape)
        expanded = out.reshape(shape)
    mask = (a == expanded)
    # Split gradient equally between ties to keep the operator linear.
    counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    return (mask * g / counts,)


_SUM = register_op("sum", _sum_fwd, _sum_bwd)
_MAX = register_op("max", _max_fwd, _max_bwd)


# --------------------------------------------------------------------------- #
# Op definitions: shape manipulation
# --------------------------------------------------------------------------- #
def _reshape_fwd(a, *, shape):
    return a.reshape(shape), a.shape


def _reshape_bwd(ctx, grad, needs):
    return (grad.reshape(ctx),)


def _transpose_fwd(a, *, axes):
    return a.transpose(axes), np.argsort(axes)


def _transpose_bwd(ctx, grad, needs):
    return (grad.transpose(ctx),)


def _getitem_fwd(a, *, index):
    return a[index], (a.shape, a.dtype, index)


def _getitem_bwd(ctx, grad, needs):
    shape, dtype, index = ctx
    full = np.zeros(shape, dtype=dtype)
    np.add.at(full, index, grad)
    return (full,)


def _pad2d_fwd(a, *, padding):
    ndim = a.ndim
    pad_width = [(0, 0)] * (ndim - 2) + [(padding, padding), (padding, padding)]
    slices = tuple(
        slice(None) if i < ndim - 2 else slice(padding, -padding)
        for i in range(ndim)
    )
    return np.pad(a, pad_width), slices


def _pad2d_bwd(ctx, grad, needs):
    return (grad[ctx],)


def _concatenate_fwd(*arrays, axis):
    sizes = [a.shape[axis] for a in arrays]
    return np.concatenate(arrays, axis=axis), (axis, np.cumsum([0] + sizes))


def _concatenate_bwd(ctx, grad, needs):
    axis, offsets = ctx
    grads = []
    for need, start, stop in zip(needs, offsets[:-1], offsets[1:]):
        if not need:
            grads.append(None)
            continue
        index = [slice(None)] * grad.ndim
        index[axis] = slice(start, stop)
        grads.append(grad[tuple(index)])
    return tuple(grads)


def _stack_fwd(*arrays, axis):
    return np.stack(arrays, axis=axis), axis


def _stack_bwd(ctx, grad, needs):
    pieces = np.split(grad, len(needs), axis=ctx)
    return tuple(
        np.squeeze(piece, axis=ctx) if need else None
        for need, piece in zip(needs, pieces)
    )


_RESHAPE = register_op("reshape", _reshape_fwd, _reshape_bwd)
_TRANSPOSE = register_op("transpose", _transpose_fwd, _transpose_bwd)
_GETITEM = register_op("getitem", _getitem_fwd, _getitem_bwd)
_PAD2D = register_op("pad2d", _pad2d_fwd, _pad2d_bwd)
_CONCATENATE = register_op("concatenate", _concatenate_fwd, _concatenate_bwd)
_STACK = register_op("stack", _stack_fwd, _stack_bwd)


class Tensor:
    """A backend-array tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_node", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
        dtype=None,
    ):
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._node: Optional[TapeNode] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autograd machinery
    # ------------------------------------------------------------------ #
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Replay the recorded tape in reverse starting from this tensor."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        visited: set = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            tensor, processed = stack.pop()
            if processed:
                topo.append(tensor)
                continue
            if id(tensor) in visited:
                continue
            visited.add(id(tensor))
            stack.append((tensor, True))
            if tensor._node is not None:
                for parent in tensor._node.inputs:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        self._accumulate_grad(grad)
        for tensor in reversed(topo):
            node = tensor._node
            if node is None or tensor.grad is None:
                continue
            if node.op is _CLOSURE_OP:
                # Legacy closure node: the closure accumulates by itself.
                node.ctx(tensor.grad)
                continue
            grads = node.op.backward(node.ctx, tensor.grad, node.needs)
            for parent, parent_grad in zip(node.inputs, grads):
                if parent_grad is not None and parent.requires_grad:
                    parent._accumulate_grad(parent_grad)

    # ------------------------------------------------------------------ #
    # Helpers to build graph nodes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable) -> "Tensor":
        """Compatibility shim: attach a closure-style backward to ``data``.

        Prefer :func:`register_op` + :func:`apply_op` for new code; this
        exists so external closure-style ops keep working on the tape.
        """
        if _grad_mode() is False:
            return Tensor(data)
        needs = tuple(p.requires_grad for p in parents)
        if not any(needs):
            return Tensor(data)
        _bump_tape_counter()
        out = Tensor(data, requires_grad=True)
        out._node = TapeNode(_CLOSURE_OP, tuple(parents), backward, needs)
        return out

    @staticmethod
    def as_tensor(value: Union["Tensor", ArrayLike],
                  like: Optional["Tensor"] = None) -> "Tensor":
        """Coerce ``value`` to a tensor.

        Python scalars / sequences adopt ``like``'s floating dtype when
        given (so mixing a float32 graph with scalar constants does not
        silently promote to float64); existing arrays keep their dtype.
        """
        if isinstance(value, Tensor):
            return value
        if isinstance(value, np.ndarray):
            return Tensor(value)
        dtype = like.data.dtype if like is not None and like.data.dtype.kind == "f" else None
        return Tensor(value, dtype=dtype)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        return apply_op(_ADD, self, Tensor.as_tensor(other, like=self))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return apply_op(_NEG, self)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.as_tensor(other, like=self))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.as_tensor(other, like=self) + (-self)

    def __mul__(self, other) -> "Tensor":
        return apply_op(_MUL, self, Tensor.as_tensor(other, like=self))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return apply_op(_DIV, self, Tensor.as_tensor(other, like=self))

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.as_tensor(other, like=self) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log explicitly")
        return apply_op(_POW, self, exponent=exponent)

    def __matmul__(self, other) -> "Tensor":
        return apply_op(_MATMUL, self, Tensor.as_tensor(other, like=self))

    def __rmatmul__(self, other) -> "Tensor":
        return Tensor.as_tensor(other, like=self) @ self

    # ------------------------------------------------------------------ #
    # Elementwise math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        return apply_op(_EXP, self)

    def log(self) -> "Tensor":
        return apply_op(_LOG, self)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        return apply_op(_ABS, self)

    def tanh(self) -> "Tensor":
        return apply_op(_TANH, self)

    def sigmoid(self) -> "Tensor":
        return apply_op(_SIGMOID, self)

    def relu(self) -> "Tensor":
        return apply_op(_RELU, self)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed only inside the interval."""
        return apply_op(_CLIP, self, low=low, high=high)

    def maximum(self, other) -> "Tensor":
        return apply_op(_MAXIMUM, self, Tensor.as_tensor(other, like=self))

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_SUM, self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_MAX, self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_op(_RESHAPE, self, shape=shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return apply_op(_TRANSPOSE, self, axes=axes)

    def __getitem__(self, index) -> "Tensor":
        return apply_op(_GETITEM, self, index=index)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        return apply_op(_PAD2D, self, padding=padding)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor.as_tensor(t) for t in tensors]
    return apply_op(_CONCATENATE, *tensors, axis=axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor.as_tensor(t) for t in tensors]
    return apply_op(_STACK, *tensors, axis=axis)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(current_backend().zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(current_backend().ones(shape), requires_grad=requires_grad)


def randn(*shape, requires_grad: bool = False, rng: Optional[np.random.Generator] = None) -> Tensor:
    return Tensor(current_backend().randn(shape, rng=rng), requires_grad=requires_grad)
