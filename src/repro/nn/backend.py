"""Pluggable array-execution backends for the ``repro.nn`` engine.

Every array operation performed by the tensor/tape machinery and by the
functional ops routes through one :class:`Backend` instance, which owns

* array **creation** (``asarray`` / ``zeros`` / ``randn`` / ...),
* the heavy **linear algebra** primitives (``matmul`` / ``einsum``),
* the **im2col / col2im** convolution lowering, and
* the **default floating dtype** used when tensors are built from python
  data.

The default is :class:`NumpyBackend` in float64 (the historical behaviour
of the library), but alternative backends plug in by name through
:func:`register_backend` — e.g. the registered ``"numpy32"`` backend runs
the identical numpy code with a float32 default dtype (roughly half the
memory traffic on the im2col hot path), and a future array-API / GPU
backend only has to implement this surface.

The process-wide default dtype can be selected without touching code via
the ``REPRO_DEFAULT_DTYPE`` environment variable (e.g.
``REPRO_DEFAULT_DTYPE=float32 python -m pytest``).
"""

from __future__ import annotations

import copy
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

BackendLike = Union[str, "Backend"]


class Backend:
    """Protocol for an array-execution backend.

    Concrete backends subclass this and implement every primitive in terms
    of their array library.  The base class only manages the default dtype
    (shared by all implementations) and documents the required surface.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Whether numpy-style in-place ufuncs (``out=`` kwargs, ``+=`` on the
    #: backend's arrays) are valid and bit-identical to their out-of-place
    #: forms.  Compiled inference plans (:mod:`repro.deploy`) only emit
    #: buffer-reusing kernels when this is true; otherwise every step falls
    #: back to the pure registered-op forward.
    supports_inplace: bool = False

    def __init__(self, dtype=np.float64):
        self._default_dtype = np.dtype(dtype)

    # ------------------------------------------------------------------ #
    # Default dtype
    # ------------------------------------------------------------------ #
    @property
    def default_dtype(self) -> np.dtype:
        """Dtype used when tensors are constructed from python data."""
        return self._default_dtype

    def set_default_dtype(self, dtype) -> None:
        self._default_dtype = np.dtype(dtype)

    def with_dtype(self, dtype) -> "Backend":
        """A shallow copy of this backend with a different default dtype."""
        clone = copy.copy(self)
        clone._default_dtype = np.dtype(dtype)
        return clone

    # ------------------------------------------------------------------ #
    # Array creation
    # ------------------------------------------------------------------ #
    def asarray(self, data, dtype=None) -> np.ndarray:
        raise NotImplementedError

    def zeros(self, shape, dtype=None) -> np.ndarray:
        raise NotImplementedError

    def ones(self, shape, dtype=None) -> np.ndarray:
        raise NotImplementedError

    def zeros_like(self, array) -> np.ndarray:
        raise NotImplementedError

    def randn(self, shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Optional ``out=`` fast paths
    # ------------------------------------------------------------------ #
    # The compiled-plan serving path (:mod:`repro.deploy`) writes results
    # into preallocated arena buffers.  The defaults below are *pure
    # fallbacks* — compute with the allocating primitive, then copy — so
    # any backend works unmodified; backends that can write in place
    # override them (see :class:`NumpyBackend`) and skip the copy.
    def matmul_out(self, a: np.ndarray, b: np.ndarray,
                   out: np.ndarray) -> np.ndarray:
        out[...] = self.matmul(a, b)
        return out

    def einsum_out(self, subscripts: str, *operands: np.ndarray,
                   out: np.ndarray) -> np.ndarray:
        out[...] = self.einsum(subscripts, *operands)
        return out

    def im2col_out(self, x: np.ndarray, kernel: Tuple[int, int],
                   stride: Tuple[int, int], padding: Tuple[int, int],
                   out: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Like :meth:`im2col` but gathering into ``out`` (same shape)."""
        cols, out_hw = self.im2col(x, kernel, stride, padding)
        out[...] = cols
        return out, out_hw

    # ------------------------------------------------------------------ #
    # Indexed gather / scatter (pooling) and layout control
    # ------------------------------------------------------------------ #
    # Numpy implementations are correct for any array-protocol backend, so
    # these default instead of raising: subclasses that do not manage their
    # own memory layout inherit working pooling/deploy paths for free.
    def take_along_axis(self, array: np.ndarray, indices: np.ndarray,
                        axis: int) -> np.ndarray:
        return np.take_along_axis(array, indices, axis=axis)

    def put_along_axis(self, array: np.ndarray, indices: np.ndarray,
                       values: np.ndarray, axis: int) -> None:
        np.put_along_axis(array, indices, values, axis=axis)

    def broadcast_to(self, array: np.ndarray, shape) -> np.ndarray:
        return np.broadcast_to(array, shape)

    def ascontiguousarray(self, array: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(array)

    # ------------------------------------------------------------------ #
    # Convolution lowering
    # ------------------------------------------------------------------ #
    def im2col(self, x: np.ndarray, kernel: Tuple[int, int],
               stride: Tuple[int, int], padding: Tuple[int, int]
               ) -> Tuple[np.ndarray, Tuple[int, int]]:
        raise NotImplementedError

    def col2im(self, cols: np.ndarray, input_shape: Tuple[int, int, int, int],
               kernel: Tuple[int, int], stride: Tuple[int, int],
               padding: Tuple[int, int], output_size: Tuple[int, int]
               ) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, dtype={self.default_dtype})"


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


class NumpyBackend(Backend):
    """Reference backend: plain numpy, einsum-lowered convolutions."""

    name = "numpy"
    supports_inplace = True

    # -- creation ------------------------------------------------------- #
    def asarray(self, data, dtype=None) -> np.ndarray:
        return np.asarray(data, dtype=dtype or self._default_dtype)

    def zeros(self, shape, dtype=None) -> np.ndarray:
        return np.zeros(shape, dtype=dtype or self._default_dtype)

    def ones(self, shape, dtype=None) -> np.ndarray:
        return np.ones(shape, dtype=dtype or self._default_dtype)

    def zeros_like(self, array) -> np.ndarray:
        return np.zeros_like(array)

    def randn(self, shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or np.random.default_rng()
        return rng.standard_normal(shape).astype(self._default_dtype, copy=False)

    # -- linear algebra ------------------------------------------------- #
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        return np.einsum(subscripts, *operands, optimize=True)

    # -- out= fast paths ------------------------------------------------- #
    def matmul_out(self, a: np.ndarray, b: np.ndarray,
                   out: np.ndarray) -> np.ndarray:
        return np.matmul(a, b, out=out)

    def einsum_out(self, subscripts: str, *operands: np.ndarray,
                   out: np.ndarray) -> np.ndarray:
        return np.einsum(subscripts, *operands, out=out, optimize=True)

    def im2col_out(self, x: np.ndarray, kernel: Tuple[int, int],
                   stride: Tuple[int, int], padding: Tuple[int, int],
                   out: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        n, c, h, w = x.shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        out_h = conv_output_size(h, kh, sh, ph)
        out_w = conv_output_size(w, kw, sw, pw)
        if ph or pw:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
        strides = (
            x.strides[0], x.strides[1], x.strides[2], x.strides[3],
            x.strides[2] * sh, x.strides[3] * sw,
        )
        shape = (n, c, kh, kw, out_h, out_w)
        windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
        # ``out`` is contiguous, so viewing it in window layout and copying
        # produces exactly the bytes ``ascontiguousarray`` would have.
        np.copyto(out.reshape(shape), windows)
        return out, (out_h, out_w)

    # -- indexed gather / scatter ---------------------------------------- #
    def take_along_axis(self, array: np.ndarray, indices: np.ndarray,
                        axis: int) -> np.ndarray:
        return np.take_along_axis(array, indices, axis=axis)

    def put_along_axis(self, array: np.ndarray, indices: np.ndarray,
                       values: np.ndarray, axis: int) -> None:
        np.put_along_axis(array, indices, values, axis=axis)

    def broadcast_to(self, array: np.ndarray, shape) -> np.ndarray:
        return np.broadcast_to(array, shape)

    def ascontiguousarray(self, array: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(array)

    # -- convolution lowering ------------------------------------------- #
    def im2col(self, x: np.ndarray, kernel: Tuple[int, int],
               stride: Tuple[int, int], padding: Tuple[int, int]
               ) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Lower a batched ``(N, C, H, W)`` image tensor to column form.

        Returns ``(cols, (out_h, out_w))`` with ``cols`` of shape
        ``(N, C * kh * kw, out_h * out_w)``.
        """
        n, c, h, w = x.shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        out_h = conv_output_size(h, kh, sh, ph)
        out_w = conv_output_size(w, kw, sw, pw)

        if ph or pw:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

        # Gather sliding windows with as_strided: result is
        # (N, C, kh, kw, out_h, out_w) without copying.
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2],
            x.strides[3],
            x.strides[2] * sh,
            x.strides[3] * sw,
        )
        shape = (n, c, kh, kw, out_h, out_w)
        windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
        cols = windows.reshape(n, c * kh * kw, out_h * out_w)
        return np.ascontiguousarray(cols), (out_h, out_w)

    def col2im(self, cols: np.ndarray, input_shape: Tuple[int, int, int, int],
               kernel: Tuple[int, int], stride: Tuple[int, int],
               padding: Tuple[int, int], output_size: Tuple[int, int]
               ) -> np.ndarray:
        """Inverse of :meth:`im2col` by scatter-add (conv backward)."""
        n, c, h, w = input_shape
        kh, kw = kernel
        sh, sw = stride
        ph, pw = padding
        out_h, out_w = output_size

        padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
        cols = cols.reshape(n, c, kh, kw, out_h, out_w)
        for i in range(kh):
            i_end = i + sh * out_h
            for j in range(kw):
                j_end = j + sw * out_w
                padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
        if ph or pw:
            return padded[:, :, ph:ph + h, pw:pw + w]
        return padded


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend],
                     overwrite: bool = False) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is a zero-argument callable returning a :class:`Backend`;
    it is invoked lazily on first :func:`get_backend` lookup and the
    instance is cached.
    """
    key = name.lower()
    if key in _FACTORIES and not overwrite:
        raise ValueError(f"backend '{name}' is already registered")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def available_backends() -> List[str]:
    return sorted(_FACTORIES)


def get_backend(backend: BackendLike) -> Backend:
    """Resolve a backend by name (cached instance) or pass one through."""
    if isinstance(backend, Backend):
        return backend
    key = str(backend).lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown backend '{backend}'; choose from {available_backends()}")
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


register_backend("numpy", lambda: NumpyBackend(np.float64))
register_backend("numpy64", lambda: NumpyBackend(np.float64))
register_backend("numpy32", lambda: NumpyBackend(np.float32))


def _initial_backend() -> Backend:
    env = os.environ.get("REPRO_DEFAULT_DTYPE", "").strip()
    if not env:
        return NumpyBackend(np.float64)
    # np.dtype raises an opaque TypeError for a typo'd value; since this runs
    # at import time, translate it into an error naming the variable and the
    # accepted values instead of letting `import repro` die mysteriously.
    try:
        dtype = np.dtype(env)
    except TypeError as exc:
        raise ValueError(
            f"invalid REPRO_DEFAULT_DTYPE value {env!r}: expected a floating "
            "numpy dtype name such as 'float32' or 'float64'") from exc
    if dtype.kind != "f":
        raise ValueError(
            f"invalid REPRO_DEFAULT_DTYPE value {env!r}: {dtype} is not a "
            "floating dtype; use 'float32' or 'float64'")
    return NumpyBackend(dtype)


#: Process-wide default backend, targeted by :func:`set_backend`.
_CURRENT: Backend = _initial_backend()

#: Per-thread stack of scoped overrides pushed by :func:`use_backend`.  Keeping
#: the scoped state thread-local is what lets parallel sweep shards each run
#: under their own backend / dtype without leaking into one another (the
#: process-wide default above stays shared, as a default should).
_SCOPED = threading.local()


def _scoped_stack() -> List[Backend]:
    stack = getattr(_SCOPED, "stack", None)
    if stack is None:
        stack = _SCOPED.stack = []
    return stack


def current_backend() -> Backend:
    """The backend all tensor operations currently route through.

    The innermost :func:`use_backend` scope of the *calling thread* wins;
    without one, the process-wide default applies.
    """
    stack = getattr(_SCOPED, "stack", None)
    if stack:
        return stack[-1]
    return _CURRENT


def set_backend(backend: BackendLike, dtype=None) -> Backend:
    """Permanently switch the process-wide default backend."""
    global _CURRENT
    resolved = get_backend(backend)
    if dtype is not None and np.dtype(dtype) != resolved.default_dtype:
        resolved = resolved.with_dtype(dtype)
    _CURRENT = resolved
    return resolved


@contextmanager
def use_backend(backend: Optional[BackendLike] = None, dtype=None):
    """Scoped backend / default-dtype switch, local to the calling thread.

    ``backend=None`` keeps the active backend (useful for a dtype-only
    override); ``dtype=None`` keeps the backend's own default.
    """
    target = get_backend(backend) if backend is not None else current_backend()
    if dtype is not None and np.dtype(dtype) != target.default_dtype:
        target = target.with_dtype(dtype)
    stack = _scoped_stack()
    stack.append(target)
    try:
        yield target
    finally:
        stack.pop()


def get_default_dtype() -> np.dtype:
    """Default floating dtype of the active backend."""
    return current_backend().default_dtype


def set_default_dtype(dtype) -> None:
    """Set the default floating dtype of the active backend.

    Replaces the active backend with a dtype-adjusted copy rather than
    mutating it, so registry-cached instances (``get_backend("numpy32")``
    etc.) are never corrupted by a process-wide dtype change.  Inside a
    :func:`use_backend` scope the change applies to that scope (and is
    undone when it exits); otherwise the process-wide default is replaced.
    """
    global _CURRENT
    stack = getattr(_SCOPED, "stack", None)
    if stack:
        if np.dtype(dtype) != stack[-1].default_dtype:
            stack[-1] = stack[-1].with_dtype(dtype)
    elif np.dtype(dtype) != _CURRENT.default_dtype:
        _CURRENT = _CURRENT.with_dtype(dtype)


# --------------------------------------------------------------------------- #
# Execution-context capture / restore (for sweep workers)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionState:
    """A serializable snapshot of the active backend + default dtype.

    Worker threads and processes do not inherit the parent's scoped
    :func:`use_backend` state (scopes are thread-local, and a spawned
    process starts from module defaults), so a sweep parent captures this
    snapshot once and every shard re-applies it via :meth:`scope`.  Only
    the registry *name* travels, which keeps the snapshot picklable; the
    backend must therefore be registered under the same name in the worker
    (true for the built-ins and for any :func:`register_backend` call made
    before the pool forks).
    """

    backend: str
    dtype: str

    def resolve(self) -> Backend:
        resolved = get_backend(self.backend)
        if np.dtype(self.dtype) != resolved.default_dtype:
            resolved = resolved.with_dtype(self.dtype)
        return resolved

    def scope(self):
        """A context manager applying this snapshot (thread-locally)."""
        return use_backend(self.resolve())


def capture_execution_state() -> ExecutionState:
    """Snapshot the calling thread's active backend + dtype by name.

    Raises ``KeyError`` when the active backend cannot be faithfully
    restored from the registry — either its name is unregistered, or the
    instance is not of the registered type (e.g. an unregistered subclass
    inheriting a built-in's ``name``); restoring by name would silently
    swap in the wrong implementation.
    """
    active = current_backend()
    key = active.name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"active backend '{active.name}' is not registered; register it "
            "with register_backend() so sweep workers can restore it by name")
    if type(active) is not type(get_backend(key)):
        raise KeyError(
            f"active backend instance ({type(active).__name__}) is not the "
            f"type registered under '{active.name}' "
            f"({type(get_backend(key)).__name__}); register it under its own "
            "name so sweep workers restore the right implementation")
    return ExecutionState(backend=active.name,
                          dtype=np.dtype(active.default_dtype).name)
