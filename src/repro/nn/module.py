"""Module system: parameters, modules and containers.

Mirrors the familiar PyTorch ``nn.Module`` contract (recursive parameter
discovery, train/eval switching, state dicts) so that models, ALF blocks
and baselines compose naturally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import (
    Tensor,
    grad_mode_override,
    no_grad,
    op_hooks_active,
    pop_layer_scope,
    push_layer_scope,
)


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a module."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for every trainable component.

    Subclasses assign :class:`Parameter`, :class:`Module` and numpy buffers
    as attributes; they are discovered automatically for optimization,
    serialization and train/eval mode propagation.
    """

    #: The attribute name this module was registered under in its parent;
    #: layer scopes (:mod:`repro.nn.profiler`) join these into module paths.
    #: A module assigned to several attributes keeps the *last* assignment's
    #: name — aliased (weight-shared) submodules are profiled under it.
    _scope: Optional[str] = None

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
            value._scope = name
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------ #
    # Mode / gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode.

        Besides flipping layer behaviour (BatchNorm running stats, Dropout
        off), an eval-mode module is executed under
        :func:`~repro.nn.tensor.no_grad`: its forward passes build no tape
        nodes at all.  Wrap the call in
        :func:`~repro.nn.tensor.enable_grad` when gradients through an
        eval-mode forward are explicitly needed (e.g. gradcheck).
        """
        return self.train(False)

    def astype(self, dtype) -> "Module":
        """Cast every parameter and floating buffer to ``dtype`` in place."""
        dtype = np.dtype(dtype)
        for module in self.modules():
            for param in module._parameters.values():
                if param is not None and param.data.dtype.kind == "f":
                    param.data = param.data.astype(dtype, copy=False)
            for name, buf in list(module._buffers.items()):
                if isinstance(buf, np.ndarray) and buf.dtype.kind == "f":
                    module.register_buffer(name, buf.astype(dtype, copy=False))
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters held by this module tree."""
        return sum(
            p.size for p in self.parameters() if (p.requires_grad or not trainable_only)
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, param in self.named_parameters():
            if name in state:
                if param.data.shape != state[name].shape:
                    raise ValueError(
                        f"shape mismatch for '{name}': "
                        f"{param.data.shape} vs {state[name].shape}"
                    )
                param.data = state[name].copy()
        for name, buf in self.named_buffers():
            key = f"buffer:{name}"
            if key in state:
                buf[...] = state[key]

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        # Layer-scoped profiling: while op hooks are installed in this
        # thread, nested module calls maintain a path stack so apply_op can
        # attribute every op to its executing layer.  Without hooks the
        # check is a single truthiness test and no scope is ever pushed.
        if op_hooks_active():
            push_layer_scope(self._scope or type(self).__name__)
            try:
                return self._invoke(args, kwargs)
            finally:
                pop_layer_scope()
        return self._invoke(args, kwargs)

    def _invoke(self, args, kwargs):
        # Eval-mode modules run tape-free unless an explicit grad-mode
        # override (no_grad / enable_grad) is already in force, or a graph
        # is flowing through the inputs (e.g. a frozen submodule inside a
        # training forward must not detach its upstream layers).
        if (not self.training and grad_mode_override() is None
                and not any(isinstance(a, Tensor) and a.requires_grad
                            for a in (*args, *kwargs.values()))):
            with no_grad():
                return self.forward(*args, **kwargs)
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({child_repr})"


class Sequential(Module):
    """Chain modules, feeding each output to the next module's input."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def append(self, module: Module) -> "Sequential":
        index = len(self._ordered)
        setattr(self, f"layer{index}", module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, x):
        for module in self._ordered:
            x = module(x)
        return x


class ModuleList(Module):
    """Hold an ordered list of submodules without implying a call order."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._ordered: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._ordered)
        setattr(self, f"item{index}", module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")
