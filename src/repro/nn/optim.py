"""Optimizers and learning-rate schedulers.

The ALF training procedure uses two kinds of optimizers concurrently: the
task optimizer (SGD with momentum and weight decay, following the base
CNN's recipe) and one dedicated SGD optimizer per ALF block updating only
the autoencoder variables.  Both are served by the classes below.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter
from .tensor import Tensor


class Optimizer:
    """Base class: holds a parameter list and a learning rate."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        self.lr = float(lr)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum, Nesterov and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            # In-place update: old tape nodes are never replayed after a
            # step, so mutating the parameter array is safe and avoids one
            # full-size allocation per parameter per step.
            param.data -= (self.lr * grad).astype(param.data.dtype, copy=False)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            param.data -= update.astype(param.data.dtype, copy=False)


class LRScheduler:
    """Base class for learning-rate schedules attached to an optimizer."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.set_lr(lr)
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class MultiStepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` at each listed milestone."""

    def __init__(self, optimizer: Optimizer, milestones: Iterable[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = max(1, t_max)
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + np.cos(np.pi * progress))
