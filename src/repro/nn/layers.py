"""Standard neural-network layers built on the autograd Tensor.

These layers cover everything required by the CNN architectures used in the
ALF paper (Plain-20, ResNet-20/18, SqueezeNet, GoogLeNet-lite) and by the
ALF blocks themselves.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from . import functional as F
from . import init as init_mod
from .module import Module, Parameter
from .tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


class Conv2d(Module):
    """2D convolution layer with ``(Co, Ci, K, K)`` weights."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntPair,
                 stride: IntPair = 1, padding: IntPair = 0, bias: bool = True,
                 weight_init: str = "he", rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        initializer = init_mod.get_initializer(weight_init)
        shape = (out_channels, in_channels) + self.kernel_size
        self.weight = Parameter(initializer(shape, rng=rng))
        self.bias = Parameter(init_mod.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_shape(self, input_hw: Tuple[int, int]) -> Tuple[int, int]:
        """Spatial output size for an input of the given height/width."""
        h = F.conv_output_size(input_hw[0], self.kernel_size[0], self.stride[0], self.padding[0])
        w = F.conv_output_size(input_hw[1], self.kernel_size[1], self.stride[1], self.padding[1])
        return (h, w)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})")


class Linear(Module):
    """Fully connected layer with ``(out_features, in_features)`` weights."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 weight_init: str = "he", rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        initializer = init_mod.get_initializer(weight_init)
        self.weight = Parameter(initializer((out_features, in_features), rng=rng))
        self.bias = Parameter(init_mod.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW feature maps."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init_mod.ones((num_features,)))
        self.beta = Parameter(init_mod.zeros((num_features,)))
        self.register_buffer("running_mean", init_mod.zeros((num_features,)))
        self.register_buffer("running_var", init_mod.ones((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x, self.gamma, self.beta, self.running_mean, self.running_var,
            training=self.training, momentum=self.momentum, eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class BatchNorm1d(BatchNorm2d):
    """Batch normalization for (N, C) activations."""


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class MaxPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


def activation_module(name: Optional[str]) -> Module:
    """Instantiate an activation layer from its name (``None`` -> Identity)."""
    if name is None:
        return Identity()
    key = name.lower()
    table = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid, "none": Identity,
             "identity": Identity}
    if key not in table:
        raise KeyError(f"unknown activation '{name}'; choose from {sorted(table)}")
    return table[key]()
