"""Functional neural-network operations for the ``repro.nn`` framework.

Every function takes and returns :class:`~repro.nn.tensor.Tensor` objects
and participates in the recorded-op tape.  Convolutions are implemented
with an im2col lowering (owned by the active :mod:`repro.nn.backend`) so
that the heavy lifting is a single einsum/matrix multiply, which keeps
pure-numpy training of the small CNNs used in the ALF paper tractable.

The conv/pool primitives are **registered ops** (see
:func:`repro.nn.tensor.register_op`): their backward rules live next to
the forward code, no per-call closures are allocated, and under
:func:`~repro.nn.tensor.no_grad` the saved im2col columns are dropped
immediately.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .backend import conv_output_size, current_backend
from .tensor import Tensor, apply_op, register_op, unbroadcast  # noqa: F401

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


# --------------------------------------------------------------------------- #
# im2col / col2im (delegated to the active backend)
# --------------------------------------------------------------------------- #
def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int]) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Lower a batched image tensor to column form (backend-owned)."""
    return current_backend().im2col(x, kernel, stride, padding)


def col2im(cols: np.ndarray, input_shape: Tuple[int, int, int, int],
           kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int], output_size: Tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`im2col` by scatter-add (backend-owned)."""
    return current_backend().col2im(cols, input_shape, kernel, stride,
                                    padding, output_size)


# --------------------------------------------------------------------------- #
# Convolution / pooling ops
# --------------------------------------------------------------------------- #
def _conv2d_fwd(x, weight, *bias, stride, padding):
    backend = current_backend()
    n, ci, h, w = x.shape
    co, ci_w, kh, kw = weight.shape
    if ci != ci_w:
        raise ValueError(f"input channels ({ci}) do not match weight channels ({ci_w})")
    cols, (out_h, out_w) = backend.im2col(x, (kh, kw), stride, padding)
    w_mat = weight.reshape(co, -1)
    out = backend.einsum("of,nfl->nol", w_mat, cols)
    # einsum may hand back a transposed GEMM view; canonicalize to C order
    # so downstream reductions see one deterministic iteration order (the
    # same one the compiled-plan arena buffers use).
    out = backend.ascontiguousarray(out.reshape(n, co, out_h, out_w))
    if bias:
        # The einsum output is fresh and unshared, so backends that allow
        # in-place ufuncs can add the bias without materializing a second
        # full activation array.
        if backend.supports_inplace:
            out += bias[0].reshape(1, co, 1, 1)
        else:
            out = out + bias[0].reshape(1, co, 1, 1)
    ctx = (cols, w_mat, x.shape, weight.shape, (kh, kw), stride, padding,
           (out_h, out_w), bias[0].shape if bias else None)
    return out, ctx


def _conv2d_bwd(ctx, grad, needs):
    backend = current_backend()
    cols, w_mat, x_shape, w_shape, kernel, stride, padding, out_hw, b_shape = ctx
    n = x_shape[0]
    co = w_shape[0]
    out_h, out_w = out_hw
    grad_mat = grad.reshape(n, co, out_h * out_w)
    grad_x = grad_w = grad_b = None
    if needs[1]:
        grad_w = backend.einsum("nol,nfl->of", grad_mat, cols).reshape(w_shape)
    if needs[0]:
        grad_cols = backend.einsum("of,nol->nfl", w_mat, grad_mat)
        grad_x = backend.col2im(grad_cols, x_shape, kernel, stride, padding, out_hw)
    if len(needs) > 2 and needs[2]:
        grad_b = grad.sum(axis=(0, 2, 3)).reshape(b_shape)
    return (grad_x, grad_w, grad_b)[:len(needs)]


def _max_pool2d_fwd(x, *, kernel, stride):
    backend = current_backend()
    n, c, h, w = x.shape
    cols, (out_h, out_w) = backend.im2col(x, kernel, stride, (0, 0))
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = backend.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    out = out.reshape(n, c, out_h, out_w)
    return out, (argmax, x.shape, kernel, stride, (out_h, out_w))


def _max_pool2d_bwd(ctx, grad, needs):
    backend = current_backend()
    argmax, x_shape, kernel, stride, (out_h, out_w) = ctx
    n, c, _, _ = x_shape
    window = kernel[0] * kernel[1]
    grad_cols = backend.zeros((n, c, window, out_h * out_w), dtype=grad.dtype)
    backend.put_along_axis(
        grad_cols, argmax[:, :, None, :], grad.reshape(n, c, 1, out_h * out_w), axis=2
    )
    grad_cols = grad_cols.reshape(n, c * window, out_h * out_w)
    return (backend.col2im(grad_cols, x_shape, kernel, stride, (0, 0),
                           (out_h, out_w)),)


def _avg_pool2d_fwd(x, *, kernel, stride):
    backend = current_backend()
    n, c, h, w = x.shape
    cols, (out_h, out_w) = backend.im2col(x, kernel, stride, (0, 0))
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)
    return out, (x.shape, kernel, stride, (out_h, out_w))


def _avg_pool2d_bwd(ctx, grad, needs):
    backend = current_backend()
    x_shape, kernel, stride, (out_h, out_w) = ctx
    n, c, _, _ = x_shape
    window = kernel[0] * kernel[1]
    grad_cols = backend.broadcast_to(
        grad.reshape(n, c, 1, out_h * out_w) / window,
        (n, c, window, out_h * out_w),
    ).reshape(n, c * window, out_h * out_w)
    return (backend.col2im(backend.ascontiguousarray(grad_cols), x_shape, kernel,
                           stride, (0, 0), (out_h, out_w)),)


_CONV2D = register_op("conv2d", _conv2d_fwd, _conv2d_bwd)
_MAX_POOL2D = register_op("max_pool2d", _max_pool2d_fwd, _max_pool2d_bwd)
_AVG_POOL2D = register_op("avg_pool2d", _avg_pool2d_fwd, _avg_pool2d_bwd)

#: Raw forward kernels, exposed for tape-free consumers.  A compiled
#: inference plan (:mod:`repro.deploy`) executes these directly on arrays —
#: no Tensor wrapping, no tape, no context retention; each returns
#: ``(out_array, ctx)`` and the caller drops ``ctx``.
conv2d_fwd = _conv2d_fwd
max_pool2d_fwd = _max_pool2d_fwd
avg_pool2d_fwd = _avg_pool2d_fwd


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: IntPair = 1, padding: IntPair = 0) -> Tensor:
    """2D convolution.

    ``x`` has shape ``(N, Ci, H, W)`` and ``weight`` has shape
    ``(Co, Ci, KH, KW)``; output has shape ``(N, Co, Ho, Wo)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    if bias is None:
        return apply_op(_CONV2D, x, weight, stride=stride, padding=padding)
    return apply_op(_CONV2D, x, weight, bias, stride=stride, padding=padding)


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) spatial windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    return apply_op(_MAX_POOL2D, x, kernel=kernel, stride=stride)


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling over spatial windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    return apply_op(_AVG_POOL2D, x, kernel=kernel, stride=stride)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


# --------------------------------------------------------------------------- #
# Dense / normalization
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """Batch normalization over the channel dimension of ``(N, C, H, W)`` or ``(N, C)``.

    ``running_mean``/``running_var`` are plain numpy buffers updated in place
    when ``training`` is true.
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError("batch_norm expects a 2D or 4D input")

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=axes, keepdims=True)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= (1.0 - momentum)
        running_var += momentum * var.data.reshape(-1)
        x_hat = (x - mean) / (var + eps) ** 0.5
    else:
        mean = Tensor(running_mean.reshape(shape).astype(x.data.dtype, copy=False))
        var = Tensor(running_var.reshape(shape).astype(x.data.dtype, copy=False))
        x_hat = (x - mean) / (var + eps) ** 0.5

    return x_hat * gamma.reshape(shape) + beta.reshape(shape)


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask.astype(x.data.dtype, copy=False))


# --------------------------------------------------------------------------- #
# Activations and classification heads
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def identity(x: Tensor) -> Tensor:
    return x


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


ACTIVATIONS = {
    "relu": relu,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "none": identity,
    "identity": identity,
}


def get_activation(name: Optional[str]):
    """Look up an activation function by name (``None`` means identity)."""
    if name is None:
        return identity
    key = name.lower()
    if key not in ACTIVATIONS:
        raise KeyError(f"unknown activation '{name}'; choose from {sorted(ACTIVATIONS)}")
    return ACTIVATIONS[key]
