"""Functional neural-network operations for the ``repro.nn`` framework.

Every function takes and returns :class:`~repro.nn.tensor.Tensor` objects
and participates in the autograd graph.  Convolutions are implemented with
an im2col lowering so that the heavy lifting is a single matrix multiply,
which keeps pure-numpy training of the small CNNs used in the ALF paper
tractable.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Tensor, unbroadcast

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int]) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Lower a batched image tensor to column form.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel, stride, padding:
        Convolution geometry as ``(h, w)`` pairs.

    Returns
    -------
    cols:
        Array of shape ``(N, C * kh * kw, out_h * out_w)``.
    (out_h, out_w):
        Spatial output size.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)

    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    # Gather sliding windows with as_strided: result is
    # (N, C, kh, kw, out_h, out_w) without copying.
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * sh,
        x.strides[3] * sw,
    )
    shape = (n, c, kh, kw, out_h, out_w)
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = windows.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(cols: np.ndarray, input_shape: Tuple[int, int, int, int],
           kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int], output_size: Tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`im2col` by scatter-add (used for conv backward)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = output_size

    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph or pw:
        return padded[:, :, ph:ph + h, pw:pw + w]
    return padded


# --------------------------------------------------------------------------- #
# Convolution / pooling
# --------------------------------------------------------------------------- #
def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: IntPair = 1, padding: IntPair = 0) -> Tensor:
    """2D convolution.

    ``x`` has shape ``(N, Ci, H, W)`` and ``weight`` has shape
    ``(Co, Ci, KH, KW)``; output has shape ``(N, Co, Ho, Wo)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, ci, h, w = x.shape
    co, ci_w, kh, kw = weight.shape
    if ci != ci_w:
        raise ValueError(f"input channels ({ci}) do not match weight channels ({ci_w})")

    cols, (out_h, out_w) = im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(co, -1)
    out = np.einsum("of,nfl->nol", w_mat, cols, optimize=True)
    out = out.reshape(n, co, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, co, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, co, out_h * out_w)
        if weight.requires_grad:
            grad_w = np.einsum("nol,nfl->of", grad_mat, cols, optimize=True)
            weight._accumulate_grad(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = np.einsum("of,nol->nfl", w_mat, grad_mat, optimize=True)
            grad_x = col2im(grad_cols, x.shape, (kh, kw), stride, padding, (out_h, out_w))
            x._accumulate_grad(grad_x)
        if bias is not None and bias.requires_grad:
            bias._accumulate_grad(grad.sum(axis=(0, 2, 3)).reshape(bias.shape))

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) spatial windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    n, c, h, w = x.shape
    cols, (out_h, out_w) = im2col(x.data, kernel, stride, (0, 0))
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = np.zeros((n, c, kernel[0] * kernel[1], out_h * out_w), dtype=grad.dtype)
        np.put_along_axis(
            grad_cols, argmax[:, :, None, :], grad.reshape(n, c, 1, out_h * out_w), axis=2
        )
        grad_cols = grad_cols.reshape(n, c * kernel[0] * kernel[1], out_h * out_w)
        grad_x = col2im(grad_cols, x.shape, kernel, stride, (0, 0), (out_h, out_w))
        x._accumulate_grad(grad_x)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling over spatial windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    n, c, h, w = x.shape
    cols, (out_h, out_w) = im2col(x.data, kernel, stride, (0, 0))
    cols = cols.reshape(n, c, kernel[0] * kernel[1], out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)
    window = kernel[0] * kernel[1]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = np.broadcast_to(
            grad.reshape(n, c, 1, out_h * out_w) / window,
            (n, c, window, out_h * out_w),
        ).reshape(n, c * window, out_h * out_w)
        grad_x = col2im(np.ascontiguousarray(grad_cols), x.shape, kernel, stride, (0, 0), (out_h, out_w))
        x._accumulate_grad(grad_x)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


# --------------------------------------------------------------------------- #
# Dense / normalization
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """Batch normalization over the channel dimension of ``(N, C, H, W)`` or ``(N, C)``.

    ``running_mean``/``running_var`` are plain numpy buffers updated in place
    when ``training`` is true.
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError("batch_norm expects a 2D or 4D input")

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=axes, keepdims=True)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= (1.0 - momentum)
        running_var += momentum * var.data.reshape(-1)
        x_hat = (x - mean) / (var + eps) ** 0.5
    else:
        mean = Tensor(running_mean.reshape(shape))
        var = Tensor(running_var.reshape(shape))
        x_hat = (x - mean) / (var + eps) ** 0.5

    return x_hat * gamma.reshape(shape) + beta.reshape(shape)


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


# --------------------------------------------------------------------------- #
# Activations and classification heads
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def identity(x: Tensor) -> Tensor:
    return x


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


ACTIVATIONS = {
    "relu": relu,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "none": identity,
    "identity": identity,
}


def get_activation(name: Optional[str]):
    """Look up an activation function by name (``None`` means identity)."""
    if name is None:
        return identity
    key = name.lower()
    if key not in ACTIVATIONS:
        raise KeyError(f"unknown activation '{name}'; choose from {sorted(ACTIVATIONS)}")
    return ACTIVATIONS[key]
