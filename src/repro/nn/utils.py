"""Utility helpers shared across the framework: seeding, gradient checking.

The numerical gradient checker is used heavily by the test-suite to verify
every autograd operation against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .tensor import Tensor

_GLOBAL_SEED = 0


def seed_everything(seed: int) -> np.random.Generator:
    """Seed numpy's legacy and new RNG APIs; return a fresh Generator."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    np.random.seed(seed)
    return np.random.default_rng(seed)


def new_rng(offset: int = 0) -> np.random.Generator:
    """A generator derived from the last global seed (deterministic per offset)."""
    return np.random.default_rng(_GLOBAL_SEED + offset)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot matrix ``(N, num_classes)``."""
    labels = np.asarray(labels)
    out = np.zeros((labels.shape[0], num_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-5) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradient(fn: Callable[[Tensor], Tensor], value: np.ndarray,
                   eps: float = 1e-5, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Compare autograd and numerical gradients of a scalar-valued ``fn``.

    ``fn`` receives a Tensor built from ``value`` and must return a scalar
    Tensor.  Raises ``AssertionError`` with a diagnostic if they disagree.
    """
    tensor = Tensor(value.copy(), requires_grad=True)
    out = fn(tensor)
    out.backward()
    analytic = tensor.grad.copy()

    def scalar(arr: np.ndarray) -> float:
        return float(fn(Tensor(arr)).data)

    numeric = numerical_gradient(scalar, value.copy(), eps=eps)
    if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
        max_err = np.max(np.abs(analytic - numeric))
        raise AssertionError(
            f"gradient mismatch: max abs error {max_err:.3e}\n"
            f"analytic:\n{analytic}\nnumeric:\n{numeric}"
        )
    return True


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in place so that their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


def count_parameters(params: Sequence[Tensor]) -> int:
    """Total scalar count across a parameter collection."""
    return int(sum(p.size for p in params))
