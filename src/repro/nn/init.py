"""Weight initialization schemes.

The ALF paper's design-space exploration (Fig. 2a/2b) compares He [24],
Xavier [25] and plain random initialization for the expansion layer and
the autoencoder weights, so every scheme is addressable by name.  Every
initializer emits arrays in the active backend's default dtype so models
built under a float32 backend are float32 end to end.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from .backend import get_default_dtype


def _fan_in_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense or convolutional weight shapes."""
    shape = tuple(shape)
    if len(shape) == 2:           # (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:         # (Co, Ci, KH, KW)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in = int(np.prod(shape[1:]))
        fan_out = shape[0]
    return fan_in, fan_out


def he_normal(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He (Kaiming) normal initialization: std = sqrt(2 / fan_in)."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(1, fan_in))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def he_uniform(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He uniform initialization: bound = sqrt(6 / fan_in)."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(1, fan_in))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Xavier (Glorot) normal initialization: std = sqrt(2 / (fan_in + fan_out))."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(1, fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def xavier_uniform(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Xavier (Glorot) uniform initialization: bound = sqrt(6 / (fan_in + fan_out))."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def random_normal(shape: Sequence[int], rng: Optional[np.random.Generator] = None,
                  std: float = 0.05) -> np.ndarray:
    """Plain random normal initialization (the "rand" option in Fig. 2b)."""
    rng = rng or np.random.default_rng()
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())


INITIALIZERS: Dict[str, Callable] = {
    "he": he_normal,
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "xavier": xavier_normal,
    "xavier_normal": xavier_normal,
    "xavier_uniform": xavier_uniform,
    "rand": random_normal,
    "random": random_normal,
    "normal": random_normal,
    "zeros": zeros,
    "ones": ones,
}


def get_initializer(name: str) -> Callable:
    """Look up an initializer by name as used in the paper's Fig. 2a/2b."""
    key = name.lower()
    if key not in INITIALIZERS:
        raise KeyError(f"unknown initializer '{name}'; choose from {sorted(INITIALIZERS)}")
    return INITIALIZERS[key]
