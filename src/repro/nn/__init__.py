"""``repro.nn`` — a compact numpy deep-learning framework.

This package is the training substrate for the ALF reproduction: a
tape-based autograd engine over pluggable array backends
(:mod:`repro.nn.tensor`, :mod:`repro.nn.backend`), functional ops
(:mod:`repro.nn.functional`), layers and containers, initializers,
optimizers, losses and straight-through-estimator primitives.

Execution is controlled by two orthogonal switches:

* the **backend** (:func:`use_backend` / :func:`set_backend`) owns array
  creation, einsum/matmul, the im2col conv lowering and the default dtype
  (``"numpy"`` float64 by default, ``"numpy32"`` for the float32 fast
  path, or any backend registered via :func:`register_backend`);
* the **grad mode** (:func:`no_grad` / :func:`enable_grad`) decides
  whether forward passes record tape nodes; eval-mode modules run
  tape-free automatically.
"""

from . import backend
from . import functional
from . import init
from . import loss
from . import optim
from . import profiler
from . import ste
from . import utils
from .backend import (
    Backend,
    ExecutionState,
    NumpyBackend,
    available_backends,
    capture_execution_state,
    current_backend,
    get_backend,
    get_default_dtype,
    register_backend,
    set_backend,
    set_default_dtype,
    use_backend,
)
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
    activation_module,
)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, CosineAnnealingLR, MultiStepLR, StepLR
from .profiler import (
    OpProfile,
    OpStat,
    RunProfile,
    collect_profile,
    layer_op_seconds,
    profile_inference,
)
from .tensor import (
    Tensor,
    add_op_hook,
    apply_op,
    concatenate,
    current_layer,
    enable_grad,
    grad_mode_override,
    installed_op_hooks,
    is_grad_enabled,
    no_grad,
    ones,
    op_hooks_active,
    profile_ops,
    randn,
    register_op,
    registered_ops,
    remove_op_hook,
    restore_op_hooks,
    set_grad_mode,
    stack,
    tape_nodes_created,
    trace_ops,
    zeros,
)

__all__ = [
    "Tensor", "Parameter", "Module", "Sequential", "ModuleList",
    "Conv2d", "Linear", "BatchNorm1d", "BatchNorm2d", "ReLU", "Tanh", "Sigmoid",
    "Identity", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout",
    "activation_module",
    "SGD", "Adam", "StepLR", "MultiStepLR", "CosineAnnealingLR",
    "functional", "init", "loss", "optim", "profiler", "ste", "utils",
    "backend",
    "concatenate", "stack", "zeros", "ones", "randn",
    # engine: grad modes, tape introspection, op registry
    "no_grad", "enable_grad", "is_grad_enabled", "grad_mode_override",
    "set_grad_mode", "tape_nodes_created",
    "register_op", "registered_ops", "apply_op",
    "add_op_hook", "remove_op_hook", "installed_op_hooks", "restore_op_hooks",
    "profile_ops", "op_hooks_active", "current_layer", "trace_ops",
    # profiler: structured layer-scoped reports
    "OpProfile", "OpStat", "RunProfile", "collect_profile",
    "layer_op_seconds", "profile_inference",
    # engine: backends
    "Backend", "NumpyBackend", "available_backends", "current_backend",
    "get_backend", "register_backend", "set_backend", "use_backend",
    "get_default_dtype", "set_default_dtype",
    "ExecutionState", "capture_execution_state",
]
