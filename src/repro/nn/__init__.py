"""``repro.nn`` — a compact numpy deep-learning framework.

This package is the training substrate for the ALF reproduction: a
define-by-run autograd engine (:mod:`repro.nn.tensor`), functional ops
(:mod:`repro.nn.functional`), layers and containers, initializers,
optimizers, losses and straight-through-estimator primitives.
"""

from . import functional
from . import init
from . import loss
from . import optim
from . import ste
from . import utils
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
    activation_module,
)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, CosineAnnealingLR, MultiStepLR, StepLR
from .tensor import Tensor, concatenate, ones, randn, stack, zeros

__all__ = [
    "Tensor", "Parameter", "Module", "Sequential", "ModuleList",
    "Conv2d", "Linear", "BatchNorm1d", "BatchNorm2d", "ReLU", "Tanh", "Sigmoid",
    "Identity", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout",
    "activation_module",
    "SGD", "Adam", "StepLR", "MultiStepLR", "CosineAnnealingLR",
    "functional", "init", "loss", "optim", "ste", "utils",
    "concatenate", "stack", "zeros", "ones", "randn",
]
