"""Loss functions used by the task and autoencoder optimizers.

The task loss of ALF is cross-entropy plus an L2 weight-decay term; the
autoencoder loss is an MSE reconstruction term plus an L1 mask
regularizer (Sec. III-B of the paper).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from . import functional as F
from .tensor import Tensor


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between raw logits ``(N, C)`` and integer labels ``(N,)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1D array of class indices")
    n = logits.shape[0]
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Negative log-likelihood given log-probabilities."""
    labels = np.asarray(labels)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error; ``target`` may be a Tensor or raw numpy array."""
    target = Tensor.as_tensor(target)
    diff = prediction - target.detach() if not target.requires_grad else prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    target = Tensor.as_tensor(target)
    return (prediction - target).abs().mean()


def l2_regularization(params: Iterable[Tensor]) -> Tensor:
    """Sum of squared parameter values (weight decay / ``Lreg`` in the paper)."""
    total = None
    for param in params:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total


def l1_regularization(params: Iterable[Tensor]) -> Tensor:
    """Sum of absolute parameter values (the sparsity term driving the mask)."""
    total = None
    for param in params:
        term = param.abs().sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total


def accuracy(logits: Tensor, labels: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    predictions = np.argmax(logits.data, axis=1)
    return float(np.mean(predictions == np.asarray(labels)))


def top_k_accuracy(logits: Tensor, labels: np.ndarray, k: int = 5) -> float:
    """Top-k classification accuracy in [0, 1]."""
    labels = np.asarray(labels)
    top_k = np.argsort(-logits.data, axis=1)[:, :k]
    hits = np.any(top_k == labels[:, None], axis=1)
    return float(np.mean(hits))
