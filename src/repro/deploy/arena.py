"""Preallocated, liveness-reused buffer arena for compiled inference plans.

A compiled plan knows every intermediate array it will ever produce — shape,
dtype, the step that writes it and the last step that reads it.  The arena
turns that knowledge into a fixed set of byte buffers sized once at compile
time: each value is assigned a buffer for exactly its live range, and
buffers are recycled between values whose ranges do not overlap (classic
linear-scan register allocation, with bytes instead of registers).

The result: a plan forward performs **zero** large allocations — every
im2col column block, conv output and elementwise result lands in memory
that already exists — and the arena can report exactly how many bytes the
whole forward peaks at, which is what the streaming-conv path budgets
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BufferRef:
    """Handle to one reserved region: which buffer, viewed how."""

    buffer: int
    shape: Tuple[int, ...]
    dtype: np.dtype

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize


@dataclass
class ArenaStats:
    """Size accounting of a finalized arena."""

    #: Bytes actually allocated (sum of buffer capacities) — the peak
    #: working-set the plan's intermediates ever occupy.
    peak_bytes: int = 0
    #: Bytes all reservations would occupy without any reuse (what the
    #: eager per-call-allocation path materializes over one forward).
    naive_bytes: int = 0
    buffers: int = 0
    reservations: int = 0

    @property
    def reuse_ratio(self) -> float:
        """naive / peak — how many times over each byte is recycled."""
        if self.peak_bytes == 0:
            return 1.0
        return self.naive_bytes / self.peak_bytes


class BufferArena:
    """Compile-time reservation + run-time views over preallocated memory.

    Usage is two-phase.  During planning, walk the steps in execution
    order calling :meth:`reserve` for each value born at the current step
    and :meth:`release` for each value whose last reader has run; the
    arena hands out :class:`BufferRef` handles, recycling capacity
    greedily (best-fit on byte size).  Then :meth:`finalize` materializes
    the buffers, after which :meth:`array` returns the concrete ndarray
    view for a handle.  Every array is a dense C-contiguous view from
    offset 0 of its buffer, so dtype alignment is inherited from the
    allocator.
    """

    def __init__(self):
        self._capacities: List[int] = []
        self._free: List[int] = []
        # Identity of the BufferRef currently owning each reserved buffer:
        # release() only honours the exact handle reserve() returned, so a
        # stale ref (whose buffer was recycled to a newer value in between)
        # can never push a live buffer back into the free pool.
        self._owners: Dict[int, BufferRef] = {}
        self._buffers: Optional[List[np.ndarray]] = None
        self._views: Dict[BufferRef, np.ndarray] = {}
        self._dedicated_bytes = 0
        self.stats = ArenaStats()

    # ------------------------------------------------------------------ #
    # Planning phase
    # ------------------------------------------------------------------ #
    def reserve(self, shape: Tuple[int, ...], dtype) -> BufferRef:
        """Reserve a buffer for a value of the given shape/dtype."""
        if self._buffers is not None:
            raise RuntimeError("arena is finalized; no further reservations")
        ref_dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * ref_dtype.itemsize
        self.stats.naive_bytes += nbytes
        self.stats.reservations += 1
        # Best fit: the smallest free buffer that holds the request.
        best = -1
        for index in self._free:
            cap = self._capacities[index]
            if cap >= nbytes and (best < 0 or cap < self._capacities[best]):
                best = index
        if best >= 0:
            self._free.remove(best)
            ref = BufferRef(best, tuple(shape), ref_dtype)
        else:
            self._capacities.append(nbytes)
            ref = BufferRef(len(self._capacities) - 1, tuple(shape), ref_dtype)
        self._owners[ref.buffer] = ref
        return ref

    def release(self, ref: BufferRef) -> None:
        """Return ``ref``'s buffer to the free pool for later reservations.

        Only the exact :class:`BufferRef` object that reserved the buffer
        may release it: a double release raises, and so does releasing a
        stale ref whose buffer was re-reserved by a newer value in between
        (the old ``in self._free`` check missed that case, silently handing
        the live value's buffer to the free pool and aliasing two values).
        """
        if self._buffers is not None:
            raise RuntimeError("arena is finalized; no further releases")
        owner = self._owners.get(ref.buffer)
        if owner is None:
            raise ValueError(f"buffer {ref.buffer} released twice")
        if owner is not ref:
            raise ValueError(
                f"buffer {ref.buffer} was re-reserved after this ref released "
                f"it; releasing the stale ref would alias two live values")
        del self._owners[ref.buffer]
        self._free.append(ref.buffer)

    # ------------------------------------------------------------------ #
    # Execution phase
    # ------------------------------------------------------------------ #
    def finalize(self) -> "BufferArena":
        """Materialize every buffer; the arena becomes immutable."""
        if self._buffers is None:
            self._buffers = [np.empty(cap, dtype=np.uint8)
                             for cap in self._capacities]
            self.stats.peak_bytes = sum(self._capacities) + self._dedicated_bytes
            self.stats.buffers = len(self._capacities)
        return self

    def array(self, ref: BufferRef) -> np.ndarray:
        """The concrete ndarray view backing ``ref`` (cached per handle)."""
        if self._buffers is None:
            raise RuntimeError("arena not finalized; call finalize() first")
        view = self._views.get(ref)
        if view is None:
            raw = self._buffers[ref.buffer][:ref.nbytes]
            view = self._views[ref] = raw.view(ref.dtype).reshape(ref.shape)
        return view

    def zeros_array(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A dedicated zero-initialized array outside the reuse pool.

        Used for padded-input scratch: the border must *stay* zero across
        calls, so the buffer can never be recycled.  Counted in the stats
        as both naive and peak bytes (eager forwards allocate it per call
        via ``np.pad``).
        """
        if self._buffers is not None:
            raise RuntimeError("arena is finalized; no further reservations")
        array = np.zeros(shape, dtype=dtype)
        self.stats.naive_bytes += array.nbytes
        self.stats.reservations += 1
        self._dedicated_bytes += array.nbytes
        return array
