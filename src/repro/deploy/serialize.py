"""The ``repro-plan/1`` wire form of compiled inference plans.

A compiled :class:`~repro.deploy.plan.InferencePlan` is a pile of live
objects — numpy closures over arena views — but everything it *decides*
is a deterministic function of the optimized dataflow graph: the lowering
in :func:`repro.deploy.plan._lower` reproduces the identical step list,
buffer assignment and arena capacities from the identical graph.  So the
wire form serializes the graph (in symbolic-batch form) plus enough
derived layout to cross-check the rebuild:

* ``values`` — every graph value in deterministic register order, each
  shape dimension as an affine ``[m, c]`` pair (``dim = m·batch + c``,
  derived from tracing the model at two batch sizes); constants travel as
  base64-npy exactly like ``repro-job/1`` dataset payloads.
* ``nodes`` — op name (resolved from the op registry on load), input and
  output value indices, kwargs in a tagged encoding that preserves exact
  Python types (ints are affine in the batch too), layer path and any
  fused activation.
* ``weights_digest`` — SHA-256 over all constant arrays (via
  :func:`repro.api.digests.state_digest`), rejecting weight tampering.
* ``steps`` / ``arena`` — the layout the serializing plan actually used
  (per-step :class:`~repro.deploy.arena.BufferRef`\\ s, streaming band
  parameters, buffer capacities).  Load re-lowers the graph and refuses
  payloads whose stored layout disagrees — the loaded plan is the plan
  that was saved, bit for bit, or it is an error.
* ``digest`` — SHA-256 over the whole payload; any bit flip is rejected
  before anything is decoded.

The same symbolic-batch program powers
:meth:`~repro.deploy.plan.InferencePlan.bind`: re-deriving every buffer
shape at another batch size is just decoding the affine dims at a new
``batch`` and re-running the lowering — no model, no re-trace.
"""

from __future__ import annotations

import base64
import io
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..nn.backend import Backend, get_backend
from .plan import InferencePlan, PlanStats, _Graph, _lower, _Node, _Value

__all__ = ["PLAN_SCHEMA", "PlanProgram", "program_from_graphs",
           "bind_program", "plan_payload", "plan_from_payload",
           "save_plan", "load_plan"]

PLAN_SCHEMA = "repro-plan/1"


def _digests():
    # Lazy: repro.api.digests is dependency-light, but importing it runs
    # the repro.api package __init__, which itself imports repro.deploy —
    # fine at call time, a cycle at module-import time.
    from ..api import digests
    return digests


class _NotPolymorphic(Exception):
    """The two traces disagree structurally; fall back to a fixed batch."""


# --------------------------------------------------------------------------- #
# base64-npy array codec (same payload shape as repro-job/1 datasets)
# --------------------------------------------------------------------------- #
def _array_to_b64(array: np.ndarray) -> Dict[str, str]:
    # np.save preserves C/F memory order via the fortran_order header flag,
    # which matters for bit-identity: BLAS kernels round differently for
    # different layouts, so a transposed (F-order) linear weight must come
    # back F-ordered.
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return {"npy": base64.b64encode(buffer.getvalue()).decode("ascii")}


def _array_from_b64(payload: Mapping[str, str]) -> np.ndarray:
    raw = base64.b64decode(payload["npy"])
    return np.load(io.BytesIO(raw), allow_pickle=False)


# --------------------------------------------------------------------------- #
# Tagged kwarg codec: exact Python types, ints affine in the batch
# --------------------------------------------------------------------------- #
def _encode_kwarg(value: Any, other: Any, batch: int, batch_next: int) -> Any:
    """Encode one kwarg leaf, pairing the value from the second trace.

    Integers encode as ``{"i": [m, c]}`` with ``value = m·batch + c`` so a
    reshape target like ``(batch, -1)`` re-derives at any batch size.
    Everything non-integral must be identical across the two traces.
    """
    if value is None:
        if other is not None:
            raise _NotPolymorphic
        return {"n": True}
    if value is Ellipsis:
        if other is not Ellipsis:
            raise _NotPolymorphic
        return {"e": True}
    if isinstance(value, (bool, np.bool_)):
        if bool(value) != bool(other):
            raise _NotPolymorphic
        return {"b": bool(value)}
    if isinstance(value, (int, np.integer)):
        if not isinstance(other, (int, np.integer)):
            raise _NotPolymorphic
        slope = int(other) - int(value)
        return {"i": [slope, int(value) - slope * batch]}
    if isinstance(value, (float, np.floating)):
        if float(value) != float(other):
            raise _NotPolymorphic
        return {"f": float(value)}
    if isinstance(value, str):
        if value != other:
            raise _NotPolymorphic
        return {"s": value}
    if isinstance(value, slice):
        if not isinstance(other, slice):
            raise _NotPolymorphic
        return {"sl": [_encode_kwarg(value.start, other.start, batch, batch_next),
                       _encode_kwarg(value.stop, other.stop, batch, batch_next),
                       _encode_kwarg(value.step, other.step, batch, batch_next)]}
    if isinstance(value, tuple):
        if not isinstance(other, tuple) or len(other) != len(value):
            raise _NotPolymorphic
        return {"t": [_encode_kwarg(v, o, batch, batch_next)
                      for v, o in zip(value, other)]}
    if isinstance(value, list):
        if not isinstance(other, list) or len(other) != len(value):
            raise _NotPolymorphic
        return {"l": [_encode_kwarg(v, o, batch, batch_next)
                      for v, o in zip(value, other)]}
    if isinstance(value, dict):
        if not isinstance(other, dict) or set(other) != set(value):
            raise _NotPolymorphic
        return {"d": {key: _encode_kwarg(value[key], other[key],
                                         batch, batch_next)
                      for key in sorted(value)}}
    raise TypeError(
        f"kwarg of type {type(value).__name__} has no repro-plan/1 encoding")


def _decode_kwarg(encoded: Mapping[str, Any], batch: int) -> Any:
    if len(encoded) != 1:
        raise ValueError(f"malformed kwarg encoding: {encoded!r}")
    (tag, value), = encoded.items()
    if tag == "n":
        return None
    if tag == "e":
        return Ellipsis
    if tag == "b":
        return bool(value)
    if tag == "i":
        return int(value[0]) * batch + int(value[1])
    if tag == "f":
        return float(value)
    if tag == "s":
        return str(value)
    if tag == "sl":
        return slice(*(_decode_kwarg(part, batch) for part in value))
    if tag == "t":
        return tuple(_decode_kwarg(part, batch) for part in value)
    if tag == "l":
        return [_decode_kwarg(part, batch) for part in value]
    if tag == "d":
        return {key: _decode_kwarg(part, batch)
                for key, part in value.items()}
    raise ValueError(f"unknown kwarg tag {tag!r} in repro-plan/1 payload")


# --------------------------------------------------------------------------- #
# Symbolic-batch program
# --------------------------------------------------------------------------- #
@dataclass
class PlanProgram:
    """The serializable core of a plan: the optimized graph, batch-symbolic.

    ``values`` entries hold ``{"kind", "dtype", "dims", "const"}`` where
    ``dims`` is a list of affine ``(m, c)`` pairs and ``const`` indexes
    into :attr:`consts`; ``nodes`` entries hold op name, value indices and
    *encoded* kwargs (decoded only when a graph is instantiated at a
    concrete batch).  One program serves every batch size when
    :attr:`polymorphic` is true, otherwise only :attr:`batch`.
    """

    backend_name: str
    backend_dtype: str
    input_dtype: str
    batch: int
    input_shape: Tuple[int, ...]
    memory_budget: Optional[int]
    polymorphic: bool
    values: List[Dict[str, Any]]
    consts: List[np.ndarray]
    nodes: List[Dict[str, Any]]
    input: int
    output: int


def _ordered_values(graph: _Graph):
    """Graph values in the deterministic order ``_lower``'s reg() assigns."""
    order: List[_Value] = []
    index: Dict[int, int] = {}

    def reg(value: _Value) -> None:
        if id(value) not in index:
            index[id(value)] = len(order)
            order.append(value)

    reg(graph.input)
    for node in graph.nodes:
        for value in node.inputs:
            reg(value)
        reg(node.out)
    reg(graph.output)
    return order, index


def _affine_dims(shape, other_shape, batch: int,
                 batch_next: int) -> List[List[int]]:
    dims: List[List[int]] = []
    for position, size in enumerate(shape):
        size = int(size)
        if other_shape is None:
            dims.append([0, size])
            continue
        slope = int(other_shape[position]) - size
        intercept = size - slope * batch
        if slope < 0 or intercept < 0:
            raise _NotPolymorphic
        dims.append([slope, intercept])
    return dims


def _build_program(graph: _Graph, graph_next: Optional[_Graph], *,
                   batch: int, batch_next: int, backend: Backend,
                   input_shape, memory_budget) -> PlanProgram:
    from ..nn.tensor import _OP_REGISTRY
    order, index = _ordered_values(graph)
    pair: Optional[List[_Value]] = None
    if graph_next is not None:
        order_next, index_next = _ordered_values(graph_next)
        if (len(order_next) != len(order)
                or len(graph_next.nodes) != len(graph.nodes)
                or index_next[id(graph_next.input)] != index[id(graph.input)]
                or index_next[id(graph_next.output)] != index[id(graph.output)]):
            raise _NotPolymorphic
        for node, node_next in zip(graph.nodes, graph_next.nodes):
            if (node.op_name != node_next.op_name
                    or node.layer != node_next.layer
                    or node.activation != node_next.activation
                    or len(node.inputs) != len(node_next.inputs)
                    or [index[id(v)] for v in node.inputs]
                    != [index_next[id(v)] for v in node_next.inputs]
                    or index[id(node.out)] != index_next[id(node_next.out)]
                    or set(node.kwargs) != set(node_next.kwargs)):
                raise _NotPolymorphic
        pair = order_next

    values: List[Dict[str, Any]] = []
    consts: List[np.ndarray] = []
    for position, value in enumerate(order):
        other = pair[position] if pair is not None else None
        if other is not None:
            if (other.kind != value.kind
                    or other.dtype != value.dtype
                    or len(other.shape) != len(value.shape)
                    or (other.is_const and other.array is not None)
                    != (value.is_const and value.array is not None)):
                raise _NotPolymorphic
        dims = _affine_dims(value.shape,
                            other.shape if other is not None else None,
                            batch, batch_next)
        entry: Dict[str, Any] = {"kind": value.kind, "dtype": str(value.dtype),
                                 "dims": dims, "const": None}
        if value.is_const and value.array is not None:
            if any(m != 0 for m, _ in dims):
                raise _NotPolymorphic  # a "constant" scaling with the batch
            entry["const"] = len(consts)
            # The original array object, strides and all: bound plans must
            # share the exact memory the compiled plan computes with.
            consts.append(value.array)
        values.append(entry)

    nodes: List[Dict[str, Any]] = []
    for position, node in enumerate(graph.nodes):
        if _OP_REGISTRY.get(node.op_name) is not node.op:
            raise TypeError(
                f"op {node.op_name!r} is not resolvable from the op "
                f"registry; the plan cannot be serialized")
        node_next = graph_next.nodes[position] if pair is not None else None
        kwargs: Dict[str, Any] = {}
        for key in sorted(node.kwargs):
            other_value = (node_next.kwargs[key] if node_next is not None
                           else node.kwargs[key])
            kwargs[key] = _encode_kwarg(node.kwargs[key], other_value,
                                        batch, batch_next)
        nodes.append({"op": node.op_name,
                      "inputs": [index[id(v)] for v in node.inputs],
                      "out": index[id(node.out)],
                      "kwargs": kwargs,
                      "layer": node.layer,
                      "activation": node.activation})

    return PlanProgram(
        backend_name=backend.name,
        backend_dtype=str(backend.default_dtype),
        input_dtype=str(graph.input.dtype),
        batch=int(batch),
        input_shape=tuple(int(s) for s in input_shape),
        memory_budget=int(memory_budget) if memory_budget else None,
        polymorphic=pair is not None,
        values=values, consts=consts, nodes=nodes,
        input=index[id(graph.input)], output=index[id(graph.output)])


def program_from_graphs(graph: _Graph, graph_next: Optional[_Graph], *,
                        batch: int, batch_next: int, backend: Backend,
                        input_shape, memory_budget) -> PlanProgram:
    """Build the symbolic-batch program from one or two optimized graphs.

    With ``graph_next`` (the same model traced at ``batch_next``), every
    shape dimension and integer kwarg gets an affine form in the batch
    and the program is batch-polymorphic.  Structural divergence between
    the traces — or a missing second graph — falls back to a fixed-batch
    program that still serializes but only serves ``batch``.
    """
    if graph_next is not None:
        try:
            return _build_program(graph, graph_next, batch=batch,
                                  batch_next=batch_next, backend=backend,
                                  input_shape=input_shape,
                                  memory_budget=memory_budget)
        except _NotPolymorphic:
            pass
    return _build_program(graph, None, batch=batch, batch_next=batch_next,
                          backend=backend, input_shape=input_shape,
                          memory_budget=memory_budget)


def program_to_graph(program: PlanProgram, batch: int) -> _Graph:
    """Instantiate the program's graph at a concrete batch size."""
    from ..nn.tensor import _OP_REGISTRY
    batch = int(batch)
    values: List[_Value] = []
    for entry in program.values:
        shape = tuple(int(m) * batch + int(c) for m, c in entry["dims"])
        array = (program.consts[entry["const"]]
                 if entry["const"] is not None else None)
        values.append(_Value(entry["kind"], shape, np.dtype(entry["dtype"]),
                             array=array, is_const=array is not None))
    nodes: List[_Node] = []
    for wire in program.nodes:
        op = _OP_REGISTRY.get(wire["op"])
        if op is None:
            raise ValueError(
                f"repro-plan/1 payload references op {wire['op']!r}, which "
                f"is not in this build's op registry")
        kwargs = {key: _decode_kwarg(encoded, batch)
                  for key, encoded in wire["kwargs"].items()}
        node = _Node(op, [values[i] for i in wire["inputs"]], kwargs,
                     values[wire["out"]], wire["layer"])
        node.activation = wire["activation"]
        node.out.producer = node
        nodes.append(node)
    return _Graph(nodes, values[program.input], values[program.output])


def bind_program(program: PlanProgram, batch: int,
                 backend: Optional[Backend] = None) -> InferencePlan:
    """Lower the program at ``batch`` into a fresh :class:`InferencePlan`.

    No tracing happens here — the graph is decoded from the program and
    run through the standard lowering, so two binds of the same program
    at the same batch produce bit-identical plans.
    """
    batch = int(batch)
    if batch != program.batch and not program.polymorphic:
        raise ValueError(
            f"plan is not batch-polymorphic (the traced graph structure "
            f"depends on the batch size); only batch={program.batch} is "
            f"servable — recompile for batch={batch}")
    if backend is None:
        backend = get_backend(program.backend_name)
        if str(backend.default_dtype) != program.backend_dtype:
            backend = backend.with_dtype(np.dtype(program.backend_dtype))
    graph = program_to_graph(program, batch)
    return _lower(graph, backend, input_shape=tuple(program.input_shape),
                  batch=batch, memory_budget=program.memory_budget,
                  stats=PlanStats())


# --------------------------------------------------------------------------- #
# Wire payload
# --------------------------------------------------------------------------- #
def _jsonify(payload: Any) -> Any:
    """One JSON round trip: tuples→lists, numpy ints→ints, keys→strings."""
    return json.loads(json.dumps(payload))


def _steps_payload(plan: InferencePlan) -> List[Dict[str, Any]]:
    """The derived layout of every step: buffer refs + streaming bands."""
    steps: List[Dict[str, Any]] = []
    for step in plan.steps:
        entry: Dict[str, Any] = {
            "kind": step.kind,
            "op": step.op_name,
            "layer": step.layer,
            "activation": step.activation,
        }
        refs: Dict[str, Any] = {}
        for attr in ("cols_ref", "out_ref", "mask_ref", "argmax_ref"):
            ref = getattr(step, attr, None)
            if ref is not None:
                refs[attr] = {"buffer": int(ref.buffer),
                              "shape": [int(s) for s in ref.shape],
                              "dtype": str(ref.dtype)}
        if refs:
            entry["refs"] = refs
        streamed = getattr(step, "streamed", None)
        if streamed is not None:
            entry["stream"] = {
                "kernel": [int(k) for k in streamed.kernel],
                "stride": [int(s) for s in streamed.stride],
                "band_rows": int(streamed.band_rows),
                "out_hw": [int(v) for v in streamed.out_hw],
            }
        steps.append(entry)
    return steps


def _arena_payload(plan: InferencePlan) -> Dict[str, Any]:
    arena = plan._arena
    return {"capacities": [int(c) for c in arena._capacities],
            "dedicated_bytes": int(arena._dedicated_bytes),
            "peak_bytes": int(arena.stats.peak_bytes)}


def _weights_digest(consts: List[np.ndarray]) -> str:
    return _digests().state_digest(
        {f"{i:06d}": array for i, array in enumerate(consts)})


def plan_payload(plan: InferencePlan) -> Dict[str, Any]:
    """The full versioned ``repro-plan/1`` payload of a compiled plan."""
    program = plan._program
    if program is None:
        raise ValueError(
            "plan is not serializable: the traced graph contains values "
            "the repro-plan/1 codec cannot represent")
    digests = _digests()
    values_payload: List[Dict[str, Any]] = []
    for entry in program.values:
        wire: Dict[str, Any] = {
            "kind": entry["kind"],
            "dtype": entry["dtype"],
            "dims": [[int(m), int(c)] for m, c in entry["dims"]],
        }
        if entry["const"] is not None:
            wire["data"] = _array_to_b64(program.consts[entry["const"]])
        values_payload.append(wire)
    budget = program.memory_budget
    payload: Dict[str, Any] = {
        "schema": PLAN_SCHEMA,
        "backend": program.backend_name,
        "backend_dtype": program.backend_dtype,
        "input_dtype": program.input_dtype,
        "batch": int(plan.batch),
        "input_shape": [int(s) for s in program.input_shape],
        "memory_budget": int(budget) if budget is not None else None,
        "polymorphic": bool(program.polymorphic),
        "values": values_payload,
        "nodes": _jsonify(program.nodes),
        "input": int(program.input),
        "output": int(program.output),
        "weights_digest": _weights_digest(program.consts),
        "steps": _steps_payload(plan),
        "arena": _arena_payload(plan),
    }
    payload["digest"] = digests.payload_digest(
        {key: value for key, value in payload.items() if key != "digest"})
    return payload


def _program_from_payload(payload: Mapping[str, Any]) -> PlanProgram:
    values: List[Dict[str, Any]] = []
    consts: List[np.ndarray] = []
    for wire in payload["values"]:
        entry: Dict[str, Any] = {
            "kind": wire["kind"],
            "dtype": wire["dtype"],
            "dims": [[int(m), int(c)] for m, c in wire["dims"]],
            "const": None,
        }
        if "data" in wire:
            entry["const"] = len(consts)
            consts.append(_array_from_b64(wire["data"]))
        values.append(entry)
    budget = payload.get("memory_budget")
    return PlanProgram(
        backend_name=payload["backend"],
        backend_dtype=payload["backend_dtype"],
        input_dtype=payload["input_dtype"],
        batch=int(payload["batch"]),
        input_shape=tuple(int(s) for s in payload["input_shape"]),
        memory_budget=int(budget) if budget is not None else None,
        polymorphic=bool(payload["polymorphic"]),
        values=values, consts=consts,
        nodes=[dict(node) for node in payload["nodes"]],
        input=int(payload["input"]), output=int(payload["output"]))


def plan_from_payload(payload: Mapping[str, Any]) -> InferencePlan:
    """Validate a ``repro-plan/1`` payload and rebuild its plan.

    Validation order: schema version, whole-payload digest, weights
    digest over the decoded constants, op-registry resolution, and
    finally the stored step/arena layout against the re-lowered plan.
    Every failure is a ``ValueError`` (``TypeError`` for non-mappings) —
    a loaded plan is trustworthy or absent, never silently different.
    """
    if not isinstance(payload, Mapping):
        raise TypeError(
            f"repro-plan payload must be a mapping, "
            f"got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != PLAN_SCHEMA:
        raise ValueError(
            f"unsupported plan schema {schema!r}; this build reads "
            f"{PLAN_SCHEMA!r} only")
    digests = _digests()
    body = {key: value for key, value in payload.items() if key != "digest"}
    if payload.get("digest") != digests.payload_digest(body):
        raise ValueError(
            "repro-plan/1 payload digest mismatch: the payload was "
            "tampered with or corrupted in transit")
    program = _program_from_payload(payload)
    if payload.get("weights_digest") != _weights_digest(program.consts):
        raise ValueError(
            "repro-plan/1 weights digest mismatch: the constant arrays do "
            "not match the digest the plan was saved with")
    plan = bind_program(program, program.batch)
    plan._program = program
    derived = _jsonify({"steps": _steps_payload(plan),
                        "arena": _arena_payload(plan)})
    stored = _jsonify({"steps": payload.get("steps"),
                       "arena": payload.get("arena")})
    if derived != stored:
        raise ValueError(
            "repro-plan/1 layout mismatch: the stored step/arena layout "
            "does not match the re-lowered plan")
    return plan


def save_plan(plan: InferencePlan, path) -> str:
    """Write the canonical-JSON payload to ``path`` (byte-deterministic)."""
    text = _digests().canonical_json(plan.to_dict())
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def load_plan(path) -> InferencePlan:
    """Read and validate a plan saved by :func:`save_plan`."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return plan_from_payload(payload)
