"""Tiled / streaming convolution execution for compiled plans.

The im2col lowering materializes a ``(N, C·KH·KW, OH·OW)`` column block —
``KH·KW`` times the activation it lowers.  For deep models that block is by
far the largest intermediate, so a plan compiled with ``memory_budget=``
splits the spatial output into **row bands**: one band of output rows is
gathered into a fixed scratch buffer, contracted into the matching slice of
the (full) output, and the scratch is reused for the next band.  Peak
column memory then scales with one band instead of one whole layer.

The Eyeriss-style accelerator modeled by the paper schedules convolutions
exactly this way — a static per-layer row-stationary dataflow over on-chip
buffers — so this module is the software mirror of that schedule.

Numerical note: each output element is still the same contraction over the
same reduction axis, but BLAS may pick a different micro-kernel for very
narrow bands, so banded results are not guaranteed bit-identical to the
unbanded einsum (they agree to normal floating-point tolerance).  The plan
compiler therefore only bands convolutions whose column block exceeds the
budget, and never bands below :data:`MIN_BAND_ROWS` output rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

#: Never shrink a band below this many output rows: extremely narrow GEMMs
#: waste the whole point of the lowering (and amplify the numerical
#: difference between banded and unbanded contraction paths).
MIN_BAND_ROWS = 4


def band_plan(out_h: int, cols_row_bytes: int,
              memory_budget: Optional[int]) -> int:
    """Rows per band so that one band's columns fit ``memory_budget`` bytes.

    ``cols_row_bytes`` is the byte size of one output row's column block
    (``N · C·KH·KW · OW · itemsize``).  Returns ``out_h`` (no banding
    needed) when the whole block fits or no budget is set.
    """
    if out_h <= 0:
        raise ValueError("out_h must be positive")
    if memory_budget is None or cols_row_bytes * out_h <= memory_budget:
        return out_h
    rows = max(1, memory_budget // cols_row_bytes)
    return max(MIN_BAND_ROWS, min(out_h, int(rows)))


def band_overrun(band_rows: int, cols_row_bytes: int,
                 memory_budget: Optional[int]) -> int:
    """Bytes by which one ``band_rows``-row band exceeds ``memory_budget``.

    Returns 0 when the band fits (or no budget is set).  A positive value
    means the :data:`MIN_BAND_ROWS` floor won over the budget: the caller
    asked for fewer bytes than even the narrowest permissible band needs,
    so the achievable peak is ``band_rows * cols_row_bytes``, not the
    budget.  The plan compiler surfaces this as a ``UserWarning`` plus
    ``PlanStats.streaming_peak_bytes`` instead of pretending the budget
    held.
    """
    if memory_budget is None:
        return 0
    return max(0, band_rows * cols_row_bytes - int(memory_budget))


def iter_bands(out_h: int, band_rows: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(row_start, row_stop)`` output-row bands covering ``out_h``."""
    for start in range(0, out_h, band_rows):
        yield start, min(out_h, start + band_rows)


@dataclass
class StreamedConv:
    """Execution state of one banded convolution step.

    ``padded`` is the dedicated zero-bordered input scratch (borders are
    written once at allocation and never touched again); ``cols`` is the
    band-sized column scratch reused across bands.
    """

    kernel: Tuple[int, int]
    stride: Tuple[int, int]
    band_rows: int
    out_hw: Tuple[int, int]

    def run(self, backend, x: np.ndarray, padded: np.ndarray,
            cols: np.ndarray, w_mat: np.ndarray, out3d: np.ndarray) -> None:
        """One full banded convolution: fill ``out3d`` slice by slice."""
        n, c = x.shape[0], x.shape[1]
        kh, kw = self.kernel
        sh, sw = self.stride
        out_h, out_w = self.out_hw
        ph = (padded.shape[2] - x.shape[2]) // 2
        pw = (padded.shape[3] - x.shape[3]) // 2
        if ph or pw:
            padded[:, :, ph:ph + x.shape[2], pw:pw + x.shape[3]] = x
            source = padded
        else:
            source = x
        strides = (
            source.strides[0], source.strides[1], source.strides[2],
            source.strides[3], source.strides[2] * sh, source.strides[3] * sw,
        )
        shape = (n, c, kh, kw, out_h, out_w)
        windows = np.lib.stride_tricks.as_strided(
            source, shape=shape, strides=strides)
        for r0, r1 in iter_bands(out_h, self.band_rows):
            rows = r1 - r0
            band_cols = cols[:, :, :rows * out_w]
            np.copyto(
                band_cols.reshape(n, c, kh, kw, rows, out_w),
                windows[:, :, :, :, r0:r1, :],
            )
            backend.einsum_out(
                "of,nfl->nol", w_mat, band_cols,
                out=out3d[:, :, r0 * out_w:r1 * out_w],
            )
