"""Trace-based compilation of a model into a static inference plan.

:func:`compile` runs one abstract forward pass of a model under the op
tracer (:func:`repro.nn.trace_ops`), reconstructs the dataflow graph of
registered ops, optimizes it (constant freezing, optional BatchNorm
folding, dead-filter elision, activation fusion, dead-code elimination)
and lowers it onto a :class:`~repro.deploy.arena.BufferArena` of
preallocated, liveness-reused buffers.  The result is an
:class:`InferencePlan`: a flat list of steps whose heavy ops write into
memory that already exists — ``plan(x)`` performs no large allocations.

Numerical contract: with the default options a plan forward is
**bit-identical** to the eager ``model(x)`` under ``no_grad()``.  Every
specialized step replays the exact eager kernel with an ``out=``
destination (the in-place substitutions are verified bit-exact for the
numpy backend); anything without a verified in-place form falls back to
the op's own forward.  Two opt-ins trade bits for speed/memory:
``fold_bn=True`` folds inference-mode BatchNorm affine chains into the
preceding convolution's weights (equal only to floating-point
tolerance), and ``memory_budget=`` streams oversized convolutions in row
bands (same tolerance caveat, see :mod:`repro.deploy.tiling`).

Plans are snapshots: parameter arrays are bound by reference where the
trace uses them directly, but any value derived from parameters (masked
weights, BatchNorm scale chains) is baked at compile time.  Recompile
after mutating a model.  A plan is not thread-safe — it owns one set of
buffers; compile one plan per thread instead.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..nn.backend import Backend, current_backend, get_backend, use_backend
from ..nn.module import Module
from ..nn.tensor import (
    Tensor,
    add_op_hook,
    current_layer,
    no_grad,
    remove_op_hook,
    trace_ops,
)
from .arena import ArenaStats, BufferArena, BufferRef
from .tiling import MIN_BAND_ROWS, StreamedConv, band_overrun, band_plan

__all__ = ["compile", "InferencePlan", "PlanStats"]


# --------------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------------- #
class _TraceRecord:
    __slots__ = ("op", "arrays", "kwargs", "out", "layer")

    def __init__(self, op, arrays, kwargs, out, layer):
        self.op = op
        self.arrays = arrays
        self.kwargs = kwargs
        self.out = out
        self.layer = layer


class _Tracer:
    """Collects one :class:`_TraceRecord` per executed op, in order.

    Records hold references to every input/output array, so ``id()`` keys
    stay unique for the lifetime of the trace.
    """

    def __init__(self):
        self.records: List[_TraceRecord] = []

    def record(self, op, arrays, kwargs, out) -> None:
        self.records.append(
            _TraceRecord(op, arrays, dict(kwargs), out, current_layer()))


def _noop_hook(name: str, seconds: float, layer: str) -> None:
    # Installed during tracing only so Module.__call__ pushes layer scopes
    # (current_layer() then yields the same dot paths the eager profiler
    # reports).
    pass


# --------------------------------------------------------------------------- #
# Graph IR
# --------------------------------------------------------------------------- #
class _Value:
    """One array in the traced dataflow: input, constant or op temporary."""

    __slots__ = ("kind", "shape", "dtype", "producer", "array", "is_const",
                 "index")

    def __init__(self, kind: str, shape, dtype, array=None, is_const=False):
        self.kind = kind                    # "input" | "const" | "temp"
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.producer: Optional["_Node"] = None
        self.array = array                  # traced/bound array (may be None)
        self.is_const = is_const
        self.index: Optional[int] = None    # register slot, set at lowering


class _Node:
    """One traced op application."""

    __slots__ = ("op", "op_name", "inputs", "kwargs", "out", "layer",
                 "activation")

    def __init__(self, op, inputs, kwargs, out, layer):
        self.op = op
        self.op_name = op.name
        self.inputs: List[_Value] = inputs
        self.kwargs: Dict[str, Any] = kwargs
        self.out: _Value = out
        self.layer = layer
        self.activation: Optional[str] = None  # fused into conv steps


class _Graph:
    def __init__(self, nodes: List[_Node], input_value: _Value,
                 output_value: _Value):
        self.nodes = nodes
        self.input = input_value
        self.output = output_value

    def consumers(self) -> Dict[_Value, List[Tuple[_Node, int]]]:
        uses: Dict[_Value, List[Tuple[_Node, int]]] = {}
        for node in self.nodes:
            for position, value in enumerate(node.inputs):
                uses.setdefault(value, []).append((node, position))
        return uses


def _build_graph(records: List[_TraceRecord], input_array: np.ndarray,
                 output_array: np.ndarray) -> _Graph:
    values: Dict[int, _Value] = {}
    input_value = _Value("input", input_array.shape, input_array.dtype)
    values[id(input_array)] = input_value

    def value_for(array: np.ndarray) -> _Value:
        value = values.get(id(array))
        if value is None:
            # Never produced by a traced op: a leaf constant (parameter,
            # running statistic, python-scalar promotion) bound by reference.
            value = _Value("const", array.shape, array.dtype,
                           array=array, is_const=True)
            values[id(array)] = value
        return value

    nodes: List[_Node] = []
    for record in records:
        inputs = [value_for(a) for a in record.arrays]
        out = _Value("temp", record.out.shape, record.out.dtype,
                     array=record.out,
                     is_const=all(v.is_const for v in inputs))
        node = _Node(record.op, inputs, record.kwargs, out, record.layer)
        out.producer = node
        values[id(record.out)] = out
        nodes.append(node)

    output_value = values.get(id(output_array))
    if output_value is None:
        raise RuntimeError("model output was not produced by a traced op")
    return _Graph(nodes, input_value, output_value)


# --------------------------------------------------------------------------- #
# Optimization passes
# --------------------------------------------------------------------------- #
def _freeze_consts(graph: _Graph) -> int:
    """Turn const-valued temporaries into leaves holding their traced array.

    The traced array *is* the op's exact result, so this is bit-identical
    constant folding for free: inference-mode BatchNorm scale chains,
    masked-weight products and reshaped parameters all collapse to a
    single bound array, and dead-code elimination removes their producer
    chains from the per-call step list.
    """
    frozen = 0
    for node in graph.nodes:
        if node.out.is_const and node.out.array is not None \
                and node.out.producer is not None:
            node.out.producer = None
            frozen += 1
    return frozen


def _is_const(value: _Value) -> bool:
    return value.is_const and value.array is not None


def _fold_affine_chains(graph: _Graph) -> int:
    """Fold per-channel affine chains (inference BatchNorm) into conv weights.

    A convolution followed by a sole-consumer chain of ``add``/``mul``/
    ``div`` ops whose other operand is a per-channel constant rewrites to
    one convolution with scaled weights and a fused bias.  Not
    bit-identical (the rounding of the affine is moved into the weights);
    only applied under ``fold_bn=True``.
    """
    folded = 0
    while True:
        uses = graph.consumers()
        applied = False
        for node in graph.nodes:
            if node.op_name != "conv2d" or node.activation is not None:
                continue
            weight = node.inputs[1]
            bias = node.inputs[2] if len(node.inputs) > 2 else None
            if not _is_const(weight) or (bias is not None and not _is_const(bias)):
                continue
            co = weight.shape[0]
            dtype = weight.dtype
            scale = np.ones(co, dtype=dtype)
            shift = np.zeros(co, dtype=dtype)
            chain: List[_Node] = []
            value = node.out
            while True:
                consumers = uses.get(value, [])
                if len(consumers) != 1 or value is graph.output:
                    break
                nxt, position = consumers[0]
                if nxt.op_name not in ("add", "mul", "div") or len(nxt.inputs) != 2:
                    break
                other = nxt.inputs[1 - position]
                if not _is_const(other):
                    break
                if nxt.op_name == "div" and position != 0:
                    break
                const = other.array
                try:
                    bshape = np.broadcast_shapes(const.shape, (1, co, 1, 1))
                except ValueError:
                    break
                if bshape != (1, co, 1, 1):
                    break
                cvec = np.broadcast_to(
                    const.reshape(-1), (co,)).astype(dtype, copy=True)
                if nxt.op_name == "add":
                    shift = shift + cvec
                elif nxt.op_name == "mul":
                    scale = scale * cvec
                    shift = shift * cvec
                else:
                    scale = scale / cvec
                    shift = shift / cvec
                chain.append(nxt)
                value = nxt.out
            if not chain:
                continue
            new_weight = weight.array * scale.reshape(co, 1, 1, 1)
            old_bias = bias.array if bias is not None else np.zeros(co, dtype=dtype)
            new_bias = old_bias * scale + shift
            weight_value = _Value("const", new_weight.shape, new_weight.dtype,
                                  array=new_weight, is_const=True)
            bias_value = _Value("const", new_bias.shape, new_bias.dtype,
                                array=new_bias, is_const=True)
            node.inputs = [node.inputs[0], weight_value, bias_value]
            node.out = chain[-1].out
            node.out.producer = node
            removed = set(chain)
            graph.nodes = [n for n in graph.nodes if n not in removed]
            folded += len(chain)
            applied = True
            break
        if not applied:
            return folded


_ZERO_PRESERVING = ("relu", "tanh")


def _elide_dead_filters(graph: _Graph) -> int:
    """Remove all-zero conv output channels consumed by a following conv.

    A fully-masked code filter produces an exactly-zero channel; through
    zero-preserving activations it contributes exactly-zero addends to the
    next convolution's reduction, so both the dead filter rows and the
    matching input channels of the consumer can be dropped.
    """
    elided = 0
    while True:
        uses = graph.consumers()
        applied = False
        for node in graph.nodes:
            if node.op_name != "conv2d":
                continue
            weight = node.inputs[1]
            bias = node.inputs[2] if len(node.inputs) > 2 else None
            if not _is_const(weight) or (bias is not None and not _is_const(bias)):
                continue
            w = weight.array
            co = w.shape[0]
            zero = ~w.reshape(co, -1).any(axis=1)
            if bias is not None:
                zero &= (bias.array == 0)
            if not zero.any() or zero.all() and co == 1:
                continue
            keep = np.flatnonzero(~zero)
            if keep.size == 0:
                keep = np.array([0])
            if keep.size == co:
                continue
            # Walk the sole-consumer chain of zero-preserving activations
            # down to a consuming convolution.
            chain: List[_Node] = []
            value = node.out
            consumer = None
            while True:
                consumers = uses.get(value, [])
                if len(consumers) != 1 or value is graph.output:
                    break
                nxt, position = consumers[0]
                if nxt.op_name == "conv2d" and position == 0:
                    consumer = nxt
                    break
                if nxt.op_name in _ZERO_PRESERVING and len(nxt.inputs) == 1:
                    chain.append(nxt)
                    value = nxt.out
                    continue
                break
            if consumer is None:
                continue
            next_weight = consumer.inputs[1]
            if not _is_const(next_weight):
                continue
            new_w = np.ascontiguousarray(w[keep])
            weight_value = _Value("const", new_w.shape, new_w.dtype,
                                  array=new_w, is_const=True)
            node.inputs[1] = weight_value
            if bias is not None:
                new_b = np.ascontiguousarray(bias.array[keep])
                node.inputs[2] = _Value("const", new_b.shape, new_b.dtype,
                                        array=new_b, is_const=True)
            new_nw = np.ascontiguousarray(next_weight.array[:, keep, :, :])
            consumer.inputs[1] = _Value("const", new_nw.shape, new_nw.dtype,
                                        array=new_nw, is_const=True)
            for val in [node.out] + [n.out for n in chain]:
                val.shape = (val.shape[0], int(keep.size)) + val.shape[2:]
                val.array = None  # traced array has the old channel count
            elided += int(zero.sum())
            applied = True
            break
        if not applied:
            return elided


_FUSABLE_ACTIVATIONS = ("relu", "tanh", "sigmoid")


def _fuse_activations(graph: _Graph) -> int:
    """Fuse a conv's sole-consumer activation into the conv step itself."""
    fused = 0
    while True:
        uses = graph.consumers()
        applied = False
        for node in graph.nodes:
            if node.op_name != "conv2d" or node.activation is not None:
                continue
            if not _is_const(node.inputs[1]):
                continue
            if node.out is graph.output:
                continue
            consumers = uses.get(node.out, [])
            if len(consumers) != 1:
                continue
            act, _ = consumers[0]
            if act.op_name not in _FUSABLE_ACTIVATIONS or len(act.inputs) != 1:
                continue
            node.activation = act.op_name
            node.out = act.out
            node.out.producer = node
            graph.nodes = [n for n in graph.nodes if n is not act]
            fused += 1
            applied = True
            break
        if not applied:
            return fused


def _eliminate_dead_code(graph: _Graph) -> int:
    # Walk producers from the output; frozen constants have no producer, so
    # the chains that computed them at trace time are never reached and drop
    # out of the per-call step list.
    needed_nodes: set = set()
    seen: set = set()
    stack = [graph.output]
    while stack:
        value = stack.pop()
        if value in seen:
            continue
        seen.add(value)
        if value.producer is not None:
            needed_nodes.add(value.producer)
            stack.extend(value.producer.inputs)
    before = len(graph.nodes)
    graph.nodes = [n for n in graph.nodes if n in needed_nodes]
    return before - len(graph.nodes)


# --------------------------------------------------------------------------- #
# Steps
# --------------------------------------------------------------------------- #
class _Step:
    """One executable unit of a plan.

    ``run(regs)`` reads input registers and produces the output register;
    ``bind(arena, regs)`` resolves arena references to concrete arrays
    once, after the arena is finalized.  ``kind`` distinguishes
    specialized (arena-backed, in-place) steps from view and generic
    fallback steps.
    """

    kind = "generic"
    op_name = "?"
    layer = ""
    activation: Optional[str] = None

    def bind(self, arena: BufferArena, regs: List[Optional[np.ndarray]]) -> None:
        pass

    def run(self, regs: List[Optional[np.ndarray]]) -> None:
        raise NotImplementedError


class _GenericStep(_Step):
    """Fallback: execute the op's own forward, fresh output per call."""

    def __init__(self, node: _Node, in_indices: List[int], out_index: int):
        self.op = node.op
        self.op_name = node.op_name
        self.layer = node.layer
        self.kwargs = node.kwargs
        self.in_indices = in_indices
        self.out_index = out_index

    def run(self, regs):
        data, _ctx = self.op.forward(
            *[regs[i] for i in self.in_indices], **self.kwargs)
        regs[self.out_index] = data


class _ViewStep(_Step):
    """reshape/transpose/getitem: rebind the output register per call."""

    kind = "view"

    def __init__(self, node: _Node, in_index: int, out_index: int):
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_index = in_index
        self.out_index = out_index
        if node.op_name == "reshape":
            shape = node.kwargs["shape"]
            self.run = lambda regs: regs.__setitem__(
                out_index, regs[in_index].reshape(shape))
        elif node.op_name == "transpose":
            axes = node.kwargs["axes"]
            self.run = lambda regs: regs.__setitem__(
                out_index, regs[in_index].transpose(axes))
        else:  # getitem
            index = node.kwargs["index"]
            self.run = lambda regs: regs.__setitem__(
                out_index, regs[in_index][index])


class _ConvStep(_Step):
    """im2col convolution into arena memory, with optional fused activation
    and optional row-band streaming."""

    kind = "conv"

    def __init__(self, backend, node: _Node, in_index: int, out_index: int,
                 cols_ref: BufferRef, out_ref: BufferRef,
                 mask_ref: Optional[BufferRef],
                 padded: Optional[np.ndarray], center,
                 streamed: Optional[StreamedConv]):
        self.backend = backend
        self.op_name = node.op_name
        self.layer = node.layer
        self.activation = node.activation
        self.in_index = in_index
        self.out_index = out_index
        self.cols_ref = cols_ref
        self.out_ref = out_ref
        self.mask_ref = mask_ref
        self.padded = padded
        self.center = center
        self.streamed = streamed
        weight = node.inputs[1].array
        self.kernel = weight.shape[2:4]
        self.stride = node.kwargs["stride"]
        self.w_mat = weight.reshape(weight.shape[0], -1)
        bias = node.inputs[2].array if len(node.inputs) > 2 else None
        self.bias_r = (bias.reshape(1, weight.shape[0], 1, 1)
                       if bias is not None else None)

    def bind(self, arena, regs):
        self.cols = arena.array(self.cols_ref)
        self.out4 = arena.array(self.out_ref)
        n, co, oh, ow = self.out4.shape
        self.out3d = self.out4.reshape(n, co, oh * ow)
        self.mask = arena.array(self.mask_ref) if self.mask_ref else None
        regs[self.out_index] = self.out4

    def run(self, regs):
        x = regs[self.in_index]
        if self.streamed is not None:
            self.streamed.run(self.backend, x, self.padded if
                              self.padded is not None else x,
                              self.cols, self.w_mat, self.out3d)
        else:
            if self.padded is not None:
                self.padded[self.center] = x
                source = self.padded
            else:
                source = x
            self.backend.im2col_out(source, self.kernel, self.stride, (0, 0),
                                    out=self.cols)
            self.backend.einsum_out("of,nfl->nol", self.w_mat, self.cols,
                                    out=self.out3d)
        out = self.out4
        if self.bias_r is not None:
            np.add(out, self.bias_r, out=out)
        if self.activation == "relu":
            np.greater(out, 0, out=self.mask)
            np.multiply(out, self.mask, out=out)
        elif self.activation == "tanh":
            np.tanh(out, out=out)
        elif self.activation == "sigmoid":
            np.negative(out, out=out)
            np.exp(out, out=out)
            np.add(out, 1.0, out=out)
            np.divide(1.0, out, out=out)


class _MaxPoolStep(_Step):
    kind = "max_pool"

    def __init__(self, backend, node: _Node, in_index: int, out_index: int,
                 cols_ref: BufferRef, argmax_ref: BufferRef,
                 out_ref: BufferRef):
        self.backend = backend
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_index = in_index
        self.out_index = out_index
        self.cols_ref = cols_ref
        self.argmax_ref = argmax_ref
        self.out_ref = out_ref
        self.kernel = node.kwargs["kernel"]
        self.stride = node.kwargs["stride"]

    def bind(self, arena, regs):
        cols = arena.array(self.cols_ref)
        n = cols.shape[0]
        window = self.kernel[0] * self.kernel[1]
        self.cols = cols
        self.cols4 = cols.reshape(n, cols.shape[1] // window, window,
                                  cols.shape[2])
        self.argmax = arena.array(self.argmax_ref)
        self.out4 = arena.array(self.out_ref)
        regs[self.out_index] = self.out4

    def run(self, regs):
        x = regs[self.in_index]
        self.backend.im2col_out(x, self.kernel, self.stride, (0, 0),
                                out=self.cols)
        np.argmax(self.cols4, axis=2, out=self.argmax)
        taken = self.backend.take_along_axis(
            self.cols4, self.argmax[:, :, None, :], axis=2)
        np.copyto(self.out4, taken.reshape(self.out4.shape))


class _AvgPoolStep(_Step):
    kind = "avg_pool"

    def __init__(self, backend, node: _Node, in_index: int, out_index: int,
                 cols_ref: BufferRef, out_ref: BufferRef):
        self.backend = backend
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_index = in_index
        self.out_index = out_index
        self.cols_ref = cols_ref
        self.out_ref = out_ref
        self.kernel = node.kwargs["kernel"]
        self.stride = node.kwargs["stride"]

    def bind(self, arena, regs):
        cols = arena.array(self.cols_ref)
        n = cols.shape[0]
        window = self.kernel[0] * self.kernel[1]
        self.cols = cols
        self.cols4 = cols.reshape(n, cols.shape[1] // window, window,
                                  cols.shape[2])
        self.out4 = arena.array(self.out_ref)
        self.out3 = self.out4.reshape(self.out4.shape[0], self.out4.shape[1],
                                      -1)
        regs[self.out_index] = self.out4

    def run(self, regs):
        x = regs[self.in_index]
        self.backend.im2col_out(x, self.kernel, self.stride, (0, 0),
                                out=self.cols)
        np.mean(self.cols4, axis=2, out=self.out3)


class _MatmulStep(_Step):
    kind = "matmul"

    def __init__(self, backend, node: _Node, in_indices, out_index,
                 out_ref: BufferRef):
        self.backend = backend
        self.op_name = node.op_name
        self.layer = node.layer
        self.a_index, self.b_index = in_indices
        self.out_index = out_index
        self.out_ref = out_ref

    def bind(self, arena, regs):
        self.out = arena.array(self.out_ref)
        regs[self.out_index] = self.out

    def run(self, regs):
        self.backend.matmul_out(regs[self.a_index], regs[self.b_index],
                                out=self.out)


class _ConcatStep(_Step):
    kind = "concat"

    def __init__(self, node: _Node, in_indices, out_index,
                 out_ref: BufferRef):
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_indices = in_indices
        self.out_index = out_index
        self.out_ref = out_ref
        self.axis = node.kwargs["axis"]

    def bind(self, arena, regs):
        self.out = arena.array(self.out_ref)
        regs[self.out_index] = self.out

    def run(self, regs):
        np.concatenate([regs[i] for i in self.in_indices], axis=self.axis,
                       out=self.out)


class _PadStep(_Step):
    """pad2d into a dedicated zero buffer: borders are written once at
    compile time, only the center is copied per call."""

    kind = "pad"

    def __init__(self, node: _Node, in_index, out_index,
                 out_array: np.ndarray):
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_index = in_index
        self.out_index = out_index
        self.out = out_array
        padding = node.kwargs["padding"]
        ndim = len(node.out.shape)
        self.center = tuple(
            slice(None) if i < ndim - 2 else slice(padding, -padding)
            for i in range(ndim))

    def bind(self, arena, regs):
        regs[self.out_index] = self.out

    def run(self, regs):
        self.out[self.center] = regs[self.in_index]


class _EltwiseStep(_Step):
    """One numpy ufunc with an ``out=`` destination in the arena."""

    kind = "eltwise"

    def __init__(self, node: _Node, ufunc, in_indices, out_index,
                 out_ref: BufferRef):
        self.op_name = node.op_name
        self.layer = node.layer
        self.ufunc = ufunc
        self.in_indices = tuple(in_indices)
        self.out_index = out_index
        self.out_ref = out_ref

    def bind(self, arena, regs):
        self.out = arena.array(self.out_ref)
        regs[self.out_index] = self.out

    def run(self, regs):
        self.ufunc(*[regs[i] for i in self.in_indices], out=self.out)


class _ReluStep(_Step):
    """Standalone relu replaying the eager ``a * (a > 0)`` bit pattern."""

    kind = "relu"

    def __init__(self, node: _Node, in_index, out_index,
                 mask_ref: BufferRef, out_ref: BufferRef):
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_index = in_index
        self.out_index = out_index
        self.mask_ref = mask_ref
        self.out_ref = out_ref

    def bind(self, arena, regs):
        self.mask = arena.array(self.mask_ref)
        self.out = arena.array(self.out_ref)
        regs[self.out_index] = self.out

    def run(self, regs):
        a = regs[self.in_index]
        np.greater(a, 0, out=self.mask)
        np.multiply(a, self.mask, out=self.out)


class _SigmoidStep(_Step):
    kind = "sigmoid"

    def __init__(self, node: _Node, in_index, out_index, out_ref: BufferRef):
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_index = in_index
        self.out_index = out_index
        self.out_ref = out_ref

    def bind(self, arena, regs):
        self.out = arena.array(self.out_ref)
        regs[self.out_index] = self.out

    def run(self, regs):
        out = self.out
        np.negative(regs[self.in_index], out=out)
        np.exp(out, out=out)
        np.add(out, 1.0, out=out)
        np.divide(1.0, out, out=out)


class _ClipStep(_Step):
    kind = "clip"

    def __init__(self, node: _Node, in_index, out_index, out_ref: BufferRef):
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_index = in_index
        self.out_index = out_index
        self.out_ref = out_ref
        self.low = node.kwargs["low"]
        self.high = node.kwargs["high"]

    def bind(self, arena, regs):
        self.out = arena.array(self.out_ref)
        regs[self.out_index] = self.out

    def run(self, regs):
        np.clip(regs[self.in_index], self.low, self.high, out=self.out)


class _ReduceStep(_Step):
    """max reduction into the arena.

    Only ``max`` lowers here: it is exact (no rounding), so the reduction
    order an ``out=`` destination induces cannot change bits.  ``sum``
    with ``out=`` skips numpy's pairwise accumulation and *does* change
    bits, so sum reductions stay on the generic path.
    """

    kind = "reduce"

    def __init__(self, node: _Node, in_index, out_index, out_ref: BufferRef):
        self.op_name = node.op_name
        self.layer = node.layer
        self.in_index = in_index
        self.out_index = out_index
        self.out_ref = out_ref
        self.axis = node.kwargs["axis"]
        self.keepdims = node.kwargs["keepdims"]

    def bind(self, arena, regs):
        self.out = arena.array(self.out_ref)
        regs[self.out_index] = self.out

    def run(self, regs):
        np.max(regs[self.in_index], axis=self.axis, keepdims=self.keepdims,
               out=self.out)


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #
_VIEW_OPS = ("reshape", "transpose", "getitem")
_UNARY_UFUNCS = {"neg": np.negative, "exp": np.exp, "log": np.log,
                 "abs": np.absolute, "tanh": np.tanh}
_BINARY_UFUNCS = {"add": np.add, "mul": np.multiply, "div": np.true_divide,
                  "maximum": np.maximum}


@dataclass
class PlanStats:
    """Compile-time accounting of an :class:`InferencePlan`."""

    steps: int = 0
    specialized: int = 0
    views: int = 0
    generic: int = 0
    streamed_convs: int = 0
    fused_activations: int = 0
    frozen_consts: int = 0
    folded_ops: int = 0
    elided_filters: int = 0
    dce_removed: int = 0
    #: Largest single-band column block any streamed conv actually needs.
    #: May exceed ``memory_budget`` when the MIN_BAND_ROWS floor wins —
    #: that is the *achievable* peak, and a UserWarning names the layer.
    streaming_peak_bytes: int = 0
    step_counts: Dict[str, int] = field(default_factory=dict)
    arena: ArenaStats = field(default_factory=ArenaStats)
    #: Arena peak bytes per bound batch size; the dict is shared between a
    #: plan and everything :meth:`InferencePlan.bind` derives from it, so
    #: any plan in the family reports the peaks of all of them.
    batch_peaks: Dict[int, int] = field(default_factory=dict)


def _lower(graph: _Graph, backend: Backend, *, input_shape, batch,
           memory_budget, stats: PlanStats) -> "InferencePlan":
    values: List[_Value] = []

    def reg(value: _Value) -> int:
        if value.index is None:
            value.index = len(values)
            values.append(value)
        return value.index

    reg(graph.input)
    for node in graph.nodes:
        for value in node.inputs:
            reg(value)
        reg(node.out)
    reg(graph.output)

    # View outputs alias their base value's storage; liveness is tracked on
    # the base so a buffer is only recycled once every view of it is dead.
    alias: Dict[_Value, _Value] = {}
    for node in graph.nodes:
        if node.op_name in _VIEW_OPS:
            alias[node.out] = node.inputs[0]

    def base_of(value: _Value) -> _Value:
        while value in alias:
            value = alias[value]
        return value

    last_use: Dict[_Value, int] = {}
    for i, node in enumerate(graph.nodes):
        for value in node.inputs:
            last_use[base_of(value)] = i

    out_base = base_of(graph.output)
    arena = BufferArena()
    live: Dict[_Value, BufferRef] = {}
    steps: List[_Step] = []
    specialize = backend.supports_inplace

    def reserve_out(value: _Value) -> BufferRef:
        ref = arena.reserve(value.shape, value.dtype)
        live[value] = ref
        return ref

    for i, node in enumerate(graph.nodes):
        scratch: List[BufferRef] = []
        in_indices = [v.index for v in node.inputs]
        out_index = node.out.index
        name = node.op_name
        step: Optional[_Step] = None

        if name in _VIEW_OPS:
            step = _ViewStep(node, in_indices[0], out_index)
        elif specialize and name == "conv2d":
            weight = node.inputs[1]
            bias = node.inputs[2] if len(node.inputs) > 2 else None
            if _is_const(weight) and (bias is None or _is_const(bias)):
                nb, ci, h, w = node.inputs[0].shape
                co, _, kh, kw = weight.array.shape
                oh, ow = node.out.shape[2], node.out.shape[3]
                x_dtype = node.inputs[0].dtype
                feat = ci * kh * kw
                cols_shape = (nb, feat, oh * ow)
                stream = None
                if memory_budget and oh > 1:
                    cols_bytes = nb * feat * oh * ow * x_dtype.itemsize
                    if cols_bytes > memory_budget:
                        row_bytes = nb * feat * ow * x_dtype.itemsize
                        band_rows = band_plan(oh, row_bytes, memory_budget)
                        if band_rows < oh:
                            band_bytes = band_rows * row_bytes
                            overrun = band_overrun(band_rows, row_bytes,
                                                   memory_budget)
                            if overrun:
                                warnings.warn(
                                    f"memory_budget={memory_budget} is not "
                                    f"achievable for conv layer "
                                    f"'{node.layer or '<root>'}': the "
                                    f"MIN_BAND_ROWS={MIN_BAND_ROWS} floor "
                                    f"needs {band_bytes} bytes per band "
                                    f"({overrun} over budget)",
                                    UserWarning, stacklevel=2)
                            stats.streaming_peak_bytes = max(
                                stats.streaming_peak_bytes, band_bytes)
                            stream = StreamedConv(
                                kernel=(kh, kw),
                                stride=tuple(node.kwargs["stride"]),
                                band_rows=band_rows, out_hw=(oh, ow))
                            cols_shape = (nb, feat, band_rows * ow)
                            stats.streamed_convs += 1
                padded = None
                center = None
                ph, pw = node.kwargs["padding"]
                if ph or pw:
                    padded = arena.zeros_array(
                        (nb, ci, h + 2 * ph, w + 2 * pw), x_dtype)
                    center = (slice(None), slice(None),
                              slice(ph, ph + h), slice(pw, pw + w))
                cols_ref = arena.reserve(cols_shape, x_dtype)
                scratch.append(cols_ref)
                mask_ref = None
                if node.activation == "relu":
                    mask_ref = arena.reserve(node.out.shape, np.bool_)
                    scratch.append(mask_ref)
                step = _ConvStep(backend, node, in_indices[0], out_index,
                                 cols_ref, reserve_out(node.out), mask_ref,
                                 padded, center, stream)
        elif specialize and name == "max_pool2d":
            nb, c = node.inputs[0].shape[:2]
            kernel = node.kwargs["kernel"]
            oh, ow = node.out.shape[2], node.out.shape[3]
            window = kernel[0] * kernel[1]
            cols_ref = arena.reserve((nb, c * window, oh * ow),
                                     node.inputs[0].dtype)
            argmax_ref = arena.reserve((nb, c, oh * ow), np.intp)
            scratch += [cols_ref, argmax_ref]
            step = _MaxPoolStep(backend, node, in_indices[0], out_index,
                                cols_ref, argmax_ref, reserve_out(node.out))
        elif specialize and name == "avg_pool2d":
            nb, c = node.inputs[0].shape[:2]
            kernel = node.kwargs["kernel"]
            oh, ow = node.out.shape[2], node.out.shape[3]
            window = kernel[0] * kernel[1]
            cols_ref = arena.reserve((nb, c * window, oh * ow),
                                     node.inputs[0].dtype)
            scratch.append(cols_ref)
            step = _AvgPoolStep(backend, node, in_indices[0], out_index,
                                cols_ref, reserve_out(node.out))
        elif specialize and name == "matmul":
            if all(len(v.shape) >= 2 for v in node.inputs):
                step = _MatmulStep(backend, node, in_indices, out_index,
                                   reserve_out(node.out))
        elif specialize and name == "concatenate":
            step = _ConcatStep(node, in_indices, out_index,
                               reserve_out(node.out))
        elif specialize and name == "pad2d":
            out_array = arena.zeros_array(node.out.shape, node.out.dtype)
            step = _PadStep(node, in_indices[0], out_index, out_array)
        elif specialize and name in _BINARY_UFUNCS and len(in_indices) == 2:
            step = _EltwiseStep(node, _BINARY_UFUNCS[name], in_indices,
                                out_index, reserve_out(node.out))
        elif specialize and name in _UNARY_UFUNCS and len(in_indices) == 1:
            step = _EltwiseStep(node, _UNARY_UFUNCS[name], in_indices,
                                out_index, reserve_out(node.out))
        elif specialize and name == "relu":
            mask_ref = arena.reserve(node.inputs[0].shape, np.bool_)
            scratch.append(mask_ref)
            step = _ReluStep(node, in_indices[0], out_index, mask_ref,
                             reserve_out(node.out))
        elif specialize and name == "sigmoid":
            step = _SigmoidStep(node, in_indices[0], out_index,
                                reserve_out(node.out))
        elif specialize and name == "clip":
            step = _ClipStep(node, in_indices[0], out_index,
                             reserve_out(node.out))
        elif specialize and name == "max":
            step = _ReduceStep(node, in_indices[0], out_index,
                               reserve_out(node.out))

        if step is None:
            step = _GenericStep(node, in_indices, out_index)
        steps.append(step)

        for ref in scratch:
            arena.release(ref)
        # Deduplicate in input order, not via a set: set iteration follows
        # object ids, which would make the free-list order — and therefore
        # tie-breaks between equal-capacity buffers — nondeterministic
        # across processes.  Serialized plans rely on the lowering being a
        # pure function of the graph.
        bases: List[_Value] = []
        for value in node.inputs:
            base = base_of(value)
            if base not in bases:
                bases.append(base)
        for value in bases:
            if value is out_base or value not in live:
                continue
            if last_use.get(value, -1) == i:
                arena.release(live.pop(value))

    arena.finalize()
    registers: List[Optional[np.ndarray]] = [None] * len(values)
    for value in values:
        if value.is_const and value.array is not None:
            registers[value.index] = value.array
    for step in steps:
        step.bind(arena, registers)

    stats.steps = len(steps)
    for step in steps:
        stats.step_counts[step.kind] = stats.step_counts.get(step.kind, 0) + 1
        if step.kind == "view":
            stats.views += 1
        elif step.kind == "generic":
            stats.generic += 1
        else:
            stats.specialized += 1
        if step.activation is not None:
            stats.fused_activations += 1
    stats.arena = arena.stats
    stats.batch_peaks[int(batch)] = arena.stats.peak_bytes

    return InferencePlan(steps, registers, arena, backend,
                         graph.input.index, graph.output.index,
                         input_shape=input_shape, batch=batch,
                         input_dtype=graph.input.dtype,
                         memory_budget=memory_budget, stats=stats)


# --------------------------------------------------------------------------- #
# The plan object
# --------------------------------------------------------------------------- #
class InferencePlan:
    """A compiled forward pass: flat steps over preallocated buffers.

    Call it like the model it was compiled from — ``plan(x)`` returns a
    :class:`~repro.nn.tensor.Tensor` — but the input must match the
    compiled ``(batch, *input_shape)`` geometry and dtype exactly (a
    batch bound via :meth:`bind` is also accepted and dispatched to the
    bound plan).  The returned array is a copy, so holding it across
    calls is safe; the plan itself is not thread-safe (it owns one
    buffer arena).

    Plans compiled by :func:`compile` also carry a symbolic-batch
    program: :meth:`to_dict`/:meth:`save` emit the versioned
    ``repro-plan/1`` wire payload (steps, arena layout, weights digest),
    :meth:`load`/:meth:`from_dict` rebuild a bit-identical plan from it,
    and :meth:`bind` re-derives the buffer layout for another batch size
    without re-tracing the model.
    """

    def __init__(self, steps, registers, arena, backend, input_index,
                 output_index, *, input_shape, batch, input_dtype,
                 memory_budget, stats):
        self._steps = steps
        self._registers = registers
        self._arena = arena
        self._backend = backend
        self._input_index = input_index
        self._output_index = output_index
        self.input_shape = tuple(input_shape)
        self.batch = int(batch)
        self.input_dtype = np.dtype(input_dtype)
        self.memory_budget = memory_budget
        self.stats = stats
        # Symbolic-batch program (serialize.PlanProgram) and the family of
        # batch-bound plans sharing it; both populated by compile()/bind().
        self._program = None
        self._bound: Dict[int, "InferencePlan"] = {}

    @property
    def steps(self) -> List[_Step]:
        """The executable steps, in order (read-only by convention)."""
        return list(self._steps)

    @property
    def peak_buffer_bytes(self) -> int:
        """Total bytes of preallocated intermediate memory."""
        return self._arena.stats.peak_bytes

    def _check_input(self, x) -> np.ndarray:
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        expected = (self.batch,) + self.input_shape
        if tuple(data.shape) != expected:
            raise ValueError(
                f"plan compiled for input shape {expected}, got {tuple(data.shape)}; "
                f"recompile with the matching batch/input_shape")
        if data.dtype != self.input_dtype:
            raise ValueError(
                f"plan compiled for dtype {self.input_dtype}, got {data.dtype}")
        return data

    def __call__(self, x) -> Tensor:
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        if (data.ndim == len(self.input_shape) + 1
                and data.shape[0] != self.batch
                and tuple(data.shape[1:]) == self.input_shape):
            bound = self._bound.get(int(data.shape[0]))
            if bound is not None and bound is not self:
                return bound(data)
        data = self._check_input(data)
        registers = self._registers
        registers[self._input_index] = data
        try:
            with use_backend(self._backend):
                for step in self._steps:
                    step.run(registers)
            return Tensor(registers[self._output_index].copy())
        finally:
            registers[self._input_index] = None

    def profile_steps(self, x) -> Tuple[Tensor, List[Tuple[str, float, str]]]:
        """Run once, timing each step.

        Returns ``(output, [(op_name, seconds, layer), ...])`` where
        ``layer`` is the dot path of the module that produced the step's
        op in the traced forward — the same paths the eager profiler
        reports, so per-layer attributions line up.
        """
        data = self._check_input(x)
        registers = self._registers
        registers[self._input_index] = data
        timings: List[Tuple[str, float, str]] = []
        try:
            with use_backend(self._backend):
                for step in self._steps:
                    start = time.perf_counter()
                    step.run(registers)
                    elapsed = time.perf_counter() - start
                    name = step.op_name
                    if step.activation is not None:
                        name = f"{name}+{step.activation}"
                    timings.append((name, elapsed, step.layer))
            return Tensor(registers[self._output_index].copy()), timings
        finally:
            registers[self._input_index] = None

    # ------------------------------------------------------------------ #
    # Batch re-binding
    # ------------------------------------------------------------------ #
    def bind(self, batch: int) -> "InferencePlan":
        """A plan serving ``batch``, derived from this plan's program.

        Re-derives every buffer shape from the symbolic-batch layout and
        re-runs only the lowering — the model is **not** re-traced.  The
        bound plan shares this plan's weights, program and
        ``stats.batch_peaks`` (which gains the new batch's arena peak),
        and calling any plan in the family with an input whose leading
        dimension matches a bound batch dispatches to the right one.
        Results are cached: ``plan.bind(k)`` is the same object on every
        call.
        """
        batch = int(batch)
        if batch == self.batch:
            self._bound.setdefault(batch, self)
            return self
        bound = self._bound.get(batch)
        if bound is not None:
            return bound
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if self._program is None:
            raise ValueError(
                "plan has no symbolic-batch program (the traced graph could "
                f"not be serialized); only batch={self.batch} is servable")
        from . import serialize as _serialize
        plan = _serialize.bind_program(self._program, batch,
                                       backend=self._backend)
        plan._program = self._program
        self._bound.setdefault(self.batch, self)
        plan._bound = self._bound
        self._bound[batch] = plan
        plan.stats.batch_peaks = self.stats.batch_peaks
        self.stats.batch_peaks[batch] = plan.peak_buffer_bytes
        return plan

    # ------------------------------------------------------------------ #
    # Serialization (repro-plan/1)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The versioned ``repro-plan/1`` wire payload of this plan."""
        if self._program is None:
            raise ValueError(
                "plan is not serializable: the traced graph contains values "
                "the repro-plan/1 codec cannot represent")
        from . import serialize as _serialize
        return _serialize.plan_payload(self)

    def save(self, path) -> str:
        """Write the canonical-JSON ``repro-plan/1`` payload to ``path``."""
        from . import serialize as _serialize
        return _serialize.save_plan(self, path)

    @classmethod
    def from_dict(cls, payload) -> "InferencePlan":
        """Rebuild a plan from a ``repro-plan/1`` payload.

        Rejects unknown schema versions, tampered payloads (whole-payload
        digest), weight mutations (weights digest) and payloads whose
        stored step/arena layout disagrees with the re-lowered plan.  The
        rebuilt plan's forwards are bit-identical to the plan that was
        serialized.
        """
        from . import serialize as _serialize
        return _serialize.plan_from_payload(payload)

    @classmethod
    def load(cls, path) -> "InferencePlan":
        """Read a plan saved by :meth:`save` (same checks as from_dict)."""
        from . import serialize as _serialize
        return _serialize.load_plan(path)

    def __repr__(self) -> str:
        return (f"InferencePlan(steps={len(self._steps)}, "
                f"batch={self.batch}, input_shape={self.input_shape}, "
                f"dtype={self.input_dtype}, "
                f"peak_buffer_bytes={self.peak_buffer_bytes})")


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def _trace_graph(model: Module, backend: Backend, batch: int,
                 input_shape) -> _Graph:
    """Trace one eval-mode forward at ``batch`` into a dataflow graph."""
    dummy = Tensor(backend.zeros((batch,) + input_shape))
    tracer = _Tracer()
    hook = add_op_hook(_noop_hook)
    try:
        with no_grad(), trace_ops(tracer):
            out = model(dummy)
    finally:
        remove_op_hook(hook)
    if not tracer.records:
        raise ValueError("model executed no traceable ops")
    return _build_graph(tracer.records, dummy.data, out.data)


def _optimize_graph(graph: _Graph, backend: Backend, *, fold_bn: bool,
                    elide_dead: bool,
                    stats: Optional[PlanStats] = None) -> _Graph:
    """Run the standard pass pipeline in place (deterministic per graph)."""
    frozen = _freeze_consts(graph)
    folded = _fold_affine_chains(graph) if fold_bn else 0
    elided = _elide_dead_filters(graph) if elide_dead else 0
    if backend.supports_inplace:
        _fuse_activations(graph)
    removed = _eliminate_dead_code(graph)
    if stats is not None:
        stats.frozen_consts = frozen
        stats.folded_ops = folded
        stats.elided_filters = elided
        stats.dce_removed = removed
    return graph


def compile(model: Module, input_shape, *, batch: int = 1,
            memory_budget: Optional[int] = None, fold_bn: bool = False,
            elide_dead: bool = True,
            backend: Optional[Backend] = None) -> InferencePlan:
    """Compile ``model`` into a static :class:`InferencePlan`.

    Traces one inference-mode forward over a ``(batch, *input_shape)``
    zero input, optimizes the recorded graph and lowers it onto a
    preallocated buffer arena.

    Parameters
    ----------
    model:
        The module to compile.  It is switched to ``eval()`` for the
        trace and restored afterwards.
    input_shape:
        Per-sample input shape, e.g. ``(3, 32, 32)``.
    batch:
        Batch size the plan is specialized for (buffer shapes are static).
    memory_budget:
        Optional byte budget for any single im2col column block; larger
        convolutions are streamed in row bands (floating-point-tolerance
        equal, not bit-identical — see :mod:`repro.deploy.tiling`).
    fold_bn:
        Fold inference-mode BatchNorm affine chains into the preceding
        convolution weights.  Faster, but equal only to floating-point
        tolerance; off by default to preserve bit-identity.
    elide_dead:
        Physically drop all-zero conv filters (fully-masked code filters)
        together with the matching input channels of the consuming conv.
    backend:
        Backend (or registered backend name) to compile against; defaults
        to the active backend.  Backends without verified in-place kernels
        (``supports_inplace`` false) lower every op to its generic
        forward, trading the arena wins for portability.
    """
    if isinstance(backend, str):
        backend = get_backend(backend)
    if backend is None:
        backend = current_backend()
    input_shape = tuple(int(s) for s in input_shape)
    batch = int(batch)
    stats = PlanStats()
    with use_backend(backend):
        was_training = bool(getattr(model, "training", False))
        model.eval()
        try:
            graph = _trace_graph(model, backend, batch, input_shape)
            # Second trace one batch up: together the pair gives every
            # shape dimension an affine form in the batch size, which is
            # what makes the plan batch-polymorphic and serializable
            # (repro-plan/1).  Any failure just loses those features.
            try:
                graph_next = _trace_graph(model, backend, batch + 1,
                                          input_shape)
            except Exception:
                graph_next = None
        finally:
            if was_training:
                model.train()
        _optimize_graph(graph, backend, fold_bn=fold_bn,
                        elide_dead=elide_dead, stats=stats)
        if graph_next is not None:
            try:
                _optimize_graph(graph_next, backend, fold_bn=fold_bn,
                                elide_dead=elide_dead)
            except Exception:
                graph_next = None
        from . import serialize as _serialize
        try:
            program = _serialize.program_from_graphs(
                graph, graph_next, batch=batch, batch_next=batch + 1,
                backend=backend, input_shape=input_shape,
                memory_budget=memory_budget)
        except Exception:
            program = None
        plan = _lower(graph, backend, input_shape=input_shape,
                      batch=batch, memory_budget=memory_budget,
                      stats=stats)
        plan._program = program
        return plan
