"""``repro.deploy`` — compiled inference plans.

:func:`compile` turns a trained model into a static
:class:`InferencePlan`: one traced forward pass lowered onto a
:class:`~repro.deploy.arena.BufferArena` of preallocated, liveness-reused
buffers, with constant freezing, optional BatchNorm folding, dead-filter
elision, activation fusion and (under ``memory_budget=``) row-band
streaming of oversized im2col convolutions.  Default-option plans are
bit-identical to the eager ``model(x)`` under ``no_grad()``.

Plans also have a wire form: ``plan.save()``/``InferencePlan.load()``
round-trip the versioned ``repro-plan/1`` payload (steps, arena layout,
weights digest) bit-identically, and ``plan.bind(batch=...)`` re-derives
the buffer layout for another batch size from the same symbolic-batch
program without re-tracing the model.
"""

from .arena import ArenaStats, BufferArena, BufferRef
from .plan import InferencePlan, PlanStats, compile
from .serialize import PLAN_SCHEMA, load_plan, save_plan
from .tiling import MIN_BAND_ROWS, StreamedConv, band_overrun, band_plan, \
    iter_bands

__all__ = [
    "compile", "InferencePlan", "PlanStats",
    "PLAN_SCHEMA", "save_plan", "load_plan",
    "BufferArena", "BufferRef", "ArenaStats",
    "StreamedConv", "band_plan", "band_overrun", "iter_bands",
    "MIN_BAND_ROWS",
]
