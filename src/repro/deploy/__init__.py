"""``repro.deploy`` — compiled inference plans.

:func:`compile` turns a trained model into a static
:class:`InferencePlan`: one traced forward pass lowered onto a
:class:`~repro.deploy.arena.BufferArena` of preallocated, liveness-reused
buffers, with constant freezing, optional BatchNorm folding, dead-filter
elision, activation fusion and (under ``memory_budget=``) row-band
streaming of oversized im2col convolutions.  Default-option plans are
bit-identical to the eager ``model(x)`` under ``no_grad()``.
"""

from .arena import ArenaStats, BufferArena, BufferRef
from .plan import InferencePlan, PlanStats, compile
from .tiling import MIN_BAND_ROWS, StreamedConv, band_plan, iter_bands

__all__ = [
    "compile", "InferencePlan", "PlanStats",
    "BufferArena", "BufferRef", "ArenaStats",
    "StreamedConv", "band_plan", "iter_bands", "MIN_BAND_ROWS",
]
