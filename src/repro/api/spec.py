"""Per-method configuration dataclasses and the common :class:`CompressionSpec`.

Every registered compression method has one small config dataclass holding
its *method-specific* knobs (pruning ratio, dictionary size, rank fraction,
agent schedule, ...).  The :class:`CompressionSpec` unifies them: it names
the method, optionally carries its config, and adds the knobs shared by all
methods — the model, input geometry, training budget and the accounting
conventions (``conv_only``, hardware batch) used throughout the paper.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..core.config import ALFConfig
from ..nn.module import Module

#: Wire-format identifier of :meth:`CompressionSpec.to_dict` payloads.
SPEC_SCHEMA = "repro-spec/1"


# --------------------------------------------------------------------------- #
# Per-method configs
# --------------------------------------------------------------------------- #
@dataclass
class ALFSpec:
    """Configuration of the ALF method (the paper's contribution).

    ``alf`` carries the block / two-player-trainer hyper-parameters.  The
    three ``*_fraction(s)`` fields configure the *cost-only* mode used by the
    table/figure experiments: when no training is run, the pruning masks are
    forced to a target compression profile instead (uniform fraction,
    per-stage fractions keyed by filter count, or per-layer fractions keyed
    by the labels in ``layer_labels``).
    """

    alf: ALFConfig = field(default_factory=ALFConfig)
    remaining_fraction: Optional[float] = None
    stage_remaining: Optional[Mapping[int, float]] = None
    layer_fractions: Optional[Mapping[str, float]] = None
    layer_labels: Optional[Sequence[str]] = None
    deploy: bool = True

    def validate(self) -> "ALFSpec":
        self.alf.validate()
        if self.remaining_fraction is not None and not 0.0 < self.remaining_fraction <= 1.0:
            raise ValueError("remaining_fraction must lie in (0, 1]")
        for source, fractions in (("stage_remaining", self.stage_remaining),
                                  ("layer_fractions", self.layer_fractions)):
            for key, fraction in (fractions or {}).items():
                if not 0.0 < fraction <= 1.0:
                    raise ValueError(
                        f"{source}[{key!r}] must lie in (0, 1], got {fraction}")
        return self

    def forced_fractions(self) -> bool:
        """Whether a compression profile should be forced onto untrained masks."""
        return (self.remaining_fraction is not None
                or self.stage_remaining is not None
                or self.layer_fractions is not None)


@dataclass
class MagnitudeSpec:
    """Magnitude filter pruning (Han et al. style, handcrafted policy)."""

    prune_ratio: float = 0.5
    norm: str = "l1"
    min_kernel: int = 2

    def validate(self) -> "MagnitudeSpec":
        if not 0.0 <= self.prune_ratio < 1.0:
            raise ValueError("prune_ratio must lie in [0, 1)")
        if self.norm not in ("l1", "l2"):
            raise ValueError("norm must be 'l1' or 'l2'")
        return self


@dataclass
class FPGMSpec:
    """Filter pruning via geometric median (He et al., CVPR'19)."""

    prune_ratio: float = 0.3
    iterations: int = 50
    min_kernel: int = 2

    def validate(self) -> "FPGMSpec":
        if not 0.0 <= self.prune_ratio < 1.0:
            raise ValueError("prune_ratio must lie in [0, 1)")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        return self


@dataclass
class AMCSpec:
    """AMC-style agent search over per-layer pruning ratios (He et al., ECCV'18)."""

    target_ops_fraction: float = 0.5
    iterations: int = 4
    population: int = 8
    elite_fraction: float = 0.25
    max_ratio: float = 0.8
    min_kernel: int = 2
    #: When true and validation data is available, the agent's reward uses the
    #: measured validation accuracy of each candidate plan instead of the
    #: magnitude-preservation proxy.
    accuracy_eval: bool = False

    def validate(self) -> "AMCSpec":
        if not 0.0 < self.target_ops_fraction <= 1.0:
            raise ValueError("target_ops_fraction must lie in (0, 1]")
        if self.iterations <= 0 or self.population <= 0:
            raise ValueError("iterations and population must be positive")
        return self


@dataclass
class LCNNSpec:
    """Lookup/dictionary filter sharing (Bagherinezhad et al.)."""

    dictionary_fraction: float = 0.25
    sparsity: int = 3
    kmeans_iterations: int = 10
    min_kernel: int = 2
    #: Replace the convolution weights by their dictionary reconstruction so
    #: the accuracy impact of the sharing is measurable.
    apply: bool = True

    def validate(self) -> "LCNNSpec":
        if not 0.0 < self.dictionary_fraction <= 1.0:
            raise ValueError("dictionary_fraction must lie in (0, 1]")
        if self.sparsity < 1:
            raise ValueError("sparsity must be at least 1")
        return self


@dataclass
class LowRankSpec:
    """Truncated-SVD low-rank factorization (rule-based)."""

    rank_fraction: Optional[float] = 0.5
    energy_threshold: Optional[float] = None
    min_kernel: int = 2
    apply: bool = True

    def validate(self) -> "LowRankSpec":
        if (self.rank_fraction is None) == (self.energy_threshold is None):
            raise ValueError("provide exactly one of rank_fraction / energy_threshold")
        return self


# --------------------------------------------------------------------------- #
# Wire format for configs
# --------------------------------------------------------------------------- #
#: Config classes reconstructible from the wire format, by type name.
_CONFIG_TYPES: Dict[str, type] = {}


def _register_config_types() -> None:
    for cls in (ALFSpec, MagnitudeSpec, FPGMSpec, AMCSpec, LCNNSpec,
                LowRankSpec, ALFConfig):
        _CONFIG_TYPES[cls.__name__] = cls


def _jsonify(value: Any) -> Any:
    """Recursively coerce a value into JSON-representable python types."""
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        # numpy scalars
        return value.item()
    return value


def config_to_dict(config: Any) -> Optional[Dict[str, Any]]:
    """Serialize a per-method config dataclass into the wire format."""
    if config is None:
        return None
    name = type(config).__name__
    if name not in _CONFIG_TYPES:
        raise TypeError(
            f"config type '{name}' has no wire format; known types: "
            f"{sorted(_CONFIG_TYPES)}")
    return {"type": name, "fields": _jsonify(dataclasses.asdict(config))}


def config_from_dict(payload: Optional[Mapping[str, Any]]) -> Any:
    """Rebuild a per-method config from :func:`config_to_dict` output."""
    if payload is None:
        return None
    name = payload["type"]
    if name not in _CONFIG_TYPES:
        raise TypeError(f"unknown config type '{name}' in wire payload")
    cls = _CONFIG_TYPES[name]
    fields = dict(payload.get("fields") or {})
    if cls is ALFSpec:
        if fields.get("alf") is not None:
            fields["alf"] = ALFConfig(**fields["alf"])
        # JSON stringifies integer mapping keys; undo that on the way in.
        if fields.get("stage_remaining") is not None:
            fields["stage_remaining"] = {int(k): float(v)
                                         for k, v in fields["stage_remaining"].items()}
    return cls(**fields)


# --------------------------------------------------------------------------- #
# The unified spec
# --------------------------------------------------------------------------- #
@dataclass
class CompressionSpec:
    """One fully-described compression run: method + config + shared knobs.

    Attributes
    ----------
    method:
        Registry key (``"alf"``, ``"magnitude"``, ``"fpgm"``, ``"amc"``,
        ``"lcnn"``, ``"lowrank"``).
    config:
        The method's config dataclass; ``None`` selects the registered
        defaults.
    model:
        Optional model to compress — a registry name (``"resnet20"``) or a
        built :class:`repro.nn.Module`.  ``compress()`` / ``run_sweep()``
        arguments take precedence over this field.
    input_shape:
        ``(C, H, W)`` geometry used for profiling and the hardware model;
        inferred from the model registry or the dataset when omitted.
    epochs / finetune_epochs:
        Training budget.  For ALF this is the two-player training; for the
        pruning baselines it is pre-train epochs followed by fine-tuning
        after the masks are applied (``finetune_epochs`` defaults to
        ``max(1, epochs // 2)``).  ``epochs=0`` skips training entirely
        (cost-only evaluation).
    lr:
        Task learning rate for the baseline trainers (ALF uses
        ``ALFConfig.lr_task``).
    conv_only:
        Restrict Params / OPs accounting to convolutional layers, the
        paper's Table II convention.
    hardware_batch:
        Batch size for the Eyeriss evaluation (16 in the paper's Fig. 3).
    layer_names:
        Optional layer labels for the hardware report (e.g. CONV1..CONV432).
    dtype:
        Compute dtype for the whole run (``"float32"`` / ``"float64"``).
        ``None`` keeps the active backend's default.  The model, the data
        batches and all training/evaluation run in this dtype.
    backend:
        Execution backend name from :func:`repro.nn.available_backends`
        (e.g. ``"numpy"``, ``"numpy32"``); ``None`` keeps the active one.
    profile:
        Collect a layer-scoped op profile of the run
        (:class:`repro.nn.RunProfile` on
        :attr:`CompressionReport.profile <repro.api.CompressionReport>`):
        per-op / per-layer call counts and wall-clock, split into dense /
        train / eval phases.  ``False`` (the default) keeps the zero-cost
        no-hook fast path.
    """

    method: str
    config: Optional[Any] = None
    model: Optional[Union[str, Module]] = None
    input_shape: Optional[Tuple[int, int, int]] = None
    epochs: int = 0
    finetune_epochs: Optional[int] = None
    lr: float = 0.05
    conv_only: bool = True
    hardware_batch: int = 16
    layer_names: Optional[Sequence[str]] = None
    dtype: Optional[str] = None
    backend: Optional[str] = None
    profile: bool = False
    seed: int = 0
    label: Optional[str] = None

    def validate(self) -> "CompressionSpec":
        import numpy as np

        from ..nn.backend import get_backend
        from .registry import get_method  # local import: registry imports this module
        entry = get_method(self.method)
        if self.config is not None and not isinstance(self.config, entry.config_type):
            raise TypeError(
                f"method '{self.method}' expects a {entry.config_type.__name__} config, "
                f"got {type(self.config).__name__}")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.finetune_epochs is not None and self.finetune_epochs < 0:
            raise ValueError("finetune_epochs must be non-negative")
        if self.dtype is not None and np.dtype(self.dtype).kind != "f":
            raise ValueError("dtype must be a floating dtype (e.g. 'float32')")
        if self.backend is not None:
            get_backend(self.backend)  # raises KeyError for unknown names
        if self.config is not None and hasattr(self.config, "validate"):
            self.config.validate()
        return self

    def resolved_config(self) -> Any:
        """The per-method config, defaulting to the registered config type."""
        if self.config is not None:
            return self.config
        from .registry import get_method
        return get_method(self.method).config_type()

    def resolved_finetune_epochs(self) -> int:
        if self.finetune_epochs is not None:
            return self.finetune_epochs
        return max(1, self.epochs // 2) if self.epochs else 0

    def with_overrides(self, **kwargs) -> "CompressionSpec":
        return replace(self, **kwargs)

    def digest(self) -> str:
        """SHA-256 content address of this spec's canonical wire payload.

        Hashes :meth:`to_dict` through the canonical JSON encoding
        (:func:`repro.api.digests.payload_digest`), so the digest is
        invariant to dict key order and config-field insertion order and
        stable across processes — the spec third of a report-cache key.
        Specs carrying a built ``Module`` have no wire payload and no
        digest (``to_dict`` raises ``TypeError``).
        """
        from .digests import payload_digest
        return payload_digest(self.to_dict())

    @property
    def display_label(self) -> str:
        return self.label or self.method

    # -- wire format ---------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict describing this spec completely.

        This is the guaranteed wire format process-based sweep shards and
        distributed runners exchange (pickle also works, but the dict form
        is stable across interpreter versions).  A built ``Module`` in the
        ``model`` field has no wire representation — pass registry names
        when a spec needs to travel.
        """
        if isinstance(self.model, Module):
            raise TypeError(
                "CompressionSpec.to_dict() cannot serialize a built Module; "
                "use a model registry name (e.g. 'resnet20') for specs that "
                "travel between processes")
        return {
            "schema": SPEC_SCHEMA,
            "method": self.method,
            "config": config_to_dict(self.config),
            "model": self.model,
            "input_shape": list(self.input_shape) if self.input_shape else None,
            "epochs": self.epochs,
            "finetune_epochs": self.finetune_epochs,
            "lr": float(self.lr),
            "conv_only": self.conv_only,
            "hardware_batch": self.hardware_batch,
            "layer_names": list(self.layer_names) if self.layer_names else None,
            "dtype": self.dtype,
            "backend": self.backend,
            "profile": self.profile,
            "seed": self.seed,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CompressionSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected).

        Payloads tagged with a different wire-format version are rejected
        outright — a future ``repro-spec/2`` must not be silently misparsed
        as today's fields.  Untagged payloads are accepted for backward
        compatibility with pre-tag dicts.
        """
        data = dict(payload)
        schema = data.pop("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(
                f"unsupported spec schema {schema!r}: expected '{SPEC_SCHEMA}'")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CompressionSpec fields: {sorted(unknown)}")
        data["config"] = config_from_dict(data.get("config"))
        if data.get("input_shape") is not None:
            data["input_shape"] = tuple(data["input_shape"])
        if data.get("layer_names") is not None:
            data["layer_names"] = tuple(data["layer_names"])
        return cls(**data)


_register_config_types()
