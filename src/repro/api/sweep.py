"""Batch runner: a list of :class:`CompressionSpec` → a list of reports.

``run_sweep()`` with no arguments reproduces the paper's Table II method
set (magnitude, FPGM, AMC, LCNN, low-rank, ALF) on a ResNet-20 at CIFAR-10
geometry in one call.  The dense model is built once, the dataset loaders
are built once, and the dense profile + Eyeriss evaluation are computed
once and shared across every method — sweeps do not rebuild anything per
method.

Since PR 5 the batch call is a thin façade over
:class:`repro.api.session.SweepSession`: every spec becomes a submitted
future, shard results stream back as they finish, and the session merges
them **in spec order** under the shared dense baseline — so the returned
:class:`SweepResult` is bit-identical to the historical serial loop
whatever executor ran the shards (``"serial"`` / ``"thread"`` /
``"process"`` / ``"remote"``, or the ``REPRO_SWEEP_EXECUTOR`` environment
variable).  Callers that need incremental submission, progress callbacks,
retries, timeouts or cancellation use the session directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..hardware import EYERISS_PAPER, EyerissSpec
from ..metrics.compression import ComparisonTable, MethodResult, pareto_front
from ..metrics.tables import format_count, format_reduction, render_table
from ..nn.module import Module
from ..nn.profiler import OpProfile
from .cache import CacheArg
from .executor import ExecutorLike
from .pipeline import CompressionReport, DataArg, DenseBaseline
from .registry import get_method
from .session import SweepSession
from .spec import ALFSpec, AMCSpec, CompressionSpec, LCNNSpec, LowRankSpec

#: Wire-format identifier of :meth:`SweepFailure.to_dict` payloads.
FAILURE_SCHEMA = "repro-failure/1"

#: Per-stage remaining-filter fractions reproducing Table II's ALF row
#: (-70% Params / -61% OPs on ResNet-20); see Fig. 2c / Fig. 3 of the paper.
ALF_TABLE2_STAGE_REMAINING: Dict[int, float] = {16: 0.45, 32: 0.40, 64: 0.28}


def table2_specs(seed: int = 0) -> List[CompressionSpec]:
    """The Table II method set with the paper-matched operating points."""
    return [
        CompressionSpec(method="magnitude", seed=seed),
        CompressionSpec(method="fpgm", seed=seed),
        CompressionSpec(method="amc",
                        config=AMCSpec(target_ops_fraction=0.49), seed=seed),
        CompressionSpec(method="lcnn",
                        config=LCNNSpec(dictionary_fraction=0.25, sparsity=3),
                        seed=seed),
        CompressionSpec(method="lowrank",
                        config=LowRankSpec(rank_fraction=0.4), seed=seed),
        CompressionSpec(method="alf",
                        config=ALFSpec(stage_remaining=ALF_TABLE2_STAGE_REMAINING),
                        seed=seed),
    ]


@dataclass
class SweepFailure:
    """One spec that died mid-sweep (recorded under ``on_error="skip"``).

    ``attempts`` counts every run the session scheduler gave the spec
    (1 without a :class:`~repro.api.session.RetryPolicy`); ``category``
    states *how* it died — ``"error"`` (the shard raised), ``"timeout"``
    (the per-attempt deadline passed) or ``"cancelled"`` (the future was
    cancelled before a report existed).
    """

    index: int
    spec: CompressionSpec
    error_type: str
    message: str
    #: The original exception when it survived transport from the worker.
    exception: Optional[BaseException] = None
    attempts: int = 1
    category: str = "error"

    def __str__(self) -> str:
        base = (f"spec[{self.index}] ({self.spec.display_label}): "
                f"{self.error_type}: {self.message}")
        if self.category != "error" or self.attempts > 1:
            base += f" [{self.category} after {self.attempts} attempt(s)]"
        return base

    # -- wire format ---------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the live exception object does not travel)."""
        return {
            "schema": FAILURE_SCHEMA,
            "index": int(self.index),
            "spec": self.spec.to_dict(),
            "error_type": self.error_type,
            "message": self.message,
            "attempts": int(self.attempts),
            "category": self.category,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepFailure":
        schema = payload.get("schema")
        if schema != FAILURE_SCHEMA:
            raise ValueError(
                f"unsupported sweep-failure schema {schema!r}: expected "
                f"'{FAILURE_SCHEMA}'")
        category = payload.get("category", "error")
        if category not in ("error", "timeout", "cancelled"):
            raise ValueError(
                f"unknown failure category {category!r}: expected 'error', "
                "'timeout' or 'cancelled'")
        return cls(
            index=int(payload["index"]),
            spec=CompressionSpec.from_dict(payload["spec"]),
            error_type=payload["error_type"],
            message=payload["message"],
            exception=None,
            attempts=int(payload.get("attempts", 1)),
            category=category,
        )


@dataclass
class SweepResult:
    """Reports of a sweep plus the shared dense baseline.

    ``failures`` is non-empty only for ``run_sweep(..., on_error="skip")``
    runs in which one or more specs raised: the poisoned specs are recorded
    here while every healthy shard's report is kept in ``reports``.
    """

    dense: DenseBaseline
    reports: List[CompressionReport] = field(default_factory=list)
    failures: List[SweepFailure] = field(default_factory=list)

    def by_method(self, method: str) -> CompressionReport:
        key = get_method(method).name
        for report in self.reports:
            if report.method == key:
                return report
        raise KeyError(f"no report for method '{method}'")

    def methods(self) -> List[str]:
        return [report.method for report in self.reports]

    def comparison_table(self, baseline_label: str = "dense") -> ComparisonTable:
        baseline = MethodResult(
            method=baseline_label, policy="—",
            params=self.dense.cost["params"], ops=self.dense.cost["ops"],
            accuracy=(self.dense.accuracy or 0.0) * 100,
        )
        table = ComparisonTable(baseline=baseline)
        for report in self.reports:
            table.add(report.as_method_result())
        return table

    def pareto(self) -> List[MethodResult]:
        return pareto_front([r.as_method_result() for r in self.reports])

    def combined_profile(self) -> Optional[OpProfile]:
        """Every profiled report's phases folded into one :class:`OpProfile`.

        Profiles are collected *inside* each shard (op hooks are
        thread-local) and merged here in spec order, so call counts are
        identical whatever executor ran the sweep.  ``None`` when no spec
        asked for profiling.
        """
        merged = OpProfile()
        found = False
        for report in self.reports:
            if report.profile is not None:
                merged.merge(report.profile.combined())
                found = True
        return merged if found else None

    def render(self, title: str = "Compression sweep") -> str:
        headers = ["Method", "Policy", "Params", "OPs", "ΔParams", "ΔOPs",
                   "ΔEnergy", "ΔLatency", "Acc[%]"]
        # The dense row's non-applicable reduction cells and every missing
        # accuracy share the formatters' one fallback string, so all
        # columns type-check the same way against the header.
        rows = [["dense", "—", format_count(self.dense.cost["params"]),
                 format_count(self.dense.cost["ops"]),
                 format_reduction(None), format_reduction(None),
                 format_reduction(None), format_reduction(None),
                 _accuracy_cell(self.dense.accuracy)]]
        for report in self.reports:
            rows.append([
                report.spec.display_label, report.policy,
                format_count(report.cost["params"]), format_count(report.cost["ops"]),
                format_reduction(report.params_reduction),
                format_reduction(report.ops_reduction),
                format_reduction(report.energy_reduction),
                format_reduction(report.latency_reduction),
                _accuracy_cell(report.accuracy),
            ])
        return render_table(headers, rows, title=title)


def _accuracy_cell(accuracy: Optional[float]) -> str:
    """The Acc[%] cell: percentage, or the formatters' missing-value fallback."""
    return f"{accuracy * 100:.1f}" if accuracy is not None else "-"


def run_sweep(specs: Optional[Sequence[CompressionSpec]] = None,
              model: Union[str, Module] = "resnet20",
              data: DataArg = None,
              hardware: Optional[EyerissSpec] = EYERISS_PAPER,
              input_shape: Optional[Tuple[int, int, int]] = None,
              dtype: Optional[str] = None, backend: Optional[str] = None,
              seed: int = 0,
              executor: Optional[ExecutorLike] = None,
              max_workers: Optional[int] = None,
              on_error: str = "raise",
              cache: CacheArg = None,
              warm_start: bool = True) -> SweepResult:
    """Run many compression specs against one shared model / dataset.

    With ``specs=None`` the Table II method set (all six registered
    methods) is evaluated at the paper's operating points.  The dense model
    and the data loaders are built once; each method then works on its own
    deep copy, and the dense profile + hardware evaluation are computed a
    single time and shared across every report.

    ``dtype`` / ``backend`` select the execution engine for the whole
    sweep (overriding every spec); because one dense baseline is shared,
    per-spec dtype/backend values must otherwise agree.

    ``executor`` shards the specs: ``"serial"`` (default), ``"thread"``,
    ``"process"`` or ``"remote"`` (or any name from
    :func:`repro.api.available_executors`), with ``max_workers`` capping
    the pool size.  When no executor is passed the ``REPRO_SWEEP_EXECUTOR``
    environment variable is honoured.  Reports are merged in spec order
    under the parent's dense baseline, so every strategy returns the same
    :class:`SweepResult` as a serial run (``"remote"`` reports are
    wire-reconstructed and therefore carry no live compressed model).

    ``on_error`` decides what a raising spec does: ``"raise"`` (default)
    re-raises the first failure in spec order; ``"skip"`` records it as a
    :class:`SweepFailure` on ``SweepResult.failures`` and keeps every other
    shard's report.

    ``cache`` enables the content-addressed result cache
    (:mod:`repro.api.cache`): pass a policy string (``"read"`` /
    ``"write"`` / ``"readwrite"``) to use the default store (honouring
    ``REPRO_CACHE_DIR``), or a :class:`~repro.api.cache.ReportCache`
    instance.  Cached specs replay their stored report bit-identically
    instead of re-running; ``warm_start`` (default ``True``) additionally
    seeds cache-miss fine-tuning from the nearest stored checkpoint.

    Specs with ``profile=True`` collect their layer-scoped op profile
    *inside* the shard that runs them (op hooks are thread-local) and ship
    it back with the report — through pickle for process shards and
    through the ``repro-report/1`` wire format for remote workers.  The
    spec-ordered merge makes per-layer call counts identical across
    executors; :meth:`SweepResult.combined_profile` folds them into one
    profile.

    This is a façade over :class:`repro.api.SweepSession` — submit the
    same specs there for streaming results, progress callbacks, per-spec
    retry/timeout policy and cancellation.
    """
    if specs is None:
        specs = table2_specs(seed=seed)
    specs = list(specs)
    if not specs:
        raise ValueError("specs must contain at least one CompressionSpec")
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    session = SweepSession(model=model, data=data, hardware=hardware,
                           input_shape=input_shape, dtype=dtype,
                           backend=backend, seed=seed, executor=executor,
                           max_workers=max_workers, cache=cache,
                           warm_start=warm_start)
    with session:
        session.submit_all(specs, fail_fast=(on_error == "raise"))
        return session.result(on_error=on_error)
