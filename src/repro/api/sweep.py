"""Batch runner: a list of :class:`CompressionSpec` → a list of reports.

``run_sweep()`` with no arguments reproduces the paper's Table II method
set (magnitude, FPGM, AMC, LCNN, low-rank, ALF) on a ResNet-20 at CIFAR-10
geometry in one call.  The dense model is built once, the dataset loaders
are built once, and the dense profile + Eyeriss evaluation are computed
once and shared across every method — sweeps do not rebuild anything per
method.

Because every spec runs on an isolated deep copy of the model under its
own execution context, specs are embarrassingly parallel: pass
``executor="thread"`` / ``"process"`` (or set ``REPRO_SWEEP_EXECUTOR``) to
shard them across workers.  The dense baseline is computed once in the
parent and broadcast to every shard; shard reports are merged back **in
spec order**, so the resulting :class:`SweepResult` is identical to a
serial run whatever the strategy.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data import DataLoader, SyntheticImageDataset
from ..hardware import EYERISS_PAPER, EyerissSpec
from ..metrics.compression import ComparisonTable, MethodResult, pareto_front
from ..metrics.tables import format_count, format_reduction, render_table
from ..models import build_model, default_input_shape
from ..nn.backend import get_default_dtype, use_backend
from ..nn.module import Module
from ..nn.profiler import OpProfile
from .executor import (
    EngineState,
    ExecutorLike,
    op_hook_isolation,
    resolve_executor,
)
from .pipeline import (
    CompressionPipeline,
    CompressionReport,
    DataArg,
    DenseBaseline,
    resolve_loaders,
)
from .registry import available_methods, get_method
from .spec import ALFSpec, AMCSpec, CompressionSpec, LCNNSpec, LowRankSpec

#: Per-stage remaining-filter fractions reproducing Table II's ALF row
#: (-70% Params / -61% OPs on ResNet-20); see Fig. 2c / Fig. 3 of the paper.
ALF_TABLE2_STAGE_REMAINING: Dict[int, float] = {16: 0.45, 32: 0.40, 64: 0.28}


def table2_specs(seed: int = 0) -> List[CompressionSpec]:
    """The Table II method set with the paper-matched operating points."""
    return [
        CompressionSpec(method="magnitude", seed=seed),
        CompressionSpec(method="fpgm", seed=seed),
        CompressionSpec(method="amc",
                        config=AMCSpec(target_ops_fraction=0.49), seed=seed),
        CompressionSpec(method="lcnn",
                        config=LCNNSpec(dictionary_fraction=0.25, sparsity=3),
                        seed=seed),
        CompressionSpec(method="lowrank",
                        config=LowRankSpec(rank_fraction=0.4), seed=seed),
        CompressionSpec(method="alf",
                        config=ALFSpec(stage_remaining=ALF_TABLE2_STAGE_REMAINING),
                        seed=seed),
    ]


@dataclass
class SweepFailure:
    """One spec that died mid-sweep (recorded under ``on_error="skip"``)."""

    index: int
    spec: CompressionSpec
    error_type: str
    message: str
    #: The original exception when it survived transport from the worker.
    exception: Optional[BaseException] = None

    def __str__(self) -> str:
        return (f"spec[{self.index}] ({self.spec.display_label}): "
                f"{self.error_type}: {self.message}")


@dataclass
class SweepResult:
    """Reports of a sweep plus the shared dense baseline.

    ``failures`` is non-empty only for ``run_sweep(..., on_error="skip")``
    runs in which one or more specs raised: the poisoned specs are recorded
    here while every healthy shard's report is kept in ``reports``.
    """

    dense: DenseBaseline
    reports: List[CompressionReport] = field(default_factory=list)
    failures: List[SweepFailure] = field(default_factory=list)

    def by_method(self, method: str) -> CompressionReport:
        key = get_method(method).name
        for report in self.reports:
            if report.method == key:
                return report
        raise KeyError(f"no report for method '{method}'")

    def methods(self) -> List[str]:
        return [report.method for report in self.reports]

    def comparison_table(self, baseline_label: str = "dense") -> ComparisonTable:
        baseline = MethodResult(
            method=baseline_label, policy="—",
            params=self.dense.cost["params"], ops=self.dense.cost["ops"],
            accuracy=(self.dense.accuracy or 0.0) * 100,
        )
        table = ComparisonTable(baseline=baseline)
        for report in self.reports:
            table.add(report.as_method_result())
        return table

    def pareto(self) -> List[MethodResult]:
        return pareto_front([r.as_method_result() for r in self.reports])

    def combined_profile(self) -> Optional[OpProfile]:
        """Every profiled report's phases folded into one :class:`OpProfile`.

        Profiles are collected *inside* each shard (op hooks are
        thread-local) and merged here in spec order, so call counts are
        identical whatever executor ran the sweep.  ``None`` when no spec
        asked for profiling.
        """
        merged = OpProfile()
        found = False
        for report in self.reports:
            if report.profile is not None:
                merged.merge(report.profile.combined())
                found = True
        return merged if found else None

    def render(self, title: str = "Compression sweep") -> str:
        headers = ["Method", "Policy", "Params", "OPs", "ΔParams", "ΔOPs",
                   "ΔEnergy", "ΔLatency", "Acc[%]"]
        # The dense row's non-applicable reduction cells and every missing
        # accuracy share the formatters' one fallback string, so all
        # columns type-check the same way against the header.
        rows = [["dense", "—", format_count(self.dense.cost["params"]),
                 format_count(self.dense.cost["ops"]),
                 format_reduction(None), format_reduction(None),
                 format_reduction(None), format_reduction(None),
                 _accuracy_cell(self.dense.accuracy)]]
        for report in self.reports:
            rows.append([
                report.spec.display_label, report.policy,
                format_count(report.cost["params"]), format_count(report.cost["ops"]),
                format_reduction(report.params_reduction),
                format_reduction(report.ops_reduction),
                format_reduction(report.energy_reduction),
                format_reduction(report.latency_reduction),
                _accuracy_cell(report.accuracy),
            ])
        return render_table(headers, rows, title=title)


def _accuracy_cell(accuracy: Optional[float]) -> str:
    """The Acc[%] cell: percentage, or the formatters' missing-value fallback."""
    return f"{accuracy * 100:.1f}" if accuracy is not None else "-"


@dataclass
class _LoaderPlan:
    """Deterministic, position-independent recipe for building shard loaders.

    ``DataLoader`` shuffling advances a persistent RNG, so handing the same
    loader object to several consumers would make each one's batch order —
    and thus its result — depend on its position in the spec list.  Every
    consumer (the dense probe and each shard, wherever it runs) therefore
    builds its loaders from this plan: freshly-seeded loaders over the
    one-time dataset split, or a deep copy of the pristine resolved pair.
    The plan is picklable, so process shards rebuild identical loaders.
    """

    kind: str  # "none" | "synthetic" | "template"
    train_split: Any = None
    val_split: Any = None
    seed: int = 0
    template: Any = None

    def make(self):
        if self.kind == "none":
            return None
        if self.kind == "synthetic":
            return (DataLoader(self.train_split, batch_size=32, shuffle=True,
                               seed=self.seed),
                    DataLoader(self.val_split, batch_size=64))
        return copy.deepcopy(self.template)


def _loader_plan(data: DataArg, seed: int) -> _LoaderPlan:
    if data is None:
        return _LoaderPlan(kind="none")
    if isinstance(data, SyntheticImageDataset):
        train_split, val_split = data.split(0.8)
        return _LoaderPlan(kind="synthetic", train_split=train_split,
                           val_split=val_split, seed=seed)
    return _LoaderPlan(kind="template",
                       template=resolve_loaders(data, seed=seed))


@dataclass
class _ShardTask:
    """Everything one shard needs, shipped to the worker in one pickle.

    The dense baseline is computed once in the sweep parent and broadcast
    here so no shard re-profiles (or re-maps on the accelerator) the dense
    network; ``state`` re-applies the parent's backend / dtype / grad mode
    inside the worker.
    """

    spec: CompressionSpec
    model: Module
    loaders: _LoaderPlan
    hardware: Optional[EyerissSpec]
    dense: DenseBaseline
    state: Optional[EngineState]


def _execute_shard(task: _ShardTask) -> CompressionReport:
    """Run one spec in an isolated execution context (any worker, any host)."""
    # state=None means the parent's backend had no registry name to travel
    # by; run under the ambient state (correct for the serial executor, the
    # only strategy that can reach such a backend) with hook isolation only.
    scope = task.state.scope() if task.state is not None else op_hook_isolation()
    with scope:
        pipeline = CompressionPipeline(task.spec, hardware=task.hardware)
        return pipeline.run(model=copy.deepcopy(task.model),
                            data=task.loaders.make(),
                            dense=task.dense, inplace=True)


def run_sweep(specs: Optional[Sequence[CompressionSpec]] = None,
              model: Union[str, Module] = "resnet20",
              data: DataArg = None,
              hardware: Optional[EyerissSpec] = EYERISS_PAPER,
              input_shape: Optional[Tuple[int, int, int]] = None,
              dtype: Optional[str] = None, backend: Optional[str] = None,
              seed: int = 0,
              executor: Optional[ExecutorLike] = None,
              max_workers: Optional[int] = None,
              on_error: str = "raise") -> SweepResult:
    """Run many compression specs against one shared model / dataset.

    With ``specs=None`` the Table II method set (all six registered
    methods) is evaluated at the paper's operating points.  The dense model
    and the data loaders are built once; each method then works on its own
    deep copy, and the dense profile + hardware evaluation are computed a
    single time and shared across every report.

    ``dtype`` / ``backend`` select the execution engine for the whole
    sweep (overriding every spec); because one dense baseline is shared,
    per-spec dtype/backend values must otherwise agree.

    ``executor`` shards the specs: ``"serial"`` (default), ``"thread"`` or
    ``"process"`` (or any name from
    :func:`repro.api.available_executors`), with ``max_workers`` capping
    the pool size.  When no executor is passed the ``REPRO_SWEEP_EXECUTOR``
    environment variable is honoured.  Reports are merged in spec order
    under the parent's dense baseline, so every strategy returns the same
    :class:`SweepResult` as a serial run.

    ``on_error`` decides what a raising spec does: ``"raise"`` (default)
    re-raises the first failure in spec order; ``"skip"`` records it as a
    :class:`SweepFailure` on ``SweepResult.failures`` and keeps every other
    shard's report.

    Specs with ``profile=True`` collect their layer-scoped op profile
    *inside* the shard that runs them (op hooks are thread-local) and ship
    it back with the report — through pickle for process shards and
    through the ``to_dict`` wire format for distributed runners.  The
    spec-ordered merge makes per-layer call counts identical across
    ``serial`` / ``thread`` / ``process``;
    :meth:`SweepResult.combined_profile` folds them into one profile.
    """
    if specs is None:
        specs = table2_specs(seed=seed)
    specs = list(specs)
    if not specs:
        raise ValueError("specs must contain at least one CompressionSpec")
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    if dtype is not None or backend is not None:
        specs = [s.with_overrides(dtype=dtype or s.dtype,
                                  backend=backend or s.backend) for s in specs]
    # The dense baseline is computed once and shared, so every spec must use
    # the same accounting conventions (and execution engine) for the
    # reductions to be comparable.
    conventions = {(s.conv_only, s.hardware_batch, tuple(s.layer_names or ()),
                    s.dtype, s.backend)
                   for s in specs}
    if len(conventions) > 1:
        raise ValueError(
            "run_sweep shares one dense baseline across all specs; "
            "conv_only / hardware_batch / layer_names / dtype / backend "
            "must match on every "
            f"spec (got {len(conventions)} different combinations)")

    sweep_executor = resolve_executor(executor)
    with use_backend(specs[0].backend, dtype=specs[0].dtype):
        return _run_sweep(specs, model, data, hardware, input_shape, seed,
                          sweep_executor, max_workers, on_error)


def _run_sweep(specs: List[CompressionSpec], model: Union[str, Module],
               data: DataArg, hardware: Optional[EyerissSpec],
               input_shape: Optional[Tuple[int, int, int]],
               seed: int, sweep_executor, max_workers: Optional[int],
               on_error: str) -> SweepResult:
    # Capture the engine state up front — it depends only on the ambient
    # use_backend scope — so an unshippable backend fails before any
    # expensive stage (model build, dense profiling, probe training) runs.
    state = _capture_engine_state()
    if state is None and not sweep_executor.inline:
        raise RuntimeError(
            "the active backend is not registered under its name, so its "
            "state cannot be shipped to parallel sweep workers; register it "
            "with repro.nn.register_backend() or use executor='serial'")

    if isinstance(model, str):
        base_model = build_model(model, rng=np.random.default_rng(seed))
        resolved_shape = input_shape or default_input_shape(model)
    else:
        base_model = model
        if input_shape is None:
            raise ValueError("input_shape is required when passing a built model")
        resolved_shape = input_shape
    resolved_shape = tuple(resolved_shape)

    plan = _loader_plan(data, seed)

    # Stage 1 (parent): the dense baseline — model profile, hardware
    # evaluation and the trained dense accuracy probe — is computed once
    # and broadcast to every shard.
    specs = [spec.with_overrides(input_shape=resolved_shape) for spec in specs]
    dense = CompressionPipeline(specs[0], hardware=hardware).dense_baseline(
        base_model, resolved_shape)
    loaders = plan.make()
    if loaders is not None and loaders[1] is not None:
        dense.accuracy = _dense_accuracy(base_model, loaders, specs)
    result = SweepResult(dense=dense)

    # Stage 2 (workers): one task per spec.  Shards only need the dense
    # baseline as a "do not recompute" token plus its cost table — the
    # parent rebinds the full object (layer profile, per-layer hardware
    # report) in the merge — so a stripped copy travels, keeping the
    # per-task pickle payload small for the process executor.
    shard_dense = DenseBaseline(profile=None, cost=dense.cost,  # type: ignore[arg-type]
                                hardware=None, accuracy=dense.accuracy)
    tasks = [_ShardTask(spec=spec, model=base_model, loaders=plan,
                        hardware=hardware, dense=shard_dense, state=state)
             for spec in specs]
    shard_results = sweep_executor.run(_execute_shard, tasks,
                                       max_workers=max_workers,
                                       fail_fast=(on_error == "raise"))

    # Stage 3 (parent): deterministic merge, in spec order.  Reports are
    # rebound onto the parent's dense baseline object (worker copies of it
    # are dropped), preserving the shared-baseline identity invariant.
    for shard in shard_results:
        if shard.ok:
            report: CompressionReport = shard.value
            report.dense = dense
            report.dense_hardware = dense.hardware
            result.reports.append(report)
            continue
        if on_error == "raise":
            raise shard.error
        # Drop the traceback before recording: its frames pin the failed
        # shard's deep-copied model and loaders for the lifetime of the
        # SweepResult (error_type/message carry the report-facing data).
        shard.error.__traceback__ = None
        result.failures.append(SweepFailure(
            index=shard.index,
            spec=specs[shard.index],
            error_type=type(shard.error).__name__,
            message=str(shard.error),
            exception=shard.error,
        ))
    return result


def _capture_engine_state() -> Optional[EngineState]:
    """Capture the sweep's engine state, or ``None`` for unregistered backends.

    ``None`` makes each shard run under the caller's ambient state — only
    valid for inline (serial) executors, which run in the same thread;
    ``run_sweep`` rejects parallel executors in that case rather than
    silently running shards under the process-default backend.
    """
    try:
        return EngineState.capture()
    except KeyError:
        return None


def _dense_accuracy(base_model: Module, loaders, specs) -> float:
    """Accuracy of the dense reference under the sweep's training budget.

    When the specs request training, the compressed models are trained
    before evaluation — so the dense row is trained for the same number of
    epochs (on a copy) to keep the comparison meaningful.
    """
    from ..core import ClassifierTrainer
    from .adapters import evaluate_accuracy

    epochs = max((spec.epochs for spec in specs), default=0)
    probe = copy.deepcopy(base_model)
    if specs[0].dtype is not None or specs[0].backend is not None:
        probe.astype(get_default_dtype())
    if epochs > 0 and loaders[0] is not None:
        ClassifierTrainer(probe, lr=specs[0].lr).fit(
            loaders[0], loaders[1], epochs=epochs)
    return evaluate_accuracy(probe, loaders[1])
