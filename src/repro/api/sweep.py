"""Batch runner: a list of :class:`CompressionSpec` → a list of reports.

``run_sweep()`` with no arguments reproduces the paper's Table II method
set (magnitude, FPGM, AMC, LCNN, low-rank, ALF) on a ResNet-20 at CIFAR-10
geometry in one call.  The dense model is built once, the dataset loaders
are built once, and the dense profile + Eyeriss evaluation are computed
once and shared across every method — sweeps do not rebuild anything per
method.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data import DataLoader, SyntheticImageDataset
from ..hardware import EYERISS_PAPER, EyerissSpec
from ..metrics.compression import ComparisonTable, MethodResult, pareto_front
from ..metrics.tables import format_count, format_reduction, render_table
from ..models import build_model, default_input_shape
from ..nn.backend import get_default_dtype, use_backend
from ..nn.module import Module
from .pipeline import (
    CompressionPipeline,
    CompressionReport,
    DataArg,
    DenseBaseline,
    resolve_loaders,
)
from .registry import available_methods, get_method
from .spec import ALFSpec, AMCSpec, CompressionSpec, LCNNSpec, LowRankSpec

#: Per-stage remaining-filter fractions reproducing Table II's ALF row
#: (-70% Params / -61% OPs on ResNet-20); see Fig. 2c / Fig. 3 of the paper.
ALF_TABLE2_STAGE_REMAINING: Dict[int, float] = {16: 0.45, 32: 0.40, 64: 0.28}


def table2_specs(seed: int = 0) -> List[CompressionSpec]:
    """The Table II method set with the paper-matched operating points."""
    return [
        CompressionSpec(method="magnitude", seed=seed),
        CompressionSpec(method="fpgm", seed=seed),
        CompressionSpec(method="amc",
                        config=AMCSpec(target_ops_fraction=0.49), seed=seed),
        CompressionSpec(method="lcnn",
                        config=LCNNSpec(dictionary_fraction=0.25, sparsity=3),
                        seed=seed),
        CompressionSpec(method="lowrank",
                        config=LowRankSpec(rank_fraction=0.4), seed=seed),
        CompressionSpec(method="alf",
                        config=ALFSpec(stage_remaining=ALF_TABLE2_STAGE_REMAINING),
                        seed=seed),
    ]


@dataclass
class SweepResult:
    """Reports of a sweep plus the shared dense baseline."""

    dense: DenseBaseline
    reports: List[CompressionReport] = field(default_factory=list)

    def by_method(self, method: str) -> CompressionReport:
        key = get_method(method).name
        for report in self.reports:
            if report.method == key:
                return report
        raise KeyError(f"no report for method '{method}'")

    def methods(self) -> List[str]:
        return [report.method for report in self.reports]

    def comparison_table(self, baseline_label: str = "dense") -> ComparisonTable:
        baseline = MethodResult(
            method=baseline_label, policy="—",
            params=self.dense.cost["params"], ops=self.dense.cost["ops"],
            accuracy=(self.dense.accuracy or 0.0) * 100,
        )
        table = ComparisonTable(baseline=baseline)
        for report in self.reports:
            table.add(report.as_method_result())
        return table

    def pareto(self) -> List[MethodResult]:
        return pareto_front([r.as_method_result() for r in self.reports])

    def render(self, title: str = "Compression sweep") -> str:
        headers = ["Method", "Policy", "Params", "OPs", "ΔParams", "ΔOPs",
                   "ΔEnergy", "ΔLatency", "Acc[%]"]
        rows = [["dense", "—", format_count(self.dense.cost["params"]),
                 format_count(self.dense.cost["ops"]), "—", "—", "—", "—",
                 f"{self.dense.accuracy * 100:.1f}" if self.dense.accuracy is not None else "-"]]
        for report in self.reports:
            rows.append([
                report.spec.display_label, report.policy,
                format_count(report.cost["params"]), format_count(report.cost["ops"]),
                format_reduction(report.params_reduction),
                format_reduction(report.ops_reduction),
                format_reduction(report.energy_reduction),
                format_reduction(report.latency_reduction),
                f"{report.accuracy * 100:.1f}" if report.accuracy is not None else "-",
            ])
        return render_table(headers, rows, title=title)


def run_sweep(specs: Optional[Sequence[CompressionSpec]] = None,
              model: Union[str, Module] = "resnet20",
              data: DataArg = None,
              hardware: Optional[EyerissSpec] = EYERISS_PAPER,
              input_shape: Optional[Tuple[int, int, int]] = None,
              dtype: Optional[str] = None, backend: Optional[str] = None,
              seed: int = 0) -> SweepResult:
    """Run many compression specs against one shared model / dataset.

    With ``specs=None`` the Table II method set (all six registered
    methods) is evaluated at the paper's operating points.  The dense model
    and the data loaders are built once; each method then works on its own
    deep copy, and the dense profile + hardware evaluation are computed a
    single time and shared across every report.

    ``dtype`` / ``backend`` select the execution engine for the whole
    sweep (overriding every spec); because one dense baseline is shared,
    per-spec dtype/backend values must otherwise agree.
    """
    if specs is None:
        specs = table2_specs(seed=seed)
    specs = list(specs)
    if not specs:
        raise ValueError("specs must contain at least one CompressionSpec")
    if dtype is not None or backend is not None:
        specs = [s.with_overrides(dtype=dtype or s.dtype,
                                  backend=backend or s.backend) for s in specs]
    # The dense baseline is computed once and shared, so every spec must use
    # the same accounting conventions (and execution engine) for the
    # reductions to be comparable.
    conventions = {(s.conv_only, s.hardware_batch, tuple(s.layer_names or ()),
                    s.dtype, s.backend)
                   for s in specs}
    if len(conventions) > 1:
        raise ValueError(
            "run_sweep shares one dense baseline across all specs; "
            "conv_only / hardware_batch / layer_names / dtype / backend "
            "must match on every "
            f"spec (got {len(conventions)} different combinations)")

    with use_backend(specs[0].backend, dtype=specs[0].dtype):
        return _run_sweep(specs, model, data, hardware, input_shape, seed)


def _run_sweep(specs: List[CompressionSpec], model: Union[str, Module],
               data: DataArg, hardware: Optional[EyerissSpec],
               input_shape: Optional[Tuple[int, int, int]],
               seed: int) -> SweepResult:
    if isinstance(model, str):
        base_model = build_model(model, rng=np.random.default_rng(seed))
        resolved_shape = input_shape or default_input_shape(model)
    else:
        base_model = model
        if input_shape is None:
            raise ValueError("input_shape is required when passing a built model")
        resolved_shape = input_shape

    # Split the dataset once, but hand every method (and the dense probe)
    # freshly-seeded loaders: DataLoader shuffling advances a persistent RNG,
    # so sharing one loader would make each method's batch order — and thus
    # its result — depend on its position in the spec list.
    if isinstance(data, SyntheticImageDataset):
        train_split, val_split = data.split(0.8)

        def fresh_loaders():
            return (DataLoader(train_split, batch_size=32, shuffle=True, seed=seed),
                    DataLoader(val_split, batch_size=64))
    else:
        shared = resolve_loaders(data, seed=seed)

        def fresh_loaders():
            return shared

    dense: Optional[DenseBaseline] = None
    result: Optional[SweepResult] = None
    for spec in specs:
        spec = spec.with_overrides(input_shape=tuple(resolved_shape))
        pipeline = CompressionPipeline(spec, hardware=hardware)
        if dense is None:
            dense = pipeline.dense_baseline(base_model, tuple(resolved_shape))
            loaders = fresh_loaders()
            if loaders is not None and loaders[1] is not None:
                dense.accuracy = _dense_accuracy(base_model, loaders, specs)
            result = SweepResult(dense=dense)
        report = pipeline.run(model=copy.deepcopy(base_model), data=fresh_loaders(),
                              dense=dense, inplace=True)
        result.reports.append(report)
    return result


def _dense_accuracy(base_model: Module, loaders, specs) -> float:
    """Accuracy of the dense reference under the sweep's training budget.

    When the specs request training, the compressed models are trained
    before evaluation — so the dense row is trained for the same number of
    epochs (on a copy) to keep the comparison meaningful.
    """
    from ..core import ClassifierTrainer
    from .adapters import evaluate_accuracy

    epochs = max((spec.epochs for spec in specs), default=0)
    probe = copy.deepcopy(base_model)
    if specs[0].dtype is not None or specs[0].backend is not None:
        probe.astype(get_default_dtype())
    if epochs > 0 and loaders[0] is not None:
        ClassifierTrainer(probe, lr=specs[0].lr).fit(
            loaders[0], loaders[1], epochs=epochs)
    return evaluate_accuracy(probe, loaders[1])
