"""The ``repro-job/1`` wire protocol: sweep shards as pure-JSON payloads.

A :class:`SweepJob` is everything an *off-host* worker needs to run one
:class:`~repro.api.spec.CompressionSpec` — the spec's ``to_dict()``
payload, the **model registry name** plus build seed (never a live
module), the parent's table-level dense baseline guarded by a SHA-256
digest, the engine snapshot (backend / dtype / grad mode, by name), the
accelerator spec, and the data *recipe*.  The whole job round-trips
through JSON, so any transport that moves text — stdio, ssh, a job queue
— can move sweep shards.

Two result schemas complete the protocol:

* ``repro-job/1`` — parent → worker, one job;
* ``repro-job-result/1`` — worker → parent, either ``ok: true`` with a
  ``repro-report/1`` payload or ``ok: false`` with the error's type and
  message.

Jobs may also carry a serialized **compiled plan** instead of a spec:
:func:`plan_job_payload` ships a ``repro-plan/1`` payload plus one input
batch, the worker executes it via :func:`execute_plan_job`, and the
result frame returns the output array — bit-identical to the sender's
local forward (see :func:`run_plan_remote`).

:class:`RemoteExecutor` (registered as ``"remote"``) is the reference
transport: a pool of worker subprocesses (``python -m repro.api.worker``)
speaking exactly one JSON line per job over stdin/stdout.  It exists to
*prove* the protocol supports off-host workers — results streamed back
through it merge bit-identically with the serial path — and to serve as
the template for ssh / job-queue transports.
"""

from __future__ import annotations

import base64
import copy
import io
import json
import os
import queue
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Mapping, Optional

import numpy as np

from ..data import DataLoader, SyntheticImageDataset
from ..hardware import EnergyTable, EyerissSpec
from ..models import build_model
from .digests import payload_digest
from .executor import (
    EngineState,
    ShardPool,
    ShardResult,
    SweepExecutor,
    op_hook_isolation,
    register_executor,
)
from .pipeline import CompressionPipeline, CompressionReport, DenseBaseline
from .spec import CompressionSpec

#: Wire-format identifier of :meth:`SweepJob.to_dict` payloads.
JOB_SCHEMA = "repro-job/1"
#: Wire-format identifier of worker result payloads.
JOB_RESULT_SCHEMA = "repro-job-result/1"


class RemoteJobError(RuntimeError):
    """A job failed *inside* a remote worker.

    Carries the worker-side exception's type name and message — the live
    exception object never travels (the protocol is JSON-only).
    """

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.error_message = message


class RemoteWorkerError(RuntimeError):
    """The worker *transport* failed (crash, EOF, malformed protocol line)."""


# --------------------------------------------------------------------------- #
# JSON codecs: arrays, datasets, loader plans, hardware specs, engine state
# --------------------------------------------------------------------------- #
def array_to_payload(array: np.ndarray) -> Dict[str, Any]:
    """Encode an ndarray exactly (dtype, shape and bytes) as JSON-safe text."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return {"npy": base64.b64encode(buffer.getvalue()).decode("ascii")}


def array_from_payload(payload: Mapping[str, Any]) -> np.ndarray:
    return np.load(io.BytesIO(base64.b64decode(payload["npy"])),
                   allow_pickle=False)


def dataset_to_payload(dataset: SyntheticImageDataset) -> Dict[str, Any]:
    return {
        "images": array_to_payload(dataset.images),
        "labels": array_to_payload(dataset.labels),
        "num_classes": int(dataset.num_classes),
        "name": dataset.name,
    }


def dataset_from_payload(payload: Mapping[str, Any]) -> SyntheticImageDataset:
    return SyntheticImageDataset(
        images=array_from_payload(payload["images"]),
        labels=array_from_payload(payload["labels"]),
        num_classes=int(payload["num_classes"]),
        name=payload.get("name", "synthetic"),
    )


@dataclass
class LoaderPlan:
    """Deterministic, position-independent recipe for building shard loaders.

    ``DataLoader`` shuffling advances a persistent RNG, so handing the same
    loader object to several consumers would make each one's batch order —
    and thus its result — depend on its position in the spec list.  Every
    consumer (the dense probe and each shard, wherever it runs) therefore
    builds its loaders from this plan: freshly-seeded loaders over the
    one-time dataset split, or a deep copy of the pristine resolved pair.
    The plan is picklable, and the ``none`` / ``synthetic`` kinds also
    round-trip through the JSON wire format (:meth:`to_payload`), which is
    how data reaches ``repro-job/1`` workers; a ``template`` plan wraps
    live user loaders and can only travel by pickle.
    """

    kind: str  # "none" | "synthetic" | "template"
    train_split: Any = None
    val_split: Any = None
    seed: int = 0
    template: Any = None

    def make(self):
        if self.kind == "none":
            return None
        if self.kind == "synthetic":
            return (DataLoader(self.train_split, batch_size=32, shuffle=True,
                               seed=self.seed),
                    DataLoader(self.val_split, batch_size=64))
        return copy.deepcopy(self.template)

    # -- wire format ---------------------------------------------------- #
    def to_payload(self) -> Optional[Dict[str, Any]]:
        """The JSON data recipe, or a ``TypeError`` for live-loader plans."""
        if self.kind == "none":
            return None
        if self.kind == "template":
            raise TypeError(
                "user-supplied DataLoader objects have no JSON wire format "
                "and cannot be shipped to repro-job/1 workers; pass a "
                "SyntheticImageDataset (or data=None) for sweeps that run "
                "on the remote executor")
        return {
            "kind": "synthetic",
            "seed": int(self.seed),
            "train": dataset_to_payload(self.train_split),
            "val": dataset_to_payload(self.val_split),
        }

    @classmethod
    def from_payload(cls, payload: Optional[Mapping[str, Any]]) -> "LoaderPlan":
        if payload is None:
            return cls(kind="none")
        return cls(kind="synthetic", seed=int(payload["seed"]),
                   train_split=dataset_from_payload(payload["train"]),
                   val_split=dataset_from_payload(payload["val"]))


def hardware_to_payload(spec: Optional[EyerissSpec]) -> Optional[Dict[str, Any]]:
    if spec is None:
        return None
    import dataclasses
    payload = dataclasses.asdict(spec)
    payload["energy"] = dataclasses.asdict(spec.energy)
    return payload


def hardware_from_payload(payload: Optional[Mapping[str, Any]]
                          ) -> Optional[EyerissSpec]:
    if payload is None:
        return None
    fields = dict(payload)
    fields["energy"] = EnergyTable(**fields["energy"])
    return EyerissSpec(**fields).validate()


def engine_to_payload(state: Optional[EngineState]) -> Optional[Dict[str, Any]]:
    if state is None:
        return None
    return {"backend": state.execution.backend, "dtype": state.execution.dtype,
            "grad_override": state.grad_override}


def engine_from_payload(payload: Optional[Mapping[str, Any]]
                        ) -> Optional[EngineState]:
    if payload is None:
        return None
    from ..nn.backend import ExecutionState
    return EngineState(
        execution=ExecutionState(backend=payload["backend"],
                                 dtype=payload["dtype"]),
        grad_override=payload.get("grad_override"))


def state_to_payload(state: Optional[Mapping[str, np.ndarray]]
                     ) -> Optional[Dict[str, Any]]:
    """Encode a module state dict (name → ndarray) for the JSON wire."""
    if state is None:
        return None
    return {name: array_to_payload(np.asarray(array))
            for name, array in state.items()}


def state_from_payload(payload: Optional[Mapping[str, Any]]
                       ) -> Optional[Dict[str, np.ndarray]]:
    if payload is None:
        return None
    return {name: array_from_payload(entry)
            for name, entry in payload.items()}


def dense_digest(dense_payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of a dense-baseline payload.

    Jobs carry the digest next to the payload so a worker can prove the
    broadcast baseline survived the transport intact — a shard evaluated
    against a corrupted (or wrong sweep's) baseline would silently produce
    incomparable reductions.  Delegates to the shared
    :func:`repro.api.digests.payload_digest` canonical encoding, the same
    one the report cache keys on.
    """
    return payload_digest(dense_payload)


# --------------------------------------------------------------------------- #
# The job
# --------------------------------------------------------------------------- #
@dataclass
class SweepJob:
    """One sweep shard, fully described without any live python object.

    The worker bootstrap is *by name and seed*: ``model`` is a
    :func:`repro.models.build_model` registry name and ``seed`` the RNG
    seed it was built with in the parent, so the worker's rebuild is
    bit-identical to the parent's deep copy.  The dense baseline travels
    table-level (:meth:`DenseBaseline.to_dict`) and is integrity-checked
    against :attr:`dense_digest` on arrival.
    """

    spec: CompressionSpec
    model: str
    seed: int
    dense: DenseBaseline
    engine: Optional[EngineState] = None
    hardware: Optional[EyerissSpec] = None
    data: LoaderPlan = field(default_factory=lambda: LoaderPlan(kind="none"))
    job_id: int = 0
    #: Optional warm-start checkpoint (name → ndarray) seeding fine-tuning
    #: from a cached near-miss run; ``None`` runs the cold path.
    warm: Optional[Dict[str, np.ndarray]] = None

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-safe ``repro-job/1`` payload (round-trips exactly)."""
        dense_payload = self.dense.to_dict()
        return {
            "schema": JOB_SCHEMA,
            "job_id": int(self.job_id),
            "spec": self.spec.to_dict(),
            "model": self.model,
            "seed": int(self.seed),
            "dense": dense_payload,
            "dense_digest": dense_digest(dense_payload),
            "engine": engine_to_payload(self.engine),
            "hardware": hardware_to_payload(self.hardware),
            "data": self.data.to_payload(),
            "warm": state_to_payload(self.warm),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepJob":
        schema = payload.get("schema")
        if schema != JOB_SCHEMA:
            raise ValueError(
                f"unsupported job schema {schema!r}: expected '{JOB_SCHEMA}'")
        dense_payload = payload["dense"]
        digest = payload.get("dense_digest")
        if digest != dense_digest(dense_payload):
            raise ValueError(
                "dense-baseline digest mismatch: the repro-job/1 payload was "
                "corrupted in transport (or pairs a shard with the wrong "
                "sweep's baseline)")
        if not isinstance(payload["model"], str):
            raise TypeError("repro-job/1 requires a model registry name")
        return cls(
            spec=CompressionSpec.from_dict(payload["spec"]),
            model=payload["model"],
            seed=int(payload["seed"]),
            dense=DenseBaseline.from_dict(dense_payload),
            engine=engine_from_payload(payload.get("engine")),
            hardware=hardware_from_payload(payload.get("hardware")),
            data=LoaderPlan.from_payload(payload.get("data")),
            job_id=int(payload.get("job_id", 0)),
            warm=state_from_payload(payload.get("warm")),
        )


def execute_job(job: SweepJob) -> CompressionReport:
    """Run one job to a report — the worker-side half of the protocol.

    Mirrors the in-process shard execution exactly: the engine snapshot is
    re-applied (or hook isolation alone when no snapshot travelled), the
    model is rebuilt from the registry at the job's seed, loaders come from
    the data recipe, and the broadcast dense baseline suppresses the dense
    stage.
    """
    scope = job.engine.scope() if job.engine is not None else op_hook_isolation()
    with scope:
        model = build_model(job.model, rng=np.random.default_rng(job.seed))
        pipeline = CompressionPipeline(job.spec, hardware=job.hardware)
        return pipeline.run(model=model, data=job.data.make(),
                            dense=job.dense, inplace=True,
                            warm_start=job.warm)


# --------------------------------------------------------------------------- #
# Compiled-plan jobs: ship a serialized plan instead of a spec
# --------------------------------------------------------------------------- #
def plan_job_payload(plan: Any, x: Any, job_id: int = 0) -> Dict[str, Any]:
    """One ``repro-job/1`` payload carrying a compiled plan and its input.

    ``plan`` is an :class:`~repro.deploy.InferencePlan` or its serialized
    ``repro-plan/1`` mapping; ``x`` the input batch.  A worker receiving
    this executes the plan on the shipped input and returns the output
    array — bit-identically to the sender's local forward, since the plan
    wire form round-trips exactly (weights travel as base64-npy with
    their memory layout preserved).
    """
    plan_payload = dict(plan) if isinstance(plan, Mapping) else plan.to_dict()
    return {"schema": JOB_SCHEMA, "job_id": int(job_id),
            "plan": plan_payload,
            "plan_input": array_to_payload(np.asarray(x))}


def execute_plan_job(message: Mapping[str, Any]) -> np.ndarray:
    """Deserialize and run one shipped plan — the worker-side half."""
    from ..deploy import InferencePlan

    plan = InferencePlan.from_dict(message["plan"])
    out = plan(array_from_payload(message["plan_input"]))
    return np.asarray(getattr(out, "data", out))


# --------------------------------------------------------------------------- #
# Worker loop (the subprocess side of the stdio transport)
# --------------------------------------------------------------------------- #
def job_result_payload(job_id: int, report: Optional[CompressionReport] = None,
                       error: Optional[BaseException] = None) -> Dict[str, Any]:
    """Build one ``repro-job-result/1`` payload (ok or error form)."""
    if error is not None:
        return {"schema": JOB_RESULT_SCHEMA, "job_id": int(job_id), "ok": False,
                "error": {"type": type(error).__name__, "message": str(error)}}
    return {"schema": JOB_RESULT_SCHEMA, "job_id": int(job_id), "ok": True,
            "report": report.to_dict()}


def worker_main(stdin: Optional[IO[str]] = None,
                stdout: Optional[IO[str]] = None) -> int:
    """Serve ``repro-job/1`` payloads over line-delimited JSON until EOF.

    One line in, one line out, strictly in order.  ``{"op": "shutdown"}``
    ends the loop early.  The worker claims the real stdout for protocol
    frames and points ``sys.stdout`` at stderr, so nothing a compression
    method prints can corrupt the stream.
    """
    proto_in = stdin if stdin is not None else sys.stdin
    proto_out = stdout if stdout is not None else sys.stdout
    if stdout is None:
        sys.stdout = sys.stderr
    for line in proto_in:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            proto_out.write(json.dumps(job_result_payload(-1, error=exc)) + "\n")
            proto_out.flush()
            continue
        if message.get("op") == "shutdown":
            break
        job_id = message.get("job_id", -1)
        try:
            if message.get("plan") is not None:
                output = execute_plan_job(message)
                payload = {"schema": JOB_RESULT_SCHEMA,
                           "job_id": int(job_id), "ok": True,
                           "output": array_to_payload(output)}
            else:
                report = execute_job(SweepJob.from_dict(message))
                payload = job_result_payload(job_id, report=report)
        except Exception as exc:  # job failures are protocol data, not crashes
            payload = job_result_payload(job_id, error=exc)
        proto_out.write(json.dumps(payload) + "\n")
        proto_out.flush()
    return 0


# --------------------------------------------------------------------------- #
# Parent-side transport: subprocess workers over stdio
# --------------------------------------------------------------------------- #
def _coerce_job_payload(task: Any) -> Dict[str, Any]:
    """Accept a :class:`SweepJob` or its payload dict; reject anything else.

    The remote transport moves ``repro-job/1`` text, not pickled task
    objects — a :class:`~repro.api.session.ShardTask` (or any other value)
    must fail here with a clear message instead of surfacing as an opaque
    ``json.dumps`` error after burning a worker subprocess.
    """
    if isinstance(task, SweepJob):
        return task.to_dict()
    if isinstance(task, Mapping) and task.get("schema") == JOB_SCHEMA:
        return dict(task)
    raise TypeError(
        f"the remote executor transports '{JOB_SCHEMA}' payloads (a SweepJob "
        f"or its to_dict() form), got {type(task).__name__}; in-process task "
        "objects cannot travel over the JSON worker protocol")


class _WorkerProcess:
    """One persistent ``python -m repro.api.worker`` subprocess."""

    def __init__(self):
        import repro
        env = dict(os.environ)
        # The worker must import the same repro package as the parent even
        # when it was put on the path by pytest / a src-layout checkout.
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.api.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, env=env)

    def roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            self.process.stdin.write(json.dumps(payload) + "\n")
            self.process.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise RemoteWorkerError(f"worker stdin closed: {exc}") from None
        line = self.process.stdout.readline()
        if not line:
            raise RemoteWorkerError(
                f"worker exited mid-job (returncode="
                f"{self.process.poll()})")
        try:
            result = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RemoteWorkerError(
                f"malformed worker protocol line: {exc}") from None
        if result.get("schema") != JOB_RESULT_SCHEMA:
            raise RemoteWorkerError(
                f"unsupported job-result schema {result.get('schema')!r}: "
                f"expected '{JOB_RESULT_SCHEMA}'")
        return result

    def alive(self) -> bool:
        return self.process.poll() is None

    def close(self) -> None:
        try:
            if self.alive():
                self.process.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
                self.process.stdin.flush()
                self.process.wait(timeout=5)
        except (OSError, subprocess.TimeoutExpired):
            pass
        finally:
            if self.alive():
                self.process.kill()
                self.process.wait()


def run_plan_remote(plan: Any, x: Any) -> np.ndarray:
    """Ship ``plan`` and ``x`` to a fresh worker subprocess; return its output.

    The reference transport for plan shipping: a worker that never saw the
    model (or this process's memory) reproduces the local forward bit for
    bit from the ``repro-plan/1`` wire form alone.  Raises
    :class:`RemoteJobError` when the worker reports a failure.
    """
    worker = _WorkerProcess()
    try:
        result = worker.roundtrip(plan_job_payload(plan, x))
    finally:
        worker.close()
    if not result.get("ok"):
        error = result.get("error") or {}
        raise RemoteJobError(error.get("type", "Error"),
                             error.get("message", "plan job failed"))
    return array_from_payload(result["output"])


class _RemoteShardPool(ShardPool):
    """Worker subprocesses checked out by up to N submitter threads.

    Subprocesses spawn lazily — one per concurrently-running job, up to the
    capacity — so a single-spec session does not fork a whole host's worth
    of interpreters.  A worker that crashes (or corrupts the protocol) is
    discarded and its capacity slot freed, so later shards spawn a fresh
    one instead of waiting on a queue entry that will never return.
    """

    def __init__(self, workers: int):
        from concurrent.futures import ThreadPoolExecutor
        self._capacity = workers
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-remote")
        self._idle: "queue.Queue[_WorkerProcess]" = queue.Queue()
        self._all: List[_WorkerProcess] = []
        self._spawned = 0
        self._lock = threading.Lock()
        self._closed = False

    def _checkout(self) -> _WorkerProcess:
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue.Empty:
                break
            if worker is not None:  # None = close() wake-up sentinel
                return worker
        with self._lock:
            if self._closed:
                raise RemoteWorkerError("the remote shard pool is closed")
            spawn = self._spawned < self._capacity
            if spawn:
                self._spawned += 1
        if not spawn:
            # Capacity is fully deployed: wait for a busy worker to return
            # (at most `capacity` jobs run concurrently, each holding one).
            # close() feeds sentinels so this wait can never outlive the
            # pool — a woken waiter fails its shard instead of hanging
            # shutdown(wait=True).
            worker = self._idle.get()
            if worker is None:
                raise RemoteWorkerError("the remote shard pool is closed")
            return worker
        worker = _WorkerProcess()
        with self._lock:
            self._all.append(worker)
        return worker

    def _checkin(self, worker: _WorkerProcess) -> None:
        with self._lock:
            closed = self._closed
        if closed:
            worker.close()
            return
        self._idle.put(worker)

    def _discard(self, worker: _WorkerProcess) -> None:
        with self._lock:
            if worker in self._all:
                self._all.remove(worker)
            self._spawned -= 1
        worker.close()

    def _run_job(self, index: int, payload: Dict[str, Any]) -> ShardResult:
        worker = self._checkout()
        healthy = False
        try:
            result = worker.roundtrip(payload)
            healthy = True
        except Exception as exc:
            # RemoteWorkerError (crash, EOF, malformed frame) or anything
            # unexpected (e.g. an unencodable payload): surface it as this
            # shard's failure — the finally block frees the capacity slot
            # either way, so later shards never wait on a stranded worker.
            return ShardResult(index=index, error=exc)
        finally:
            if healthy:
                self._checkin(worker)
            else:
                self._discard(worker)
        if result.get("ok"):
            return ShardResult(
                index=index,
                value=CompressionReport.from_dict(result["report"]))
        error = result.get("error") or {}
        return ShardResult(index=index, error=RemoteJobError(
            error.get("type", "Exception"), error.get("message", "")))

    def submit(self, fn, index, task):
        # ``fn`` (the in-process shard callable) is unused — the worker
        # subprocess is the callee.
        return self._pool.submit(self._run_job, index, _coerce_job_payload(task))

    def close(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Wake every _checkout blocked on the idle queue (one sentinel per
        # possible waiter) so shutdown(wait=True) cannot deadlock on a
        # shard thread that will never be handed a worker.
        for _ in range(self._capacity):
            self._idle.put(None)
        self._pool.shutdown(wait=wait)
        with self._lock:
            workers = list(self._all)
            self._all.clear()
        for worker in workers:
            worker.close()


class RemoteExecutor(SweepExecutor):
    """Reference remote strategy: jobs round-trip through stdio workers.

    Shards travel as ``repro-job/1`` JSON lines to persistent
    ``python -m repro.api.worker`` subprocesses and come back as
    ``repro-report/1`` payloads — no pickle, no shared memory, no live
    objects — proving the protocol supports genuinely off-host workers
    (an ssh or job-queue transport only has to move the same text).
    Results are wire-reconstructed, so reports carry every table-level
    quantity but no live compressed model.
    """

    name = "remote"
    wire = True

    def open(self, max_workers: Optional[int] = None) -> ShardPool:
        return _RemoteShardPool(self.pool_capacity(max_workers))

    def run(self, fn, tasks, max_workers=None, fail_fast=False):
        """Batch surface over the same transport (``fn`` is unused).

        ``tasks`` must be :class:`SweepJob` instances or their ``to_dict``
        payloads — validated up front, so a caller handing this strategy
        in-process task objects gets one clear ``TypeError`` instead of a
        per-shard transport failure.
        """
        tasks = [_coerce_job_payload(task) for task in tasks]
        if not tasks:
            return []
        workers = self.resolved_workers(len(tasks), max_workers)
        results: List[ShardResult] = []
        with self.open(workers) as pool:
            futures = [pool.submit(fn, index, task)
                       for index, task in enumerate(tasks)]
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except Exception as exc:
                    results.append(ShardResult(index=index, error=exc))
        return results


register_executor("remote", RemoteExecutor)
