"""Streaming sweep execution: sessions, futures and retry/timeout policy.

:func:`repro.api.run_sweep` awaits a closed batch; a :class:`SweepSession`
lets callers *submit, observe, retry and cancel* specs instead:

    with api.SweepSession(model="resnet20", hardware=None,
                          input_shape=(3, 32, 32), executor="process") as s:
        futures = s.submit_all(specs)
        for future in s.as_completed():
            print(future.spec.display_label, future.result().ops_reduction)
        sweep = s.result()          # the familiar spec-ordered SweepResult

Every ``submit`` returns a :class:`SweepFuture` (``result`` / ``done`` /
``cancel``, completion callbacks); the session adds progress callbacks,
``as_completed`` iteration, and a scheduler that enforces per-spec
:class:`RetryPolicy` and ``timeout`` *outside* the executors — executors
only run shards, the session decides when a shard is re-run, abandoned or
never started.

The shared-baseline semantics of ``run_sweep`` are preserved exactly: the
dense model, loader plan, dense profile/hardware evaluation and dense
accuracy probe are computed once when the first specs are scheduled, every
shard receives the broadcast baseline, and :meth:`SweepSession.result`
merges reports **in spec order** — so ``run_sweep`` is now a thin façade
over a session, bit-identical to the previous serial path.

Execution strategies plug in through :meth:`SweepExecutor.open`.  For
``wire`` strategies (:class:`repro.api.jobs.RemoteExecutor`), the session
converts each shard into a ``repro-job/1`` payload — spec dict, model
registry name, seed, digest-guarded dense baseline — instead of a pickled
task, which is what lets the same submission model drive off-host workers.
"""

from __future__ import annotations

import copy
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..data import SyntheticImageDataset
from ..hardware import EYERISS_PAPER, EyerissSpec
from ..models import build_model, default_input_shape
from ..nn.backend import get_default_dtype, use_backend
from ..nn.module import Module
from .executor import (
    EngineState,
    ExecutorLike,
    ShardPool,
    ShardResult,
    SweepExecutor,
    op_hook_isolation,
    resolve_executor,
)
from .cache import (
    CacheArg,
    CacheIntegrityWarning,
    CacheKey,
    WarmStart,
    resolve_cache,
)
from .digests import data_digest, model_digest
from .jobs import LoaderPlan, SweepJob, state_to_payload
from .pipeline import (
    CompressionPipeline,
    CompressionReport,
    DataArg,
    DenseBaseline,
    resolve_loaders,
)
from .spec import CompressionSpec

#: Failure categories a resolved-but-unsuccessful future reports.
CATEGORY_ERROR = "error"
CATEGORY_TIMEOUT = "timeout"
CATEGORY_CANCELLED = "cancelled"


class SweepTimeoutError(RuntimeError):
    """A spec exceeded its per-attempt timeout (scheduler-enforced)."""


class SweepCancelledError(RuntimeError):
    """A future was cancelled before it could produce a report."""


@dataclass(frozen=True)
class RetryPolicy:
    """How often — and how patiently — the session re-runs a failing spec.

    ``max_attempts`` counts every run including the first (the default of 1
    means no retries).  The delay before attempt ``n + 1`` is
    ``backoff * backoff_multiplier ** (n - 1)`` seconds.  Timeouts respect
    the same budget when ``retry_timeouts`` is set; cancellations are never
    retried.
    """

    max_attempts: int = 1
    backoff: float = 0.0
    backoff_multiplier: float = 2.0
    retry_timeouts: bool = True

    def validate(self) -> "RetryPolicy":
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff < 0 or self.backoff_multiplier <= 0:
            raise ValueError("backoff must be >= 0 and backoff_multiplier > 0")
        return self

    def delay(self, failed_attempt: int) -> float:
        """Seconds to wait after ``failed_attempt`` (1-based) fails."""
        return self.backoff * self.backoff_multiplier ** max(0, failed_attempt - 1)


@dataclass(frozen=True)
class SessionEvent:
    """One progress notification (see :meth:`SweepSession.add_progress_callback`).

    ``kind`` is one of ``"submitted"``, ``"scheduled"``, ``"retrying"``,
    ``"completed"``, ``"cached"``, ``"failed"`` or ``"cancelled"``; a
    ``"cached"`` event replaces ``"scheduled"`` + ``"completed"`` when the
    result cache replays the spec's report without running it.  For
    ``"failed"`` events ``category`` distinguishes ``"error"`` from
    ``"timeout"``.
    """

    kind: str
    index: int
    spec: CompressionSpec
    attempt: int = 0
    category: Optional[str] = None
    error: Optional[BaseException] = None


@dataclass
class ShardTask:
    """Everything one shard needs, shipped to an in-process worker at once.

    The dense baseline is computed once in the session and broadcast here
    so no shard re-profiles (or re-maps on the accelerator) the dense
    network; ``state`` re-applies the parent's backend / dtype / grad mode
    inside the worker.  Wire executors receive the :class:`SweepJob`
    payload built from the same fields instead of this (pickled) object.
    """

    spec: CompressionSpec
    model: Module
    loaders: LoaderPlan
    hardware: Optional[EyerissSpec]
    dense: DenseBaseline
    state: Optional[EngineState]
    warm: Optional[dict] = None


def execute_shard(task: ShardTask) -> CompressionReport:
    """Run one spec in an isolated execution context (any worker, any host)."""
    # state=None means the parent's backend had no registry name to travel
    # by; run under the ambient state (correct for the serial executor, the
    # only strategy that can reach such a backend) with hook isolation only.
    scope = task.state.scope() if task.state is not None else op_hook_isolation()
    with scope:
        pipeline = CompressionPipeline(task.spec, hardware=task.hardware)
        return pipeline.run(model=copy.deepcopy(task.model),
                            data=task.loaders.make(),
                            dense=task.dense, inplace=True,
                            warm_start=task.warm)


def _loader_plan(data: DataArg, seed: int) -> LoaderPlan:
    if data is None:
        return LoaderPlan(kind="none")
    if isinstance(data, SyntheticImageDataset):
        train_split, val_split = data.split(0.8)
        return LoaderPlan(kind="synthetic", train_split=train_split,
                          val_split=val_split, seed=seed)
    return LoaderPlan(kind="template",
                      template=resolve_loaders(data, seed=seed))


# --------------------------------------------------------------------------- #
# Futures
# --------------------------------------------------------------------------- #
_PENDING = "pending"
_SCHEDULED = "scheduled"
_DONE = "done"


class SweepFuture:
    """Handle to one submitted spec: its report, failure, or cancellation.

    Mirrors :class:`concurrent.futures.Future` where it makes sense —
    :meth:`result`, :meth:`done`, :meth:`cancel`,
    :meth:`add_done_callback` — and adds sweep-specific state: the spec,
    the number of attempts consumed, and the failure ``category``
    (``"error"`` / ``"timeout"`` / ``"cancelled"``).
    """

    def __init__(self, session: "SweepSession", index: int,
                 spec: CompressionSpec, retry: RetryPolicy,
                 timeout: Optional[float]):
        self._session = session
        self._cond = session._cond
        self.index = index
        self.spec = spec
        self.retry = retry
        self.timeout = timeout
        self.attempts = 0
        self._state = _PENDING
        self._report: Optional[CompressionReport] = None
        self._error: Optional[BaseException] = None
        self._category: Optional[str] = None
        self._callbacks: List[Callable[["SweepFuture"], None]] = []
        # Scheduling internals owned by the session (guarded by _cond).
        self._attempt_token = 0
        self._pool_future = None
        self._timers: List[threading.Timer] = []
        # Cache bookkeeping (set once during scheduling, before any worker
        # can race on the future).
        self._cache_key: Optional[CacheKey] = None
        self._from_cache = False
        self._warm: Optional[WarmStart] = None

    # -- state ----------------------------------------------------------- #
    def done(self) -> bool:
        return self._state == _DONE

    def cancelled(self) -> bool:
        return self._category == CATEGORY_CANCELLED

    @property
    def category(self) -> Optional[str]:
        """``None`` while unresolved or successful, else the failure kind."""
        return self._category

    @property
    def cached(self) -> bool:
        """``True`` when the report was replayed from the result cache."""
        return self._from_cache

    @property
    def warm_source(self) -> Optional[str]:
        """Combined key of the cache entry that warm-started this run."""
        return None if self._warm is None else self._warm.source

    def result(self, timeout: Optional[float] = None) -> CompressionReport:
        """The report, waiting if necessary; raises the failure otherwise."""
        with self._cond:
            if not self._cond.wait_for(self.done, timeout=timeout):
                raise TimeoutError(
                    f"spec[{self.index}] did not resolve within {timeout}s")
            if self._error is not None:
                raise self._error
            return self._report

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The failure (or ``None`` on success), waiting if necessary."""
        with self._cond:
            if not self._cond.wait_for(self.done, timeout=timeout):
                raise TimeoutError(
                    f"spec[{self.index}] did not resolve within {timeout}s")
            return self._error

    def cancel(self) -> bool:
        """Stop this spec if it has not completed; ``True`` when it worked.

        A pending future (queued, waiting for a retry backoff, or sitting
        unstarted in an executor pool) cancels immediately; a shard already
        running on a worker cannot be interrupted and ``cancel`` returns
        ``False``.
        """
        return self._session._cancel_future(self)

    def add_done_callback(self, fn: Callable[["SweepFuture"], None]) -> None:
        """Call ``fn(future)`` once resolved (immediately if already done).

        Callbacks run on whatever thread resolves the future; exceptions
        they raise are swallowed so they cannot corrupt the scheduler.
        """
        with self._cond:
            if not self.done():
                self._callbacks.append(fn)
                return
        _call_quietly(fn, self)

    def __repr__(self) -> str:
        status = self._category or ("ok" if self._state == _DONE else self._state)
        return (f"SweepFuture(index={self.index}, "
                f"spec={self.spec.display_label!r}, {status})")


def _call_quietly(fn, *args) -> None:
    try:
        fn(*args)
    except Exception:
        pass


# --------------------------------------------------------------------------- #
# The session
# --------------------------------------------------------------------------- #
class SweepSession:
    """Incremental sweep submission over one shared dense baseline.

    Construction is cheap: the model, loader plan, dense profile /
    hardware evaluation and dense accuracy probe are built lazily when the
    first spec is scheduled (so a ``submit_all`` batch can size the dense
    probe's training budget exactly like ``run_sweep`` does).  All specs
    must share the accounting conventions (``conv_only``,
    ``hardware_batch``, ``layer_names``, ``dtype``, ``backend``) because
    one baseline is shared.

    ``executor`` / ``max_workers`` pick the strategy exactly as in
    ``run_sweep`` (including the ``REPRO_SWEEP_EXECUTOR`` environment
    variable); ``retry`` and ``timeout`` set session-wide defaults that
    individual ``submit`` calls may override.

    ``cache`` plugs in the content-addressed result cache
    (:mod:`repro.api.cache`): a policy string (``"off"`` / ``"read"`` /
    ``"write"`` / ``"readwrite"``), a :class:`~repro.api.cache.ReportCache`
    instance, or a ``(store, policy)`` pair.  Under a readable policy a
    submission whose (spec, model, data) content address has a stored
    report resolves instantly — its future reports ``cached=True`` and a
    ``"cached"`` progress event fires instead of ``"scheduled"`` /
    ``"completed"``.  Under a writable policy every fresh report (remote
    results included) is written back, together with the finalized model's
    parameters when the spec trained.  ``warm_start=True`` (the default;
    only meaningful with a readable cache) additionally seeds a cache-miss
    spec's fine-tuning from the nearest same-(method, model, data)
    checkpoint instead of training from dense.  Timeouts are enforced by
    the session scheduler: a per-attempt timer abandons (and optionally
    retries) the shard, cancelling it when the executor has not started
    it yet.  Inline strategies (``serial``) run shards synchronously
    inside ``submit`` — retries apply, and since a running shard cannot
    be preempted there, a timeout is enforced post-hoc: an attempt that
    finishes past its deadline resolves (or retries) as a timeout.
    """

    def __init__(self, model: Union[str, Module] = "resnet20",
                 data: DataArg = None,
                 hardware: Optional[EyerissSpec] = EYERISS_PAPER,
                 input_shape: Optional[Tuple[int, int, int]] = None,
                 dtype: Optional[str] = None, backend: Optional[str] = None,
                 seed: int = 0,
                 executor: Optional[ExecutorLike] = None,
                 max_workers: Optional[int] = None,
                 retry: Optional[RetryPolicy] = None,
                 timeout: Optional[float] = None,
                 cache: CacheArg = None,
                 warm_start: bool = True):
        self._model = model
        self._data = data
        self._hardware = hardware
        self._input_shape = input_shape
        self._dtype = dtype
        self._backend = backend
        self._seed = seed
        self._executor: SweepExecutor = resolve_executor(executor)
        self._max_workers = max_workers
        self._default_retry = (retry or RetryPolicy()).validate()
        self._default_timeout = _validated_timeout(timeout)
        self._cache, self._cache_policy = resolve_cache(cache)
        self._cache_read = self._cache_policy in ("read", "readwrite")
        self._cache_write = self._cache_policy in ("write", "readwrite")
        self._warm_start = bool(warm_start)

        self._cond = threading.Condition()
        self._boot_lock = threading.Lock()
        self._futures: List[SweepFuture] = []
        self._progress: List[Callable[[SessionEvent], None]] = []
        self._convention = None
        self._closed = False

        # Materialized by _ensure_baseline() on first scheduling.
        self._ready = False
        self._state: Optional[EngineState] = None
        self._base_model: Optional[Module] = None
        self._resolved_shape: Optional[Tuple[int, int, int]] = None
        self._plan: Optional[LoaderPlan] = None
        self._dense: Optional[DenseBaseline] = None
        self._shard_dense: Optional[DenseBaseline] = None
        self._wire_common: Optional[dict] = None
        self._pool: Optional[ShardPool] = None
        self._model_digest: Optional[str] = None
        self._data_digest: Optional[str] = None

    # -- lifecycle ------------------------------------------------------- #
    def __enter__(self) -> "SweepSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, wait: bool = True) -> None:
        """Cancel whatever has not started and release the executor pool.

        Shards already running on workers are waited for (``wait=True``)
        so their resources are reclaimed; their futures resolve normally.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            pool = self._pool
        for future in list(self._futures):
            if not future.done():
                future.cancel()
        if pool is not None:
            pool.close(wait=wait)
        # Futures of shards that were running when the pool drained have
        # resolved by now (their done-callbacks ran during shutdown).

    @property
    def dense(self) -> DenseBaseline:
        """The shared dense baseline (computes it if nothing ran yet)."""
        self._ensure_baseline()
        return self._dense

    @property
    def futures(self) -> List[SweepFuture]:
        """Every submitted future, in submission (= spec) order."""
        with self._cond:
            return list(self._futures)

    def plan(self, report: CompressionReport, *,
             batch: Optional[int] = None,
             memory_budget: Optional[int] = None, fold_bn: bool = False,
             elide_dead: bool = True, backend=None):
        """Compile ``report`` into an inference plan through this session.

        Same surface as :meth:`CompressionReport.plan`, but routed through
        the session's cache knob: with a readable policy the serialized
        ``repro-plan/1`` artifact is served from the store instead of
        recompiling, and with a writable policy fresh plans are stored for
        later sessions.
        """
        from .plan import compile_report
        cache = (None if self._cache is None
                 else (self._cache, self._cache_policy))
        return compile_report(report, batch=batch,
                              memory_budget=memory_budget, fold_bn=fold_bn,
                              elide_dead=elide_dead, backend=backend,
                              cache=cache)

    # -- progress events -------------------------------------------------- #
    def add_progress_callback(self, fn: Callable[[SessionEvent], None]) -> None:
        """Observe scheduling milestones of every future in this session.

        Callbacks receive :class:`SessionEvent` instances and may fire from
        scheduler or worker-collector threads; exceptions they raise are
        swallowed.
        """
        with self._cond:
            self._progress.append(fn)

    def _emit(self, kind: str, future: SweepFuture,
              error: Optional[BaseException] = None) -> None:
        with self._cond:
            callbacks = list(self._progress)
        if not callbacks:
            return
        event = SessionEvent(kind=kind, index=future.index, spec=future.spec,
                             attempt=future.attempts,
                             category=future._category, error=error)
        for fn in callbacks:
            _call_quietly(fn, event)

    # -- submission ------------------------------------------------------- #
    def submit(self, spec: CompressionSpec, *,
               retry: Optional[RetryPolicy] = None,
               timeout: Optional[float] = None) -> SweepFuture:
        """Register one spec and schedule it immediately."""
        future = self._register(spec, retry, timeout)
        self._emit("submitted", future)
        try:
            self._ensure_baseline()
            self._schedule(future)
        except Exception as exc:
            self._abort_unscheduled([future], exc)
            raise
        return future

    def submit_all(self, specs: Sequence[CompressionSpec], *,
                   retry: Optional[RetryPolicy] = None,
                   timeout: Optional[float] = None,
                   fail_fast: bool = False) -> List[SweepFuture]:
        """Register a batch, then schedule every spec in order.

        All specs are registered *before* the dense baseline materializes,
        so the dense accuracy probe sees the whole batch's training budget
        — exactly like ``run_sweep``.  With ``fail_fast=True``, a failure
        stops further scheduling and cancels the batch's unscheduled
        remainder (only inline strategies fail mid-loop; pools schedule
        everything up front, mirroring the batch executor semantics).
        """
        futures: List[SweepFuture] = []
        try:
            for spec in specs:
                futures.append(self._register(spec, retry, timeout))
            for future in futures:
                self._emit("submitted", future)
            if futures:
                self._ensure_baseline()
            for position, future in enumerate(futures):
                self._schedule(future)
                if fail_fast and future.done() and future._error is not None:
                    for rest in futures[position + 1:]:
                        rest.cancel()
                    break
        except Exception as exc:
            # A failure anywhere in the batch — a later spec failing
            # registration included — must not leave earlier futures
            # pending forever.
            self._abort_unscheduled(futures, exc)
            raise
        return futures

    def _abort_unscheduled(self, futures: Sequence[SweepFuture],
                           error: BaseException) -> None:
        """Resolve registered-but-unscheduled futures when bootstrap fails.

        The baseline (or the executor pool) raising must not leave futures
        pending forever — ``wait`` / ``result`` / ``as_completed`` would
        block on work that can never run.  Each one resolves carrying the
        bootstrap error.
        """
        for future in futures:
            if not future.done():
                self._resolve(future, error=error, category=CATEGORY_ERROR)

    def _register(self, spec: CompressionSpec,
                  retry: Optional[RetryPolicy],
                  timeout: Optional[float]) -> SweepFuture:
        if not isinstance(spec, CompressionSpec):
            raise TypeError(f"expected a CompressionSpec, got {type(spec).__name__}")
        if self._dtype is not None or self._backend is not None:
            spec = spec.with_overrides(dtype=self._dtype or spec.dtype,
                                       backend=self._backend or spec.backend)
        convention = (spec.conv_only, spec.hardware_batch,
                      tuple(spec.layer_names or ()), spec.dtype, spec.backend)
        policy = (retry.validate() if retry is not None else self._default_retry)
        timeout = (_validated_timeout(timeout) if timeout is not None
                   else self._default_timeout)
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed SweepSession")
            if self._convention is None:
                self._convention = convention
            elif convention != self._convention:
                raise ValueError(
                    "a SweepSession shares one dense baseline across all "
                    "specs; conv_only / hardware_batch / layer_names / dtype "
                    "/ backend must match on every spec")
            if self._ready:
                spec = spec.with_overrides(input_shape=self._resolved_shape)
            future = SweepFuture(self, len(self._futures), spec,
                                 policy, timeout)
            self._futures.append(future)
        return future

    # -- baseline bootstrap ----------------------------------------------- #
    def _ensure_baseline(self) -> None:
        with self._boot_lock:
            with self._cond:
                if self._ready:
                    return
                specs = [future.spec for future in self._futures]
            if not specs:
                raise ValueError(
                    "submit at least one CompressionSpec before the session "
                    "can materialize its dense baseline")
            first = specs[0]
            with use_backend(first.backend, dtype=first.dtype):
                self._materialize(specs)

    def _materialize(self, specs: List[CompressionSpec]) -> None:
        # Capture the engine state up front — it depends only on the ambient
        # use_backend scope — so an unshippable backend fails before any
        # expensive stage (model build, dense profiling, probe training).
        state = _capture_engine_state()
        if state is None and not self._executor.inline:
            raise RuntimeError(
                "the active backend is not registered under its name, so its "
                "state cannot be shipped to parallel sweep workers; register "
                "it with repro.nn.register_backend() or use executor='serial'")
        if self._executor.wire and not isinstance(self._model, str):
            raise TypeError(
                f"the '{self._executor.name}' executor bootstraps workers "
                "from the model registry and cannot ship a built Module; "
                "pass a registry name (e.g. 'resnet20')")

        if isinstance(self._model, str):
            base_model = build_model(self._model,
                                     rng=np.random.default_rng(self._seed))
            resolved_shape = self._input_shape or default_input_shape(self._model)
        else:
            base_model = self._model
            if self._input_shape is None:
                raise ValueError(
                    "input_shape is required when passing a built model")
            resolved_shape = self._input_shape
        resolved_shape = tuple(resolved_shape)

        plan = _loader_plan(self._data, self._seed)
        if self._executor.wire and plan.kind == "template":
            plan.to_payload()  # raises: live loaders cannot reach wire workers

        # Cache addressing: the model digest is taken on the pristine base
        # model (the dense probe trains a copy) and the data digest on the
        # canonical recipe.  Template plans wrap live user loaders, which
        # have no canonical form — such sessions run uncached.
        base_digest = data_part = None
        if self._cache is not None:
            base_digest = model_digest(base_model)
            data_part = data_digest(plan)
            if data_part is None:
                warnings.warn(
                    "this session's data has no canonical recipe "
                    "(user-supplied DataLoader objects), so its submissions "
                    "cannot be content-addressed; the result cache is "
                    "disabled for this session", CacheIntegrityWarning,
                    stacklevel=3)

        # Stage 1 (parent): the dense baseline — model profile, hardware
        # evaluation and the trained dense accuracy probe — is computed once
        # and broadcast to every shard.
        specs = [spec.with_overrides(input_shape=resolved_shape)
                 for spec in specs]
        dense = CompressionPipeline(specs[0], hardware=self._hardware
                                    ).dense_baseline(base_model, resolved_shape)
        loaders = plan.make()
        if loaders is not None and loaders[1] is not None:
            dense.accuracy = _dense_accuracy(base_model, loaders, specs)

        # Shards only need the dense baseline as a "do not recompute" token
        # plus its cost table — the session rebinds the full object (layer
        # profile, per-layer hardware report) when futures resolve — so a
        # stripped copy travels, keeping the per-task payload small.
        shard_dense = DenseBaseline(profile=None, cost=dense.cost,  # type: ignore[arg-type]
                                    hardware=None, accuracy=dense.accuracy)

        # Everything in a repro-job/1 payload except the spec and job id is
        # session-constant, so the expensive parts (base64 data recipe,
        # digest-guarded dense payload) are encoded exactly once — through
        # the canonical SweepJob.to_dict itself, so the cached fields can
        # never drift from the protocol.
        wire_common = None
        if self._executor.wire:
            template = SweepJob(spec=specs[0], model=self._model,
                                seed=self._seed, dense=shard_dense,
                                engine=state, hardware=self._hardware,
                                data=plan)
            wire_common = {key: value
                           for key, value in template.to_dict().items()
                           if key not in ("spec", "job_id")}

        with self._cond:
            self._state = state
            self._base_model = base_model
            self._resolved_shape = resolved_shape
            self._plan = plan
            self._dense = dense
            self._shard_dense = shard_dense
            self._wire_common = wire_common
            self._model_digest = base_digest
            self._data_digest = data_part
            for future in self._futures:
                future.spec = future.spec.with_overrides(
                    input_shape=resolved_shape)
            self._ready = True

    def _ensure_pool(self) -> ShardPool:
        with self._cond:
            if self._pool is None:
                self._pool = self._executor.open(self._max_workers)
            return self._pool

    # -- scheduling -------------------------------------------------------- #
    def _shard_payload(self, future: SweepFuture) -> Any:
        warm = None if future._warm is None else future._warm.state
        if self._wire_common is not None:
            payload = {**self._wire_common,
                       "job_id": int(future.index),
                       "spec": future.spec.to_dict()}
            if warm is not None:
                payload["warm"] = state_to_payload(warm)
            return payload
        return ShardTask(spec=future.spec, model=self._base_model,
                         loaders=self._plan, hardware=self._hardware,
                         dense=self._shard_dense, state=self._state,
                         warm=warm)

    # -- cache ------------------------------------------------------------- #
    def _future_key(self, future: SweepFuture) -> Optional[CacheKey]:
        """The submission's content address, or ``None`` when uncacheable."""
        if (self._cache is None or self._model_digest is None
                or self._data_digest is None):
            return None
        try:
            spec_part = future.spec.digest()
        except TypeError:
            return None  # the spec carries a live Module / unencodable config
        return CacheKey(method=future.spec.method, spec=spec_part,
                        model=self._model_digest, data=self._data_digest)

    def _try_cache(self, future: SweepFuture) -> bool:
        """Replay a hit (``True``) or arm a near-miss warm start (``False``).

        Runs once per future, during scheduling — before any worker can race
        on it — so ``_cache_key`` / ``_warm`` need no further locking.
        """
        if self._cache is None:
            return False
        key = self._future_key(future)
        if key is None:
            return False
        future._cache_key = key
        if not self._cache_read:
            return False
        report = self._cache.get(key)
        if report is not None:
            future._from_cache = True
            self._resolve(future, report=report)
            return True
        if (self._warm_start and future.spec.epochs > 0
                and self._plan is not None and self._plan.kind != "none"):
            try:
                future._warm = self._cache.nearest_checkpoint(
                    key, future.spec.to_dict())
            except Exception as exc:
                warnings.warn(
                    f"warm-start lookup failed for spec[{future.index}] "
                    f"({future.spec.display_label}); running cold: {exc}",
                    CacheIntegrityWarning, stacklevel=2)
        return False

    def _store_result(self, future: SweepFuture,
                      report: CompressionReport) -> None:
        """Write a fresh report (and checkpoint, when trained) back."""
        if self._cache is None or not self._cache_write:
            return
        key = future._cache_key or self._future_key(future)
        if key is None:
            return
        checkpoint = None
        if future.spec.epochs > 0 and report.compressed.model is not None:
            # Untrained parameters would poison later warm starts, and wire
            # results (model dropped by repro-report/1) have nothing to save
            # — the report itself is still cached.
            checkpoint = report.compressed.model.state_dict()
        warm_source = None if future._warm is None else future._warm.source
        try:
            self._cache.put(key, report, checkpoint=checkpoint,
                            warm_source=warm_source)
        except Exception as exc:
            warnings.warn(
                f"report-cache write failed for spec[{future.index}] "
                f"({future.spec.display_label}): {exc}",
                CacheIntegrityWarning, stacklevel=2)

    def _schedule(self, future: SweepFuture) -> None:
        with self._cond:
            if future.done():
                return
            future._state = _SCHEDULED
        if self._try_cache(future):
            return
        if self._executor.inline:
            self._run_inline(future)
        else:
            self._submit_attempt(future, future.attempts + 1)

    def _run_inline(self, future: SweepFuture) -> None:
        """Serial strategies: run (and retry) the shard in this thread.

        A running shard cannot be preempted here, so ``timeout`` is
        enforced post-hoc: an attempt finishing past its deadline resolves
        (or retries, per the policy) as a timeout — its report, if any, is
        discarded, matching what a pool-backed session would have done.
        """
        task = self._shard_payload(future)
        while True:
            attempt = future.attempts + 1
            self._emit("scheduled", future)
            start = time.monotonic()
            # The spec-level scope mirrors the historical run_sweep wrapper:
            # with an unshippable (state=None) backend the shard must still
            # see the sweep's dtype/backend, not this thread's defaults.
            try:
                with use_backend(future.spec.backend, dtype=future.spec.dtype):
                    report = execute_shard(task)
                error = None
            except Exception as exc:
                report, error = None, exc
            elapsed = time.monotonic() - start
            with self._cond:
                if future.done():
                    return  # cancelled from another thread mid-run
                future.attempts = attempt
            if error is not None:
                category, may_retry = CATEGORY_ERROR, True
            elif future.timeout is not None and elapsed > future.timeout:
                error = SweepTimeoutError(
                    f"spec[{future.index}] ({future.spec.display_label}) "
                    f"exceeded the {future.timeout}s timeout on attempt "
                    f"{attempt}/{future.retry.max_attempts} "
                    f"(ran for {elapsed:.2f}s on an inline executor)")
                category, may_retry = CATEGORY_TIMEOUT, future.retry.retry_timeouts
            else:
                self._resolve(future, report=report)
                return
            if may_retry and attempt < future.retry.max_attempts:
                self._emit("retrying", future, error=error)
                time.sleep(future.retry.delay(attempt))
                continue
            self._resolve(future, error=error, category=category)
            return

    def _submit_attempt(self, future: SweepFuture, attempt: int) -> None:
        pool = self._ensure_pool()
        task = self._shard_payload(future)
        with self._cond:
            if future.done():
                return
            future._attempt_token = attempt
        try:
            pool_future = pool.submit(execute_shard, future.index, task)
        except Exception as exc:
            # The pool could not even accept the shard (e.g. an unpicklable
            # task, or a pool torn down mid-submit).
            with self._cond:
                if future.done():
                    return
                future.attempts = attempt
            self._resolve(future, error=exc, category=CATEGORY_ERROR)
            return
        with self._cond:
            if future.done():
                pool_future.cancel()
                return
            future._pool_future = pool_future
        self._emit("scheduled", future)
        if future.timeout is not None:
            timer = threading.Timer(
                future.timeout, self._on_timeout, args=(future, attempt))
            timer.daemon = True
            with self._cond:
                future._timers.append(timer)
            timer.start()
        pool_future.add_done_callback(
            lambda pf: self._on_attempt_done(future, attempt, pf))

    def _on_attempt_done(self, future: SweepFuture, attempt: int,
                         pool_future) -> None:
        with self._cond:
            if future.done() or future._attempt_token != attempt:
                return  # stale attempt: timed out, cancelled or superseded
            self._drop_timers(future)
            try:
                shard: ShardResult = pool_future.result()
            except Exception as exc:
                if pool_future.cancelled():
                    return  # the cancel path resolves the future
                shard = ShardResult(index=future.index, error=exc)
            future.attempts = attempt
        if shard.ok:
            self._resolve(future, report=shard.value)
            return
        if attempt < future.retry.max_attempts:
            self._retry_later(future, attempt, shard.error)
            return
        self._resolve(future, error=shard.error, category=CATEGORY_ERROR)

    def _on_timeout(self, future: SweepFuture, attempt: int) -> None:
        with self._cond:
            if future.done() or future._attempt_token != attempt:
                return
            # Invalidate the attempt: a late completion must be discarded,
            # and an unstarted shard is pulled back from the pool queue.
            future._attempt_token = -attempt
            if future._pool_future is not None:
                future._pool_future.cancel()
            future.attempts = attempt
            self._drop_timers(future)
        error = SweepTimeoutError(
            f"spec[{future.index}] ({future.spec.display_label}) exceeded "
            f"the {future.timeout}s timeout on attempt "
            f"{attempt}/{future.retry.max_attempts}")
        if future.retry.retry_timeouts and attempt < future.retry.max_attempts:
            self._retry_later(future, attempt, error)
            return
        self._resolve(future, error=error, category=CATEGORY_TIMEOUT)

    def _retry_later(self, future: SweepFuture, failed_attempt: int,
                     error: BaseException) -> None:
        self._emit("retrying", future, error=error)
        delay = future.retry.delay(failed_attempt)
        timer = threading.Timer(
            delay, self._submit_attempt, args=(future, failed_attempt + 1))
        timer.daemon = True
        with self._cond:
            if future.done():
                return
            future._timers.append(timer)
        timer.start()

    def _drop_timers(self, future: SweepFuture) -> None:
        for timer in future._timers:
            timer.cancel()
        future._timers.clear()

    def _cancel_future(self, future: SweepFuture) -> bool:
        with self._cond:
            if future.done():
                return False
            pool_future = future._pool_future
            if pool_future is not None and not pool_future.cancel() \
                    and pool_future.running():
                return False  # already on a worker; cannot be interrupted
            future._attempt_token = -1
            self._drop_timers(future)
            future.attempts = max(future.attempts, 0)
        self._resolve(future,
                      error=SweepCancelledError(
                          f"spec[{future.index}] "
                          f"({future.spec.display_label}) was cancelled"),
                      category=CATEGORY_CANCELLED)
        return True

    def _resolve(self, future: SweepFuture,
                 report: Optional[CompressionReport] = None,
                 error: Optional[BaseException] = None,
                 category: Optional[str] = None) -> None:
        with self._cond:
            if future.done():
                return
            if report is not None:
                # Rebind onto the session's full dense baseline (worker
                # copies are dropped), preserving the shared-baseline
                # identity invariant of run_sweep.
                report.dense = self._dense
                report.dense_hardware = self._dense.hardware
            future._report = report
            future._error = error
            future._category = category
            future._state = _DONE
            self._drop_timers(future)
            callbacks = list(future._callbacks)
            future._callbacks.clear()
            self._cond.notify_all()
        if error is None:
            if future._from_cache:
                self._emit("cached", future)
            else:
                self._emit("completed", future)
                if report is not None:
                    # Write-back runs outside the lock, after the rebind
                    # above, so the stored dense payload carries the full
                    # baseline (hardware totals included) a replay must
                    # reproduce.
                    self._store_result(future, report)
        elif category == CATEGORY_CANCELLED:
            self._emit("cancelled", future, error=error)
        else:
            self._emit("failed", future, error=error)
        for fn in callbacks:
            _call_quietly(fn, future)

    # -- observation ------------------------------------------------------- #
    def as_completed(self, futures: Optional[Sequence[SweepFuture]] = None,
                     timeout: Optional[float] = None
                     ) -> Iterator[SweepFuture]:
        """Yield futures as they resolve (completion order, not spec order)."""
        pending = list(futures if futures is not None else self.futures)
        deadline = None if timeout is None else time.monotonic() + timeout
        while pending:
            with self._cond:
                done = [f for f in pending if f.done()]
                if not done:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"{len(pending)} futures unresolved after {timeout}s")
                    if not self._cond.wait(remaining):
                        raise TimeoutError(
                            f"{len(pending)} futures unresolved after {timeout}s")
                    continue
            for future in done:
                pending.remove(future)
                yield future

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted future resolves; ``False`` on timeout."""
        with self._cond:
            return self._cond.wait_for(
                lambda: all(f.done() for f in self._futures), timeout=timeout)

    def result(self, on_error: str = "raise"):
        """All resolved futures merged into a spec-ordered ``SweepResult``.

        ``on_error="raise"`` re-raises the first failure in spec order;
        ``"skip"`` records failures (with their ``attempts`` and
        ``category``) on ``SweepResult.failures`` and keeps every healthy
        report.  Waits for outstanding futures first.
        """
        from .sweep import SweepFailure, SweepResult

        if on_error not in ("raise", "skip"):
            raise ValueError("on_error must be 'raise' or 'skip'")
        futures = self.futures
        if not futures:
            raise ValueError("no specs were submitted to this session")
        self.wait()
        result = SweepResult(dense=self._dense)
        for future in futures:
            if future._error is None:
                result.reports.append(future._report)
                continue
            if on_error == "raise":
                raise future._error
            # Drop the traceback before recording: its frames pin the failed
            # shard's deep-copied model and loaders for the lifetime of the
            # SweepResult (error_type/message carry the report-facing data).
            future._error.__traceback__ = None
            result.failures.append(SweepFailure(
                index=future.index,
                spec=future.spec,
                error_type=type(future._error).__name__,
                message=str(future._error),
                exception=future._error,
                attempts=max(1, future.attempts),
                category=future._category or CATEGORY_ERROR,
            ))
        return result


def print_progress(prefix: str = "sweep",
                   total: Optional[int] = None
                   ) -> Callable[[SessionEvent], None]:
    """A progress callback printing one line per scheduling milestone.

    The ``--stream`` flag of the experiments and examples installs this via
    :meth:`SweepSession.add_progress_callback`.
    """
    def _print(event: SessionEvent) -> None:
        slot = (f"{event.index + 1}/{total}" if total is not None
                else f"#{event.index}")
        detail = ""
        if event.kind == "retrying":
            detail = f" (attempt {event.attempt} failed: {event.error})"
        elif event.kind == "failed":
            detail = f" [{event.category}] {event.error}"
        print(f"[{prefix}] {slot} {event.spec.display_label}: "
              f"{event.kind}{detail}", flush=True)

    return _print


def _validated_timeout(timeout: Optional[float]) -> Optional[float]:
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive (seconds)")
    return timeout


def _capture_engine_state() -> Optional[EngineState]:
    """Capture the sweep's engine state, or ``None`` for unregistered backends.

    ``None`` makes each shard run under the caller's ambient state — only
    valid for inline (serial) executors, which run in the same thread;
    the session rejects parallel executors in that case rather than
    silently running shards under the process-default backend.
    """
    try:
        return EngineState.capture()
    except KeyError:
        return None


def _dense_accuracy(base_model: Module, loaders, specs) -> float:
    """Accuracy of the dense reference under the sweep's training budget.

    When the specs request training, the compressed models are trained
    before evaluation — so the dense row is trained for the same number of
    epochs (on a copy) to keep the comparison meaningful.
    """
    from ..core import ClassifierTrainer
    from .adapters import evaluate_accuracy

    epochs = max((spec.epochs for spec in specs), default=0)
    probe = copy.deepcopy(base_model)
    if specs[0].dtype is not None or specs[0].backend is not None:
        probe.astype(get_default_dtype())
    if epochs > 0 and loaders[0] is not None:
        ClassifierTrainer(probe, lr=specs[0].lr).fit(
            loaders[0], loaders[1], epochs=epochs)
    return evaluate_accuracy(probe, loaders[1])
