"""String-keyed registry of compression methods.

Methods register themselves (see :mod:`repro.api.adapters`) under a short
name; :func:`create_method` resolves a :class:`CompressionSpec` to a ready
adapter instance.  The registry is the single source of truth for "which
methods exist" — the sweep runner, the docs table and the tests all iterate
:func:`available_methods`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Type

from .spec import CompressionSpec


@dataclass(frozen=True)
class MethodEntry:
    """One registered compression method."""

    name: str
    adapter_type: type
    config_type: type
    policy: str
    summary: str


_REGISTRY: Dict[str, MethodEntry] = {}

#: Accepted spellings that map onto a canonical registry key.
_ALIASES: Dict[str, str] = {
    "low-rank": "lowrank",
    "low_rank": "lowrank",
    "svd": "lowrank",
}


def canonical_name(name: str) -> str:
    key = name.strip().lower()
    return _ALIASES.get(key, key)


def register_method(name: str, config_type: type, policy: str,
                    summary: str = "") -> Callable[[type], type]:
    """Class decorator registering an adapter under ``name``."""

    def decorator(adapter_type: type) -> type:
        key = canonical_name(name)
        _REGISTRY[key] = MethodEntry(
            name=key, adapter_type=adapter_type, config_type=config_type,
            policy=policy, summary=summary,
        )
        adapter_type.name = key
        adapter_type.policy = policy
        return adapter_type

    return decorator


def unregister_method(name: str) -> None:
    """Remove a method registration (no-op when absent).

    Exists for tests and short-lived plugin methods (e.g. benchmark-only
    workloads) that must not leak into :func:`available_methods` after use.
    """
    _REGISTRY.pop(canonical_name(name), None)


def get_method(name: str) -> MethodEntry:
    key = canonical_name(name)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown compression method '{name}'; available: {available_methods()}")
    return _REGISTRY[key]


def available_methods() -> List[str]:
    """Sorted canonical names of all registered methods."""
    return sorted(_REGISTRY)


def method_entries() -> List[MethodEntry]:
    return [_REGISTRY[name] for name in available_methods()]


def create_method(spec: CompressionSpec):
    """Instantiate the adapter for ``spec`` with its (defaulted) config."""
    entry = get_method(spec.method)
    config = spec.resolved_config()
    if not isinstance(config, entry.config_type):
        raise TypeError(
            f"method '{entry.name}' expects a {entry.config_type.__name__} config, "
            f"got {type(config).__name__}")
    if hasattr(config, "validate"):
        config.validate()
    return entry.adapter_type(config, spec)
