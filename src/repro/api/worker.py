"""``python -m repro.api.worker`` — a ``repro-job/1`` worker over stdio.

Reads one JSON job per line from stdin, writes one ``repro-job-result/1``
line to stdout (see :mod:`repro.api.jobs` for the protocol).  This is the
subprocess half of :class:`repro.api.jobs.RemoteExecutor`, and the exact
program an ssh / job-queue transport would start on an off-host worker.
"""

from __future__ import annotations

import sys

from .jobs import worker_main

if __name__ == "__main__":
    sys.exit(worker_main())
