"""Content digests shared by the wire protocol and the result cache.

Everything a sweep computes is a deterministic function of (spec, model,
data recipe, engine state), so SHA-256 over *canonical* encodings of those
inputs is a sound content address:

* :func:`canonical_json` / :func:`payload_digest` — the one canonical JSON
  form (sorted keys, no whitespace) every digest in the repository hashes.
  ``repro-job/1`` guards its dense baseline with it
  (:func:`repro.api.jobs.dense_digest` delegates here) and
  :meth:`CompressionSpec.digest() <repro.api.CompressionSpec.digest>` keys
  the report cache with it.
* :func:`model_digest` — a parameter-byte hash of a built
  :class:`~repro.nn.module.Module`: every named parameter and buffer
  contributes its name, dtype, shape and raw little-endian bytes, sorted by
  name so the digest is independent of registration order.
* :func:`data_digest` — a hash of a
  :class:`~repro.api.jobs.LoaderPlan`'s JSON recipe (the same base64-npy
  encoding ``repro-job/1`` ships to workers).  Plans wrapping live user
  loaders have no canonical encoding and digest to ``None`` — submissions
  over them are uncacheable.

The module is dependency-light on purpose (no imports from the rest of
``repro.api``), so every layer — jobs, cache, session — can share it
without cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

import numpy as np


def canonical_json(payload: Any) -> str:
    """The one canonical JSON encoding: sorted keys, compact separators.

    Two payloads that differ only in dict key order (or in the insertion
    order of config fields) encode — and therefore digest — identically.
    The payload is normalized through one JSON round trip first, so
    non-string mapping keys (e.g. ``ALFSpec.stage_remaining``'s integer
    filter counts) digest identically before and after a trip over the
    wire: keys sort by their JSON *string* form on both sides.
    """
    normalized = json.loads(json.dumps(payload, separators=(",", ":")))
    return json.dumps(normalized, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Any) -> str:
    """SHA-256 hex digest over the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def model_digest(model) -> str:
    """SHA-256 over a module tree's parameter and buffer bytes.

    The hash covers, for every named parameter and buffer in *name-sorted*
    order: the name, the dtype, the shape, and the raw array bytes — so two
    models digest equally iff they would behave bit-identically, regardless
    of the traversal order their modules were registered in.
    """
    hasher = hashlib.sha256()
    entries = list(model.named_parameters())
    entries += [(f"buffer:{name}", buf) for name, buf in model.named_buffers()]
    for name, value in sorted(entries, key=lambda item: item[0]):
        array = np.ascontiguousarray(
            value.data if hasattr(value, "data") else value)
        hasher.update(name.encode("utf-8"))
        hasher.update(str(array.dtype).encode("ascii"))
        hasher.update(repr(array.shape).encode("ascii"))
        hasher.update(array.tobytes())
    return hasher.hexdigest()


def data_digest(plan) -> Optional[str]:
    """SHA-256 over a loader plan's JSON recipe, or ``None`` when it has none.

    ``None`` (for plans wrapping live user ``DataLoader`` objects) marks the
    submission as uncacheable: without a canonical encoding of the data there
    is no sound cache key.
    """
    try:
        payload = plan.to_payload()
    except TypeError:
        return None
    return payload_digest(payload)


def state_digest(state: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over a ``state_dict``-shaped mapping of named arrays."""
    hasher = hashlib.sha256()
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        hasher.update(name.encode("utf-8"))
        hasher.update(str(array.dtype).encode("ascii"))
        hasher.update(repr(array.shape).encode("ascii"))
        hasher.update(array.tobytes())
    return hasher.hexdigest()
