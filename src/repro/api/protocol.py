"""The :class:`CompressionMethod` protocol and its :class:`CompressedModel` output.

Every compression technique in this repository — ALF and all five baselines
— is driven through the same three-phase lifecycle:

1. ``prepare(model)``   — attach to / rewrite the model (e.g. swap convs for
   ALF blocks).  Returns the working model.
2. ``fit(train, val, epochs)`` — the optional training phase (two-player
   training for ALF; pre-train → prune → fine-tune for the baselines).
3. ``finalize()``       — produce a :class:`CompressedModel`: the deployable
   model plus its effective cost and the per-layer workloads the hardware
   model consumes.

The pipeline (:mod:`repro.api.pipeline`) only ever talks to this interface,
which is what makes methods pluggable and sweeps batchable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from ..hardware.layer import ConvLayerShape
from ..nn.module import Module


@dataclass
class CompressedModel:
    """What a compression method hands back to the pipeline.

    Attributes
    ----------
    model:
        The runnable compressed model (for ALF: the deployed dense form).
    method:
        Registry key of the producing method.
    cost:
        Effective ``{"params", "macs", "ops"}`` under the method's own cost
        model (pruned channels removed, dictionary/sparse inference for
        LCNN, factorized inference for low-rank, ...).
    layer_shapes:
        Per-layer convolution workloads of the *compressed* execution, ready
        for :func:`repro.hardware.evaluate_layers`.
    remaining_filter_fraction:
        Fraction of filters (or their closest analogue) that survive.
    detail:
        Method-specific artifact: pruning plan, LCNN dictionaries, SVD
        factorizations, ALF deployment records, ...
    """

    model: Module
    method: str
    cost: Dict[str, float]
    layer_shapes: List[ConvLayerShape] = field(default_factory=list)
    remaining_filter_fraction: float = 1.0
    detail: Any = None


@runtime_checkable
class CompressionMethod(Protocol):
    """Structural interface implemented by every method adapter."""

    name: str
    policy: str

    def prepare(self, model: Module) -> Module:
        """Attach to ``model`` (rewriting it if needed); return the working model."""
        ...

    def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
        """Run the method's training phase; returns a history or ``None``."""
        ...

    def finalize(self) -> CompressedModel:
        """Produce the compressed model with its cost and hardware workloads."""
        ...
