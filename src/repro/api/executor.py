"""Sharded execution strategies for :func:`repro.api.run_sweep`.

Every :class:`~repro.api.spec.CompressionSpec` in a sweep runs on an
isolated deep copy of the model under its own backend / dtype / grad-mode
context, which makes specs embarrassingly parallel.  This module owns *how*
the shards run:

* :class:`SerialExecutor` — in-process loop (the reference semantics);
* :class:`ThreadExecutor` — a thread pool, overlapping shards whose time is
  dominated by GIL-releasing numpy kernels or blocking I/O;
* :class:`ProcessExecutor` — a process pool, sidestepping the GIL entirely
  (shards and their results travel by pickle).

Executors are registered by name exactly like ``repro.nn`` backends —
:func:`register_executor` / :func:`get_executor` — and selected per sweep
via ``run_sweep(..., executor="process")`` or process-wide via the
``REPRO_SWEEP_EXECUTOR`` environment variable.  Whatever the strategy,
shard results are collected **in task order**, so the merged sweep is
bit-identical to a serial run.

Engine-state hygiene is handled by :class:`EngineState`: the sweep parent
captures the active backend / dtype / grad mode once, every shard
re-applies it (worker threads and spawned processes do not inherit scoped
state), and on shard exit the op-hook list is restored — no shard can leak
execution state into its neighbours.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Type, Union

from ..nn.backend import ExecutionState, capture_execution_state
from ..nn.tensor import (
    grad_mode_override,
    installed_op_hooks,
    restore_op_hooks,
    set_grad_mode,
)

#: Environment variable naming the default sweep executor.
EXECUTOR_ENV_VAR = "REPRO_SWEEP_EXECUTOR"

ExecutorLike = Union[str, "SweepExecutor"]


# --------------------------------------------------------------------------- #
# Engine-state capture / restore
# --------------------------------------------------------------------------- #
@contextmanager
def op_hook_isolation():
    """Restore the op-hook list on exit, even when the body raises.

    A hook installed (or leaked through an exception) inside a sweep shard
    must never observe — or slow down — the specs that follow it.  The
    restore may fire while a ``profile_ops`` / ``collect_profile`` context
    opened inside the shard is still active; that context's own cleanup
    stays safe because :func:`repro.nn.remove_op_hook` is idempotent.
    """
    hooks = installed_op_hooks()
    try:
        yield
    finally:
        restore_op_hooks(hooks)


@dataclass(frozen=True)
class EngineState:
    """Everything a shard must re-apply to match the parent's engine context.

    Combines the backend / default-dtype snapshot
    (:class:`repro.nn.ExecutionState`) with the grad-mode override.  The
    whole snapshot is picklable, so it ships to process workers unchanged.
    """

    execution: ExecutionState
    grad_override: Optional[bool] = None

    @classmethod
    def capture(cls) -> "EngineState":
        return cls(execution=capture_execution_state(),
                   grad_override=grad_mode_override())

    @contextmanager
    def scope(self):
        """Run a shard under this state, guaranteeing restoration on exit.

        Re-applies the captured backend / dtype / grad mode (thread-locally,
        so concurrent shards cannot interfere) and isolates the op-hook
        list so a hook installed — or leaked via an exception — inside the
        shard is removed before the next shard runs.
        """
        with op_hook_isolation():
            with self.execution.scope(), set_grad_mode(self.grad_override):
                yield


# --------------------------------------------------------------------------- #
# Shard results
# --------------------------------------------------------------------------- #
@dataclass
class ShardResult:
    """Outcome of one shard: a value or the exception that killed it."""

    index: int
    value: Any = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _call_shard(fn: Callable[[Any], Any], index: int, task: Any) -> ShardResult:
    try:
        return ShardResult(index=index, value=fn(task))
    except Exception as exc:  # deliberate: shard failures are data, not control flow
        return ShardResult(index=index, error=exc)


# --------------------------------------------------------------------------- #
# Incremental submission (the session scheduler's view of an executor)
# --------------------------------------------------------------------------- #
class ShardPool:
    """One *open* executor instance accepting shard submissions over time.

    :meth:`SweepExecutor.open` returns one of these; a
    :class:`~repro.api.session.SweepSession` submits shards as specs arrive
    instead of handing the executor a closed batch.  ``submit`` returns a
    ``concurrent.futures.Future`` resolving to a :class:`ShardResult` — a
    shard failure is *data* on the result, never an exception out of the
    future (transport failures, e.g. an unpicklable task, are the
    exception-raising case the caller must still guard).
    """

    def submit(self, fn: Callable[[Any], Any], index: int,
               task: Any) -> "Future[ShardResult]":
        raise NotImplementedError

    def close(self, wait: bool = True) -> None:
        """Release the pool's workers (idempotent)."""

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _InlineShardPool(ShardPool):
    """Run every shard synchronously in the submitting thread.

    The default ``open`` surface for strategies that only implement the
    batch ``run`` (and for :class:`SerialExecutor`, where it is exactly the
    reference semantics): ``submit`` blocks until the shard finishes and
    returns an already-resolved future.
    """

    def submit(self, fn, index, task):
        future: "Future[ShardResult]" = Future()
        future.set_result(_call_shard(fn, index, task))
        return future


class _FuturesShardPool(ShardPool):
    """A :mod:`concurrent.futures` pool wrapped as a :class:`ShardPool`."""

    def __init__(self, pool: _FuturesExecutor):
        self._pool = pool
        self._closed = False

    def submit(self, fn, index, task):
        return self._pool.submit(_call_shard, fn, index, task)

    def close(self, wait: bool = True) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=wait)


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class SweepExecutor:
    """Strategy interface: map ``fn`` over tasks, results in task order.

    ``run`` never raises for a *shard* failure — each failure is returned
    as a :class:`ShardResult` carrying the exception, so the caller decides
    the policy (``run_sweep``'s ``on_error``).  ``fail_fast=True`` allows a
    strategy to stop scheduling new shards after the first failure (the
    serial executor honours it exactly; pools may run shards to completion).

    :meth:`open` is the incremental counterpart used by
    :class:`~repro.api.session.SweepSession`: it returns a
    :class:`ShardPool` accepting one submission at a time, so specs can be
    scheduled, retried and cancelled individually.  Strategies that do not
    override it fall back to inline (submit-runs-the-shard) execution.
    """

    name: str = "abstract"

    #: True for strategies that run every shard in the caller's thread and
    #: therefore inherit its ambient engine state; parallel strategies need
    #: a shippable :class:`EngineState` snapshot instead.
    inline: bool = False

    #: True for strategies whose shards travel as ``repro-job/1`` wire
    #: payloads (JSON dicts) instead of pickled live task objects; the
    #: session converts tasks to :class:`~repro.api.jobs.SweepJob`
    #: payloads before submitting to such a strategy.
    wire: bool = False

    def run(self, fn: Callable[[Any], Any], tasks: Sequence[Any],
            max_workers: Optional[int] = None,
            fail_fast: bool = False) -> List[ShardResult]:
        raise NotImplementedError

    def open(self, max_workers: Optional[int] = None) -> ShardPool:
        """An incremental-submission pool over this strategy."""
        return _InlineShardPool()

    def pool_capacity(self, max_workers: Optional[int]) -> int:
        """Worker capacity of an incremental pool (task count unknown).

        Shared by every pooled strategy so the validation and the default
        sizing rule (explicit cap, else the host's CPU count) cannot drift
        between transports.
        """
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        return max_workers if max_workers is not None else (os.cpu_count() or 1)

    def resolved_workers(self, num_tasks: int,
                         max_workers: Optional[int]) -> int:
        if max_workers is not None:
            if max_workers < 1:
                raise ValueError("max_workers must be at least 1")
            return min(max_workers, max(1, num_tasks))
        return min(max(1, num_tasks), os.cpu_count() or 1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SerialExecutor(SweepExecutor):
    """The reference strategy: one shard after another, in-process."""

    name = "serial"
    inline = True

    def run(self, fn, tasks, max_workers=None, fail_fast=False):
        results: List[ShardResult] = []
        for index, task in enumerate(tasks):
            result = _call_shard(fn, index, task)
            results.append(result)
            if fail_fast and not result.ok:
                break
        return results


class _PoolExecutor(SweepExecutor):
    """Shared submit/collect logic for the thread and process pools."""

    def _make_pool(self, workers: int) -> _FuturesExecutor:
        raise NotImplementedError

    def open(self, max_workers: Optional[int] = None) -> ShardPool:
        return _FuturesShardPool(self._make_pool(self.pool_capacity(max_workers)))

    def run(self, fn, tasks, max_workers=None, fail_fast=False):
        tasks = list(tasks)
        if not tasks:
            return []
        # A single worker still runs through the pool: executor="process"
        # must always mean real process isolation (pickled tasks, crash
        # containment), even on one-CPU hosts where the default worker
        # count resolves to 1.
        workers = self.resolved_workers(len(tasks), max_workers)
        results: List[ShardResult] = []
        with self._make_pool(workers) as pool:
            futures = [pool.submit(_call_shard, fn, index, task)
                       for index, task in enumerate(tasks)]
            # Collect in submission (= spec) order: the merge must not
            # depend on completion order.
            for future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:
                    # The pool failed to round-trip the shard itself (e.g.
                    # an unpicklable task); surface it as that shard's error.
                    results.append(ShardResult(index=len(results), error=exc))
        return results


class ThreadExecutor(_PoolExecutor):
    """Thread-pool shards: cheap fan-out, shared memory, GIL-bound compute."""

    name = "thread"

    def _make_pool(self, workers: int) -> _FuturesExecutor:
        return ThreadPoolExecutor(max_workers=workers,
                                  thread_name_prefix="repro-sweep")


class ProcessExecutor(_PoolExecutor):
    """Process-pool shards: true parallelism; tasks/results travel by pickle.

    Uses the ``fork`` start method where available (Linux): workers inherit
    the parent's imported modules and registries (methods, backends,
    executors) without re-importing, and custom registrations made before
    the sweep are visible to every shard.
    """

    name = "process"

    def _make_pool(self, workers: int) -> _FuturesExecutor:
        import multiprocessing as mp

        if "fork" in mp.get_all_start_methods():
            return ProcessPoolExecutor(max_workers=workers,
                                       mp_context=mp.get_context("fork"))
        return ProcessPoolExecutor(max_workers=workers)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_EXECUTORS: Dict[str, Type[SweepExecutor]] = {}


def register_executor(name: str, executor_type: Type[SweepExecutor],
                      overwrite: bool = False) -> None:
    """Register an executor strategy under ``name`` (lower-cased)."""
    key = name.lower()
    if key in _EXECUTORS and not overwrite:
        raise ValueError(f"executor '{name}' is already registered")
    _EXECUTORS[key] = executor_type


def available_executors() -> List[str]:
    return sorted(_EXECUTORS)


def get_executor(executor: ExecutorLike) -> SweepExecutor:
    """Resolve an executor by name, or pass an instance through."""
    if isinstance(executor, SweepExecutor):
        return executor
    key = str(executor).lower()
    if key not in _EXECUTORS:
        raise KeyError(
            f"unknown executor '{executor}'; choose from {available_executors()}")
    return _EXECUTORS[key]()


def resolve_executor(executor: Optional[ExecutorLike] = None) -> SweepExecutor:
    """The executor a sweep should use.

    Priority: an explicit ``executor`` argument, then the
    ``REPRO_SWEEP_EXECUTOR`` environment variable, then serial.  An unknown
    name in the environment variable raises a ``ValueError`` naming the
    variable and the registered strategies — a typo'd deployment
    environment must fail loudly at resolve time, not surface as an opaque
    ``KeyError`` deep inside the first sweep.
    """
    if executor is not None:
        return get_executor(executor)
    env = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    if env:
        try:
            return get_executor(env)
        except KeyError:
            raise ValueError(
                f"invalid {EXECUTOR_ENV_VAR} value {env!r}: expected one of "
                f"{available_executors()}") from None
    return SerialExecutor()


register_executor("serial", SerialExecutor)
register_executor("thread", ThreadExecutor)
register_executor("process", ProcessExecutor)
