"""The :class:`CompressionPipeline` façade and its :class:`CompressionReport`.

``repro.api.compress(model, method="alf", data=..., hardware=EYERISS_PAPER)``
is the one call that replaces the per-method glue previously re-implemented
by every experiment: it profiles the dense baseline, drives the method
through prepare → fit → finalize, measures accuracy when data is available,
runs the Eyeriss hardware model on both executions, and returns everything
as a single report.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..data import DataLoader, SyntheticImageDataset
from ..hardware import EYERISS_PAPER, EyerissSpec, NetworkReport, evaluate_layers
from ..hardware.layer import conv_shapes_from_model
from ..metrics.compression import MethodResult
from ..metrics.ops import ModelProfile, profile_model
from ..metrics.tables import format_count, format_reduction, render_table
from ..models import build_model, default_input_shape
from ..nn.backend import get_default_dtype, use_backend
from ..nn.module import Module
from ..nn.profiler import RunProfile, collect_profile, profile_inference
from .adapters import evaluate_accuracy
from .protocol import CompressedModel, CompressionMethod
from .registry import create_method, get_method
from .spec import CompressionSpec

LoaderPair = Tuple[DataLoader, Optional[DataLoader]]
DataArg = Union[None, SyntheticImageDataset, DataLoader, Tuple]

#: Wire-format identifier of :meth:`CompressionReport.to_dict` payloads.
REPORT_SCHEMA = "repro-report/1"


@dataclass
class HardwareTotals:
    """Legacy wire-format stand-in for a :class:`NetworkReport`.

    Early ``repro-report/1`` payloads carried only the network-level
    energy / latency totals; reports rebuilt from such payloads get this
    stand-in, which supports exactly the reduction / table computations.
    Current payloads ship the full per-layer breakdown and rebuild a real
    :class:`NetworkReport` (see :func:`_hardware_report_from_dict`), so
    cached replays and remote results keep the Fig. 3 style per-layer
    energy / latency views.
    """

    total_energy: float
    total_latency: float


def _hardware_report_to_dict(report) -> Optional[Dict[str, Any]]:
    if report is None:
        return None
    payload: Dict[str, Any] = {"total_energy": float(report.total_energy),
                               "total_latency": float(report.total_latency)}
    if isinstance(report, NetworkReport):
        payload.update(report.to_dict())
    return payload


def _hardware_report_from_dict(payload: Optional[Dict[str, Any]]):
    if payload is None:
        return None
    if "layers" not in payload:  # legacy totals-only payload
        return HardwareTotals(total_energy=float(payload["total_energy"]),
                              total_latency=float(payload["total_latency"]))
    return NetworkReport.from_dict(payload)


@dataclass
class DenseBaseline:
    """Profile + hardware evaluation of the uncompressed reference model.

    Computed once per model and shared across an entire sweep, so batching
    many methods does not re-profile (or re-map on the accelerator) the same
    dense network per method.
    """

    profile: ModelProfile
    cost: Dict[str, float]
    hardware: Optional[NetworkReport] = None
    accuracy: Optional[float] = None

    # -- wire format ---------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """Table-level JSON-safe form (the layer profile does not travel)."""
        return {
            "cost": {k: float(v) for k, v in self.cost.items()},
            "accuracy": None if self.accuracy is None else float(self.accuracy),
            "hardware": _hardware_report_to_dict(self.hardware),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DenseBaseline":
        return cls(
            profile=None,  # type: ignore[arg-type]  # dropped by the wire format
            cost=dict(payload["cost"]),
            hardware=_hardware_report_from_dict(payload.get("hardware")),
            accuracy=payload.get("accuracy"),
        )


@dataclass
class CompressionReport:
    """Everything one compression run produced, in one place.

    Combines the dense baseline profile, the method's effective cost
    (:mod:`repro.metrics`), the measured accuracy, and the Eyeriss
    energy/latency evaluation (:mod:`repro.hardware`) of both executions.
    """

    method: str
    policy: str
    spec: CompressionSpec
    dense: DenseBaseline
    compressed: CompressedModel
    accuracy: Optional[float] = None
    history: Any = None
    dense_hardware: Optional[NetworkReport] = None
    compressed_hardware: Optional[NetworkReport] = None
    #: Layer-scoped op profile of the run (``spec.profile=True``):
    #: dense / train / eval phases, each with per-op and per-layer
    #: call counts and wall-clock.
    profile: Optional[RunProfile] = None

    # -- cost ----------------------------------------------------------- #
    @property
    def cost(self) -> Dict[str, float]:
        return self.compressed.cost

    @property
    def dense_profile(self) -> ModelProfile:
        return self.dense.profile

    @property
    def params_reduction(self) -> float:
        return 1.0 - self.cost["params"] / self.dense.cost["params"]

    @property
    def ops_reduction(self) -> float:
        return 1.0 - self.cost["ops"] / self.dense.cost["ops"]

    @property
    def remaining_filter_fraction(self) -> float:
        return self.compressed.remaining_filter_fraction

    @property
    def model(self) -> Module:
        """The runnable compressed model."""
        return self.compressed.model

    # -- hardware ------------------------------------------------------- #
    @property
    def energy_reduction(self) -> Optional[float]:
        if self.dense_hardware is None or self.compressed_hardware is None:
            return None
        return 1.0 - self.compressed_hardware.total_energy / self.dense_hardware.total_energy

    @property
    def latency_reduction(self) -> Optional[float]:
        if self.dense_hardware is None or self.compressed_hardware is None:
            return None
        return 1.0 - self.compressed_hardware.total_latency / self.dense_hardware.total_latency

    # -- deployment ----------------------------------------------------- #
    def plan(self, *, batch: Optional[int] = None,
             memory_budget: Optional[int] = None, fold_bn: bool = False,
             elide_dead: bool = True, backend=None, cache=None):
        """Compile the compressed model into a static inference plan.

        Delegates to :func:`repro.api.compile_report`: the spec's input
        shape, hardware batch and backend / dtype scope become the plan's
        compile-time geometry unless overridden here.  ``cache=`` accepts
        the session cache knob and serves / stores the serialized plan
        through the content-addressed store.
        """
        from .plan import compile_report
        return compile_report(self, batch=batch, memory_budget=memory_budget,
                              fold_bn=fold_bn, elide_dead=elide_dead,
                              backend=backend, cache=cache)

    # -- views ---------------------------------------------------------- #
    def as_method_result(self) -> MethodResult:
        return MethodResult(
            method=self.spec.display_label,
            policy=self.policy,
            params=self.cost["params"],
            ops=self.cost["ops"],
            accuracy=(self.accuracy or 0.0) * 100,
        )

    def summary(self) -> Dict[str, Optional[float]]:
        out: Dict[str, Optional[float]] = {
            "method": self.method,
            "dense_params": self.dense.cost["params"],
            "dense_ops": self.dense.cost["ops"],
            "params": self.cost["params"],
            "ops": self.cost["ops"],
            "params_reduction": self.params_reduction,
            "ops_reduction": self.ops_reduction,
            "remaining_filter_fraction": self.remaining_filter_fraction,
            "accuracy": self.accuracy,
        }
        if self.dense_hardware is not None and self.compressed_hardware is not None:
            out.update({
                "dense_energy": self.dense_hardware.total_energy,
                "energy": self.compressed_hardware.total_energy,
                "energy_reduction": self.energy_reduction,
                "dense_latency": self.dense_hardware.total_latency,
                "latency": self.compressed_hardware.total_latency,
                "latency_reduction": self.latency_reduction,
            })
        return out

    # -- wire format ---------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict carrying every *table-level* quantity.

        This is the guaranteed wire format for process shards, remote
        workers and the result cache: spec, costs, accuracy,
        remaining-filter fraction, per-layer hardware workloads, the full
        per-layer energy / latency breakdowns and the layer-scoped op
        profile (when ``spec.profile`` was set) all round-trip through
        :meth:`from_dict`.  The live model, the training history and the
        mapper's tiling internals are intentionally dropped — ship the
        pickle form when those must travel too.
        """
        from dataclasses import asdict

        return {
            "schema": REPORT_SCHEMA,
            "method": self.method,
            "policy": self.policy,
            "spec": self.spec.to_dict(),
            "dense": self.dense.to_dict(),
            "cost": {k: float(v) for k, v in self.compressed.cost.items()},
            "remaining_filter_fraction":
                float(self.compressed.remaining_filter_fraction),
            "layer_shapes": [
                {**asdict(shape), "input_hw": list(shape.input_hw)}
                for shape in self.compressed.layer_shapes
            ],
            "accuracy": None if self.accuracy is None else float(self.accuracy),
            "dense_hardware": _hardware_report_to_dict(self.dense_hardware),
            "compressed_hardware":
                _hardware_report_to_dict(self.compressed_hardware),
            "profile": None if self.profile is None else self.profile.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CompressionReport":
        """Rebuild a (model-free) report from :meth:`to_dict` output."""
        from ..hardware.layer import ConvLayerShape

        schema = payload.get("schema")
        if schema != REPORT_SCHEMA:
            raise ValueError(
                f"unsupported report schema {schema!r}: expected "
                f"'{REPORT_SCHEMA}'")
        spec = CompressionSpec.from_dict(payload["spec"])
        compressed = CompressedModel(
            model=None,  # type: ignore[arg-type]  # dropped by the wire format
            method=payload["method"],
            cost=dict(payload["cost"]),
            layer_shapes=[
                ConvLayerShape(**{**shape, "input_hw": tuple(shape["input_hw"])})
                for shape in payload.get("layer_shapes", [])
            ],
            remaining_filter_fraction=payload["remaining_filter_fraction"],
        )
        return cls(
            method=payload["method"],
            policy=payload["policy"],
            spec=spec,
            dense=DenseBaseline.from_dict(payload["dense"]),
            compressed=compressed,
            accuracy=payload.get("accuracy"),
            dense_hardware=_hardware_report_from_dict(
                payload.get("dense_hardware")),
            compressed_hardware=_hardware_report_from_dict(
                payload.get("compressed_hardware")),
            profile=(None if payload.get("profile") is None
                     else RunProfile.from_dict(payload["profile"])),
        )

    def render(self) -> str:
        rows = [
            ["Params", format_count(self.dense.cost["params"]),
             format_count(self.cost["params"]),
             format_reduction(self.params_reduction, decimals=1)],
            ["OPs", format_count(self.dense.cost["ops"]),
             format_count(self.cost["ops"]),
             format_reduction(self.ops_reduction, decimals=1)],
        ]
        if self.dense_hardware is not None and self.compressed_hardware is not None:
            rows.append(["Energy", f"{self.dense_hardware.total_energy:.3e}",
                         f"{self.compressed_hardware.total_energy:.3e}",
                         format_reduction(self.energy_reduction, decimals=1)])
            rows.append(["Latency", f"{self.dense_hardware.total_latency:.3e}",
                         f"{self.compressed_hardware.total_latency:.3e}",
                         format_reduction(self.latency_reduction, decimals=1)])
        if self.accuracy is not None:
            rows.append(["Accuracy", "—", f"{self.accuracy * 100:.1f}%", ""])
        return render_table(
            ["Metric", "Dense", self.spec.display_label, "Reduction"], rows,
            title=f"Compression report — {self.spec.display_label} ({self.policy})")


def resolve_loaders(data: DataArg, seed: int = 0,
                    batch_size: int = 32) -> Optional[LoaderPair]:
    """Normalize the ``data`` argument into ``(train_loader, val_loader)``.

    Accepts ``None``, a dataset (split 80/20), a single training loader, or
    a ``(train, val)`` tuple.
    """
    if data is None:
        return None
    if isinstance(data, SyntheticImageDataset):
        train, val = data.split(0.8)
        return (DataLoader(train, batch_size=batch_size, shuffle=True, seed=seed),
                DataLoader(val, batch_size=max(64, batch_size)))
    if isinstance(data, DataLoader):
        return (data, None)
    if isinstance(data, tuple) and len(data) == 2:
        return data  # type: ignore[return-value]
    raise TypeError(
        "data must be None, a SyntheticImageDataset, a DataLoader, or a "
        "(train_loader, val_loader) tuple")


@contextmanager
def _profiled_phase(run_profile: Optional[RunProfile], phase: str):
    """Collect the body's ops into ``run_profile.<phase>`` (no-op when off)."""
    if run_profile is None:
        yield
        return
    with collect_profile() as profile:
        yield
    setattr(run_profile, phase, profile)


class CompressionPipeline:
    """Strategy-based pipeline: resolve → profile → fit → finalize → report."""

    def __init__(self, spec: CompressionSpec,
                 hardware: Optional[EyerissSpec] = EYERISS_PAPER):
        self.spec = spec.validate()
        self.hardware = hardware

    def execution_context(self):
        """The backend / dtype scope every pipeline stage runs under."""
        return use_backend(self.spec.backend, dtype=self.spec.dtype)

    # -- stage: model / geometry resolution ----------------------------- #
    def resolve_model(self, model: Union[None, str, Module] = None
                      ) -> Tuple[Module, Tuple[int, int, int]]:
        """Build (or accept) the dense model and settle the input geometry."""
        target = model if model is not None else self.spec.model
        if target is None:
            raise ValueError("no model given: pass one to run() or set spec.model")
        if isinstance(target, str):
            built = build_model(target, rng=np.random.default_rng(self.spec.seed))
            shape = self.spec.input_shape or default_input_shape(target)
            return built, tuple(shape)
        if self.spec.input_shape is None:
            raise ValueError(
                "input_shape is required when passing a built model instance")
        return target, tuple(self.spec.input_shape)

    # -- stage: dense baseline ------------------------------------------ #
    def dense_baseline(self, model: Module,
                       input_shape: Tuple[int, int, int]) -> DenseBaseline:
        with self.execution_context():
            return self._dense_baseline(model, input_shape)

    def _dense_baseline(self, model: Module,
                        input_shape: Tuple[int, int, int]) -> DenseBaseline:
        profile = profile_model(model, input_shape)
        conv_only = self.spec.conv_only
        cost = {
            "params": float(profile.total_params(conv_only=conv_only)),
            "macs": float(profile.total_macs(conv_only=conv_only)),
            "ops": float(profile.total_ops(conv_only=conv_only)),
        }
        hardware_report = None
        if self.hardware is not None:
            shapes = conv_shapes_from_model(
                model, input_shape, batch=self.spec.hardware_batch,
                names=self.spec.layer_names, profile=profile)
            hardware_report = evaluate_layers(shapes, spec=self.hardware,
                                              name="dense")
        return DenseBaseline(profile=profile, cost=cost, hardware=hardware_report)

    # -- full run -------------------------------------------------------- #
    def run(self, model: Union[None, str, Module] = None, data: DataArg = None,
            dense: Optional[DenseBaseline] = None,
            inplace: bool = False,
            warm_start: Optional[Dict[str, np.ndarray]] = None
            ) -> CompressionReport:
        """Execute every pipeline stage and return the combined report.

        ``dense`` accepts a precomputed :class:`DenseBaseline` (sweep
        caching).  With ``inplace=False`` (default) the caller's model is
        never mutated — the method works on a deep copy.

        ``warm_start`` accepts a cached ``state_dict``-shaped mapping of a
        previously finalized compressed model (the report cache's
        checkpoint store): when the method supports warm starts and the
        state matches the prepared model exactly, fine-tuning is seeded
        from it instead of training from dense.  A mismatching state is
        ignored — the run silently falls back to the cold path.

        Every stage runs under the spec's execution context
        (``spec.backend`` / ``spec.dtype``): models are built or cast to
        the context dtype, loaders emit batches in it, and the accuracy
        probes run tape-free under :func:`~repro.nn.tensor.no_grad`.
        """
        with self.execution_context():
            return self._run(model=model, data=data, dense=dense,
                             inplace=inplace, warm_start=warm_start)

    def _run(self, model: Union[None, str, Module] = None, data: DataArg = None,
             dense: Optional[DenseBaseline] = None,
             inplace: bool = False,
             warm_start: Optional[Dict[str, np.ndarray]] = None
             ) -> CompressionReport:
        resolved, input_shape = self.resolve_model(model)
        spec = self.spec.with_overrides(input_shape=input_shape)
        run_profile = RunProfile() if spec.profile else None

        if dense is None:
            # The dense phase is profiled only when this pipeline computes
            # the baseline itself; sweep shards receive a precomputed one.
            with _profiled_phase(run_profile, "dense"):
                dense = self._dense_baseline(resolved, input_shape)

        source = model if model is not None else spec.model
        # A model resolved from a registry name is freshly built and private
        # to this run; a caller-provided instance is protected by a deep copy.
        work = (resolved if inplace or isinstance(source, str)
                else copy.deepcopy(resolved))
        if spec.dtype is not None or spec.backend is not None:
            # Caller-provided models may predate the execution context;
            # align them with the context's dtype before compressing.
            work.astype(get_default_dtype())
        method: CompressionMethod = create_method(spec)
        work = method.prepare(work)
        if warm_start is not None:
            # Methods opt in by exposing warm_start(state) -> bool (every
            # built-in adapter does); anything else ignores the seed.
            seed_from = getattr(method, "warm_start", None)
            if seed_from is not None:
                seed_from(warm_start)

        loaders = resolve_loaders(data, seed=spec.seed)
        history = None
        with _profiled_phase(run_profile, "train"):
            if loaders is not None and spec.epochs > 0:
                history = method.fit(loaders[0], loaders[1], epochs=spec.epochs)
            else:
                method.fit(None, None, epochs=0)

        compressed = method.finalize()

        accuracy = None
        if loaders is not None and loaders[1] is not None:
            # evaluate_accuracy runs under no_grad: the probe is tape-free
            # (asserted by the regression tests in tests/test_engine.py).
            with _profiled_phase(run_profile, "eval"):
                accuracy = evaluate_accuracy(compressed.model, loaders[1])
        elif run_profile is not None:
            # Cost-only runs have no probe to observe; profile one synthetic
            # inference batch instead so the report still carries measured
            # per-layer wall-clock at the hardware batch size.
            run_profile.eval = profile_inference(
                compressed.model, input_shape, batch=spec.hardware_batch)

        compressed_hardware = None
        if self.hardware is not None and compressed.layer_shapes:
            compressed_hardware = evaluate_layers(
                compressed.layer_shapes, spec=self.hardware,
                name=spec.display_label)

        entry = get_method(spec.method)
        return CompressionReport(
            method=entry.name,
            policy=entry.policy,
            spec=spec,
            dense=dense,
            compressed=compressed,
            accuracy=accuracy,
            history=history,
            dense_hardware=dense.hardware,
            compressed_hardware=compressed_hardware,
            profile=run_profile,
        )


def compress(model: Union[str, Module], method: str = "alf", *,
             config: Any = None, data: DataArg = None,
             hardware: Optional[EyerissSpec] = EYERISS_PAPER,
             input_shape: Optional[Tuple[int, int, int]] = None,
             epochs: int = 0, finetune_epochs: Optional[int] = None,
             lr: float = 0.05, conv_only: bool = True, hardware_batch: int = 16,
             layer_names: Optional[Sequence[str]] = None,
             dtype: Optional[str] = None, backend: Optional[str] = None,
             profile: bool = False,
             seed: int = 0, label: Optional[str] = None,
             inplace: bool = False) -> CompressionReport:
    """Compress ``model`` with a registered method and report everything.

    The single-call façade over the whole pipeline::

        report = repro.api.compress(model, method="alf", data=dataset,
                                    hardware=EYERISS_PAPER, epochs=10)
        report.params_reduction, report.energy_reduction, report.accuracy

    ``model`` is a registry name (``"resnet20"``) or a built module (then
    ``input_shape`` is required).  ``hardware=None`` skips the Eyeriss
    stage; ``epochs=0`` skips training (cost-only evaluation).
    ``dtype="float32"`` (or ``backend="numpy32"``) runs the whole pipeline
    on the float32 fast path.  ``profile=True`` collects a layer-scoped op
    profile (dense / train / eval phases) on ``report.profile``.
    """
    spec = CompressionSpec(
        method=method, config=config, input_shape=input_shape, epochs=epochs,
        finetune_epochs=finetune_epochs, lr=lr, conv_only=conv_only,
        hardware_batch=hardware_batch, layer_names=layer_names,
        dtype=dtype, backend=backend, profile=profile, seed=seed, label=label,
    )
    return CompressionPipeline(spec, hardware=hardware).run(
        model=model, data=data, inplace=inplace)
