"""``repro.api`` — the unified compression pipeline.

One façade over ALF, every baseline, and the hardware model::

    import repro.api as api

    report = api.compress("resnet20", method="alf",
                          hardware=api.EYERISS_PAPER)
    report.params_reduction, report.ops_reduction
    report.energy_reduction, report.latency_reduction

    sweep = api.run_sweep()          # the full Table II method set
    print(sweep.render())

Public surface
--------------
:func:`compress`
    One call: profile dense baseline → prepare/fit/finalize the method →
    measure accuracy → evaluate on the Eyeriss model → return a
    :class:`CompressionReport`.
:func:`run_sweep`
    Batch runner over many :class:`CompressionSpec`, with the model,
    loaders, dense profile and dense hardware evaluation shared.  Shards
    across workers via ``executor="thread"`` / ``"process"`` /
    ``"remote"`` (or the ``REPRO_SWEEP_EXECUTOR`` environment variable)
    with a deterministic, spec-ordered merge; ``on_error="skip"`` keeps
    healthy shards when a spec raises.  A thin façade over
    :class:`SweepSession`.
:class:`SweepSession` / :class:`SweepFuture` / :class:`RetryPolicy`
    Streaming submission: ``submit(spec)`` / ``submit_all(specs)`` return
    futures (``result`` / ``done`` / ``cancel``, completion callbacks),
    the session adds progress callbacks and ``as_completed()`` iteration,
    and per-spec retry/timeout policy is enforced by the session
    scheduler.
:class:`SweepJob` / :class:`RemoteExecutor`
    The versioned ``repro-job/1`` wire protocol (spec payload + model
    registry name + seed + digest-guarded dense baseline — never live
    modules) and its reference transport: worker subprocesses speaking
    JSON over stdio (``python -m repro.api.worker``).
:class:`SweepExecutor` / :func:`register_executor` / :func:`available_executors`
    The string-keyed executor registry (``"serial"``, ``"thread"``,
    ``"process"``, ``"remote"``).
:class:`CompressionMethod` / :class:`CompressedModel`
    The protocol every method adapter implements, and its output.
:func:`available_methods` / :func:`get_method` / :func:`register_method`
    The string-keyed method registry (``"alf"``, ``"magnitude"``,
    ``"fpgm"``, ``"amc"``, ``"lcnn"``, ``"lowrank"``).
:class:`ReportCache` / :class:`FileReportCache` / :class:`MemoryReportCache`
    The content-addressed result cache + checkpoint store
    (``repro-cache-entry/1``): sessions consult it through the ``cache=``
    policy knob (``"off"`` / ``"read"`` / ``"write"`` / ``"readwrite"``),
    replay stored reports bit-identically, and warm-start near-miss
    fine-tuning from the nearest stored checkpoint.  Keys combine
    :meth:`CompressionSpec.digest`, :func:`model_digest` and
    :func:`data_digest`; maintenance via ``python -m repro.api.cache``.
:class:`RunProfile` / :class:`OpProfile`
    Layer-scoped op profiling: ``compress(..., profile=True)`` (or
    ``CompressionSpec(profile=True)`` in a sweep) attaches per-op /
    per-layer call counts and wall-clock — split into dense / train /
    eval phases — to ``report.profile``;
    ``SweepResult.combined_profile()`` folds a profiled sweep into one
    profile.
"""

from ..hardware import EYERISS_PAPER, EyerissSpec
from ..nn.profiler import OpProfile, OpStat, RunProfile
from . import adapters as _adapters  # noqa: F401  (populates the registry)
from .adapters import (
    ALFMethod,
    AMCMethod,
    CompressionAdapter,
    FPGMMethod,
    LCNNMethod,
    LowRankMethod,
    MagnitudeMethod,
    evaluate_accuracy,
    pruned_conv_shapes,
)
from .cache import (
    CACHE_ENTRY_SCHEMA,
    CACHE_ENV_VAR,
    CACHE_POLICIES,
    CacheIntegrityWarning,
    CacheKey,
    CacheStats,
    FileReportCache,
    MemoryReportCache,
    ReportCache,
    WarmStart,
    cache_key,
    default_cache,
    default_cache_dir,
    resolve_cache,
    spec_distance,
)
from .digests import (
    canonical_json,
    data_digest,
    model_digest,
    payload_digest,
    state_digest,
)
from .executor import (
    EXECUTOR_ENV_VAR,
    EngineState,
    ProcessExecutor,
    SerialExecutor,
    ShardPool,
    ShardResult,
    SweepExecutor,
    ThreadExecutor,
    available_executors,
    get_executor,
    register_executor,
    resolve_executor,
)
from .jobs import (
    JOB_RESULT_SCHEMA,
    JOB_SCHEMA,
    LoaderPlan,
    RemoteExecutor,
    RemoteJobError,
    RemoteWorkerError,
    SweepJob,
    execute_job,
    execute_plan_job,
    plan_job_payload,
    run_plan_remote,
    worker_main,
)
from .session import (
    RetryPolicy,
    SessionEvent,
    ShardTask,
    SweepCancelledError,
    SweepFuture,
    SweepSession,
    SweepTimeoutError,
    execute_shard,
    print_progress,
)
from .pipeline import (
    CompressionPipeline,
    CompressionReport,
    DenseBaseline,
    compress,
    resolve_loaders,
)
from .plan import PLAN_ADDRESS_KIND, compile_report, plan_address
from .protocol import CompressedModel, CompressionMethod
from .registry import (
    MethodEntry,
    available_methods,
    canonical_name,
    create_method,
    get_method,
    method_entries,
    register_method,
    unregister_method,
)
from .spec import (
    ALFSpec,
    AMCSpec,
    CompressionSpec,
    FPGMSpec,
    LCNNSpec,
    LowRankSpec,
    MagnitudeSpec,
)
from .sweep import (
    ALF_TABLE2_STAGE_REMAINING,
    FAILURE_SCHEMA,
    SweepFailure,
    SweepResult,
    run_sweep,
    table2_specs,
)

__all__ = [
    # façade
    "compress", "run_sweep", "CompressionPipeline", "CompressionReport",
    "SweepResult", "SweepFailure", "DenseBaseline", "table2_specs",
    "resolve_loaders", "compile_report", "plan_address", "PLAN_ADDRESS_KIND",
    # sessions
    "SweepSession", "SweepFuture", "RetryPolicy", "SessionEvent",
    "SweepTimeoutError", "SweepCancelledError", "ShardTask",
    "execute_shard", "print_progress",
    # wire protocol / remote workers
    "SweepJob", "RemoteExecutor", "RemoteJobError", "RemoteWorkerError",
    "LoaderPlan", "execute_job", "worker_main",
    "plan_job_payload", "execute_plan_job", "run_plan_remote",
    "JOB_SCHEMA", "JOB_RESULT_SCHEMA", "FAILURE_SCHEMA",
    # result cache + digests
    "ReportCache", "FileReportCache", "MemoryReportCache", "CacheKey",
    "CacheStats", "WarmStart", "CacheIntegrityWarning", "cache_key",
    "default_cache", "default_cache_dir", "resolve_cache", "spec_distance",
    "CACHE_ENTRY_SCHEMA", "CACHE_ENV_VAR", "CACHE_POLICIES",
    "canonical_json", "payload_digest", "model_digest", "data_digest",
    "state_digest",
    # executors
    "SweepExecutor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "ShardPool", "ShardResult", "EngineState", "register_executor",
    "get_executor", "available_executors", "resolve_executor",
    "EXECUTOR_ENV_VAR",
    # protocol
    "CompressionMethod", "CompressedModel", "CompressionAdapter",
    # registry
    "register_method", "unregister_method", "get_method", "available_methods",
    "create_method", "method_entries", "canonical_name", "MethodEntry",
    # specs
    "CompressionSpec", "ALFSpec", "MagnitudeSpec", "FPGMSpec", "AMCSpec",
    "LCNNSpec", "LowRankSpec",
    # adapters
    "ALFMethod", "MagnitudeMethod", "FPGMMethod", "AMCMethod", "LCNNMethod",
    "LowRankMethod", "evaluate_accuracy", "pruned_conv_shapes",
    # profiling passthrough (reports carry these on .profile)
    "OpProfile", "OpStat", "RunProfile",
    # hardware passthrough
    "EYERISS_PAPER", "EyerissSpec",
    # constants
    "ALF_TABLE2_STAGE_REMAINING",
]
