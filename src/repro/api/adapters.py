"""Adapters wrapping ALF and every baseline behind :class:`CompressionMethod`.

Each adapter translates one method's bespoke calling convention
(``convert_to_alf`` + ``ALFTrainer`` + ``compress_model``;
``FPGMPruner.plan`` + ``apply_filter_masks``; ``LCNNCompressor.compress``;
``LowRankDecomposer.decompose``; ...) into the uniform
prepare → fit → finalize lifecycle, including the method's own effective
cost model and the per-layer workloads the Eyeriss model consumes.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines import (
    AMCPruner,
    FPGMPruner,
    MagnitudePruner,
    LCNNCompressor,
    LowRankDecomposer,
    PruningPlan,
    apply_filter_masks,
    effective_cost,
)
from ..core import ALFConfig, ALFTrainer, ClassifierTrainer, compress_model, convert_to_alf
from ..core.trainer import evaluate_accuracy
from ..hardware.layer import ConvLayerShape, conv_shapes_from_model
from ..metrics.ops import profile_model
from ..nn.module import Module
from .protocol import CompressedModel
from .registry import register_method
from .spec import (
    ALFSpec,
    AMCSpec,
    CompressionSpec,
    FPGMSpec,
    LCNNSpec,
    LowRankSpec,
    MagnitudeSpec,
)


def pruned_conv_shapes(model: Module, plan: PruningPlan,
                       input_shape: Tuple[int, int, int],
                       batch: int = 1, profile=None) -> List[ConvLayerShape]:
    """Conv workloads of a structurally pruned model.

    Mirrors :func:`repro.baselines.effective_cost`: pruned output filters
    shrink the layer's output channels, and the following layer loses the
    corresponding input channels.
    """
    shapes = conv_shapes_from_model(model, input_shape, batch=batch,
                                    profile=profile)
    decisions = {d.name: d for d in plan.decisions}
    out: List[ConvLayerShape] = []
    previous_survival = 1.0
    for shape in shapes:
        decision = decisions.get(shape.name)
        out_fraction = (decision.num_kept / decision.total_filters
                        if decision is not None else 1.0)
        out.append(replace(
            shape,
            in_channels=max(1, int(round(shape.in_channels * previous_survival))),
            out_channels=max(1, int(round(shape.out_channels * out_fraction))),
        ).validate())
        previous_survival = out_fraction
    return out


def _load_matching_state(model: Module, state) -> bool:
    """Load a checkpoint into ``model`` iff it matches *exactly*.

    Stricter than :meth:`Module.load_state_dict` (which skips unknown and
    missing keys): the checkpoint's parameter names must equal the model's
    and every shape must agree, otherwise nothing is touched and ``False``
    is returned.  A warm start seeded from a partially-matching checkpoint
    would silently mix trained and untrained layers — worse than the cold
    path it replaces.  Buffers (e.g. BatchNorm statistics) load when
    present.  Arrays are cast to each parameter's dtype so a checkpoint
    never changes the run's compute dtype.
    """
    params = dict(model.named_parameters())
    state_params = {key for key in state if not key.startswith("buffer:")}
    if state_params != set(params):
        return False
    for name, param in params.items():
        if tuple(param.data.shape) != tuple(np.shape(state[name])):
            return False
    for name, param in params.items():
        param.data = np.asarray(state[name], dtype=param.data.dtype).copy()
    for name, buf in model.named_buffers():
        key = f"buffer:{name}"
        if key in state and tuple(buf.shape) == tuple(np.shape(state[key])):
            buf[...] = state[key]
    return True


class CompressionAdapter:
    """Shared state management for the concrete adapters."""

    name = "base"
    policy = "—"

    def __init__(self, config, spec: CompressionSpec):
        self.config = config
        self.spec = spec
        self.model: Optional[Module] = None
        self.history = None
        #: True once a cached checkpoint seeded the prepared model; the
        #: concrete adapters use it to skip the from-dense (pre-)training
        #: the checkpoint already paid for.
        self.warm = False

    # -- CompressionMethod interface ----------------------------------- #
    def prepare(self, model: Module) -> Module:
        self.model = model
        return model

    def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
        return None

    def warm_start(self, state) -> bool:
        """Seed the prepared model from a cached checkpoint, strictly.

        Returns ``True`` (and flags the run as warm) only when the state
        matches the prepared model exactly — a checkpoint taken from a
        differently-shaped finalization (e.g. a deployed ALF model against
        a freshly-converted one) is rejected and the run stays cold.
        """
        if _load_matching_state(self._require_model(), state):
            self.warm = True
        return self.warm

    def finalize(self) -> CompressedModel:
        raise NotImplementedError

    # -- helpers -------------------------------------------------------- #
    @property
    def input_shape(self) -> Tuple[int, int, int]:
        if self.spec.input_shape is None:
            raise ValueError(
                "input_shape is unresolved; run the adapter through "
                "CompressionPipeline or set CompressionSpec.input_shape")
        return tuple(self.spec.input_shape)

    def _require_model(self) -> Module:
        if self.model is None:
            raise RuntimeError(f"{type(self).__name__}.prepare() was not called")
        return self.model


# --------------------------------------------------------------------------- #
# ALF
# --------------------------------------------------------------------------- #
@register_method("alf", ALFSpec, policy="Automatic",
                 summary="Autoencoder-based low-rank filter sharing (this paper)")
class ALFMethod(CompressionAdapter):
    """The paper's method: ALF blocks + two-player training + deployment."""

    def __init__(self, config: ALFSpec, spec: CompressionSpec):
        super().__init__(config, spec)
        self.blocks = []
        self.trainer: Optional[ALFTrainer] = None
        self._trained = False

    def prepare(self, model: Module) -> Module:
        self.model = model
        self.blocks = convert_to_alf(
            model, self.config.alf, rng=np.random.default_rng(self.spec.seed + 1))
        return model

    def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
        if train_loader is None or epochs <= 0:
            return None
        if self.warm:
            # The checkpoint already carries the two-player-trained weights
            # and pruning masks; re-running ALFTrainer would retrain them
            # and forcing masks in finalize() would erase them.
            self._trained = True
            return None
        self.trainer = ALFTrainer(self._require_model(), self.config.alf)
        self.history = self.trainer.fit(train_loader, val_loader, epochs=epochs)
        self._trained = True
        return self.history

    def _force_masks(self) -> None:
        """Set the pruning masks to the configured compression profile."""
        labels = list(self.config.layer_labels or [])
        for index, (qualified, block) in enumerate(self.blocks):
            label = labels[index] if index < len(labels) else qualified
            fraction = None
            if self.config.layer_fractions is not None:
                fraction = self.config.layer_fractions.get(label)
            if fraction is None and self.config.stage_remaining is not None:
                fraction = self.config.stage_remaining.get(block.out_channels)
            if fraction is None:
                fraction = (self.config.remaining_fraction
                            if self.config.remaining_fraction is not None else 0.386)
            keep = max(1, int(round(block.out_channels * fraction)))
            target = block.autoencoder.pruning_mask.mask
            mask = np.zeros(block.out_channels, dtype=target.data.dtype)
            mask[:keep] = 1.0
            target.data = mask

    def finalize(self) -> CompressedModel:
        model = self._require_model()
        if not self._trained and self.config.forced_fractions():
            self._force_masks()
        conv_only = self.spec.conv_only
        profile = profile_model(model, self.input_shape)
        cost = {
            "params": float(profile.total_params(conv_only=conv_only)),
            "macs": float(profile.total_macs(conv_only=conv_only)),
            "ops": float(profile.total_ops(conv_only=conv_only)),
        }
        shapes = conv_shapes_from_model(
            model, self.input_shape, batch=self.spec.hardware_batch,
            names=self.spec.layer_names, profile=profile)
        active = sum(block.active_filters() for _, block in self.blocks)
        total = sum(block.out_channels for _, block in self.blocks)
        deployment = compress_model(model) if self.config.deploy else None
        return CompressedModel(
            model=deployment.model if deployment is not None else model,
            method=self.name,
            cost=cost,
            layer_shapes=shapes,
            remaining_filter_fraction=active / max(1, total),
            detail=deployment,
        )


# --------------------------------------------------------------------------- #
# Structured filter pruning (magnitude / FPGM / AMC)
# --------------------------------------------------------------------------- #
class _FilterPruningAdapter(CompressionAdapter):
    """Shared pre-train → prune → fine-tune lifecycle of the pruning baselines."""

    def __init__(self, config, spec: CompressionSpec):
        super().__init__(config, spec)
        self.plan: Optional[PruningPlan] = None
        self._val_loader = None

    def _build_pruner(self):
        raise NotImplementedError

    def _prune_ratio(self) -> float:
        return self.config.prune_ratio

    def _ensure_plan(self) -> PruningPlan:
        if self.plan is None:
            model = self._require_model()
            pruner = self._build_pruner()
            self.plan = pruner.plan(model, prune_ratio=self._prune_ratio(),
                                    min_kernel=self.config.min_kernel)
            apply_filter_masks(model, self.plan)
        return self.plan

    def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
        self._val_loader = val_loader
        model = self._require_model()
        if train_loader is None or epochs <= 0:
            return None
        trainer = ClassifierTrainer(model, lr=self.spec.lr)
        if not self.warm:
            # A warm start already holds the trained dense weights; the
            # pruning plan and fine-tune loop below still run in full.
            trainer.fit(train_loader, val_loader, epochs=epochs)
        self._ensure_plan()
        # Fine-tune with the masks re-applied after every epoch: plain SGD
        # gradients would otherwise regrow the zeroed filters, leaving the
        # model inconsistent with the plan's cost accounting.
        for _ in range(self.spec.resolved_finetune_epochs()):
            trainer.fit(train_loader, val_loader, epochs=1)
            apply_filter_masks(model, self.plan)
        self.history = trainer.history
        return self.history

    def finalize(self) -> CompressedModel:
        model = self._require_model()
        plan = self._ensure_plan()
        # Idempotent re-application: the returned model must match the
        # plan the cost / hardware numbers are derived from.
        apply_filter_masks(model, plan)
        profile = profile_model(model, self.input_shape)
        cost = effective_cost(model, plan, self.input_shape,
                              conv_only=self.spec.conv_only, profile=profile)
        return CompressedModel(
            model=model,
            method=self.name,
            cost={k: float(v) for k, v in cost.items()},
            layer_shapes=pruned_conv_shapes(model, plan, self.input_shape,
                                            batch=self.spec.hardware_batch,
                                            profile=profile),
            remaining_filter_fraction=1.0 - plan.overall_filter_reduction,
            detail=plan,
        )


@register_method("magnitude", MagnitudeSpec, policy="Handcrafted",
                 summary="L1/L2 magnitude filter pruning (Han et al. style)")
class MagnitudeMethod(_FilterPruningAdapter):

    def _build_pruner(self) -> MagnitudePruner:
        return MagnitudePruner(norm=self.config.norm)


@register_method("fpgm", FPGMSpec, policy="Handcrafted",
                 summary="Filter pruning via geometric median (He et al., CVPR'19)")
class FPGMMethod(_FilterPruningAdapter):

    def _build_pruner(self) -> FPGMPruner:
        return FPGMPruner(iterations=self.config.iterations)


@register_method("amc", AMCSpec, policy="RL-Agent",
                 summary="Agent-searched per-layer ratios under an OPs budget (He et al., ECCV'18)")
class AMCMethod(_FilterPruningAdapter):

    def _prune_ratio(self) -> float:
        # AMC's "ratio" is the fraction of operations to remove; the agent
        # distributes per-layer ratios to hit the complementary OPs budget.
        return 1.0 - self.config.target_ops_fraction

    def _accuracy_evaluator(self):
        if not self.config.accuracy_eval or self._val_loader is None:
            return None
        val_loader = self._val_loader

        def evaluate(model: Module, plan: PruningPlan) -> float:
            candidate = copy.deepcopy(model)
            apply_filter_masks(candidate, plan)
            return evaluate_accuracy(candidate, val_loader)

        return evaluate

    def _build_pruner(self) -> AMCPruner:
        return AMCPruner(
            evaluate=self._accuracy_evaluator(),
            target_ops_fraction=self.config.target_ops_fraction,
            iterations=self.config.iterations,
            population=self.config.population,
            elite_fraction=self.config.elite_fraction,
            max_ratio=self.config.max_ratio,
            seed=self.spec.seed,
        )


# --------------------------------------------------------------------------- #
# LCNN dictionary sharing
# --------------------------------------------------------------------------- #
@register_method("lcnn", LCNNSpec, policy="Automatic",
                 summary="Lookup/dictionary filter sharing (Bagherinezhad et al.)")
class LCNNMethod(CompressionAdapter):

    def __init__(self, config: LCNNSpec, spec: CompressionSpec):
        super().__init__(config, spec)
        self.result = None

    def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
        # The dictionaries are learned from the weights; training here is the
        # optional classifier pre-training that gives them something to share.
        if train_loader is None or epochs <= 0 or self.warm:
            return None
        trainer = ClassifierTrainer(self._require_model(), lr=self.spec.lr)
        self.history = trainer.fit(train_loader, val_loader, epochs=epochs)
        return self.history

    def finalize(self) -> CompressedModel:
        model = self._require_model()
        compressor = LCNNCompressor(
            dictionary_fraction=self.config.dictionary_fraction,
            sparsity=self.config.sparsity,
            kmeans_iterations=self.config.kmeans_iterations,
            seed=self.spec.seed,
        )
        # Workload shapes are taken before the (optional) weight rewrite so
        # they reflect the original layer geometry.
        base_shapes = conv_shapes_from_model(model, self.input_shape,
                                             batch=self.spec.hardware_batch)
        self.result = compressor.compress(model, min_kernel=self.config.min_kernel,
                                          apply=self.config.apply)
        cost = compressor.effective_cost(model, self.result, self.input_shape,
                                         conv_only=self.spec.conv_only)
        dictionaries = {d.name: d for d in self.result.dictionaries}
        shapes: List[ConvLayerShape] = []
        for shape in base_shapes:
            dictionary = dictionaries.get(shape.name)
            if dictionary is None:
                shapes.append(shape)
                continue
            # LCNN inference: one convolution with the D dictionary atoms,
            # then a cheap 1x1-style recombination back to Co outputs.
            code = replace(shape, out_channels=dictionary.dictionary_size).validate()
            shapes.append(code)
            shapes.append(ConvLayerShape(
                name=f"{shape.name}_exp",
                in_channels=dictionary.dictionary_size,
                out_channels=shape.out_channels,
                kernel_size=1,
                input_hw=code.output_hw,
                stride=1,
                padding=0,
                batch=shape.batch,
            ).validate())
        return CompressedModel(
            model=model,
            method=self.name,
            cost={k: float(v) for k, v in cost.items()},
            layer_shapes=shapes,
            remaining_filter_fraction=self.config.dictionary_fraction,
            detail=self.result,
        )


# --------------------------------------------------------------------------- #
# Low-rank SVD factorization
# --------------------------------------------------------------------------- #
@register_method("lowrank", LowRankSpec, policy="Handcrafted",
                 summary="Truncated-SVD factorization into code + 1x1 expansion")
class LowRankMethod(CompressionAdapter):

    def __init__(self, config: LowRankSpec, spec: CompressionSpec):
        super().__init__(config, spec)
        self.result = None

    def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
        if train_loader is None or epochs <= 0 or self.warm:
            return None
        trainer = ClassifierTrainer(self._require_model(), lr=self.spec.lr)
        self.history = trainer.fit(train_loader, val_loader, epochs=epochs)
        return self.history

    def finalize(self) -> CompressedModel:
        model = self._require_model()
        decomposer = LowRankDecomposer(
            rank_fraction=self.config.rank_fraction,
            energy_threshold=self.config.energy_threshold,
        )
        base_shapes = conv_shapes_from_model(model, self.input_shape,
                                             batch=self.spec.hardware_batch)
        self.result = decomposer.decompose(model, min_kernel=self.config.min_kernel,
                                           apply=self.config.apply)
        cost = decomposer.effective_cost(model, self.result, self.input_shape,
                                         conv_only=self.spec.conv_only)
        factorizations = {f.name: f for f in self.result.factorizations}
        shapes: List[ConvLayerShape] = []
        total_rank = 0
        total_out = 0
        for shape in base_shapes:
            factorization = factorizations.get(shape.name)
            if factorization is None:
                shapes.append(shape)
                continue
            total_rank += factorization.rank
            total_out += factorization.out_channels
            code = replace(shape, out_channels=factorization.rank).validate()
            shapes.append(code)
            shapes.append(ConvLayerShape(
                name=f"{shape.name}_exp",
                in_channels=factorization.rank,
                out_channels=shape.out_channels,
                kernel_size=1,
                input_hw=code.output_hw,
                stride=1,
                padding=0,
                batch=shape.batch,
            ).validate())
        return CompressedModel(
            model=model,
            method=self.name,
            cost={k: float(v) for k, v in cost.items()},
            layer_shapes=shapes,
            remaining_filter_fraction=total_rank / max(1, total_out),
            detail=self.result,
        )
