"""Content-addressed result cache + checkpoint store for sweep sessions.

Every report a sweep produces is a deterministic function of (spec, model,
data recipe, engine state) — the executors are *proven* bit-identical to
serial recomputation — so a completed :class:`CompressionReport` can be
stored under a content address and replayed for free when the same
submission arrives again:

* :class:`CacheKey` — the address: ``CompressionSpec.digest()`` (canonical
  JSON), :func:`~repro.api.digests.model_digest` (parameter-byte hash) and
  :func:`~repro.api.digests.data_digest` (the ``repro-job/1`` base64-npy
  data recipe), combined into one SHA-256.
* :class:`FileReportCache` — the persistent store: one atomic
  ``repro-cache-entry/1`` JSON file per report (digest-guarded; a corrupt,
  truncated or unknown-version entry is a warning and a *miss*, never a
  crash) plus an ``.npz`` checkpoint of the finalized compressed model's
  parameters.  The root defaults to ``~/.cache/repro`` and is overridden by
  the ``REPRO_CACHE_DIR`` environment variable.
* :class:`MemoryReportCache` — the same contract in a dict, for tests and
  single-process warm layers.
* Warm starts — :meth:`ReportCache.nearest_checkpoint` finds the entry with
  the same (method, model, data) whose spec payload is *closest* to a new
  near-miss submission, so its checkpoint can seed fine-tuning instead of
  training from dense.
* Plan artifacts — :meth:`ReportCache.put_plan` / :meth:`get_plan` store
  serialized ``repro-plan/1`` compiled-inference payloads next to the
  checkpoints, so :func:`~repro.api.plan.compile_report` can serve a plan
  from the store instead of re-tracing and re-lowering the model.

:class:`~repro.api.session.SweepSession` consults the store through the
``cache=`` policy knob (``"off"`` / ``"read"`` / ``"write"`` /
``"readwrite"``, a :class:`ReportCache` instance, or an explicit
``(store, policy)`` pair); see :func:`resolve_cache`.

Maintenance from the command line::

    python -m repro.api.cache stats            # entries / checkpoints / bytes
    python -m repro.api.cache gc --max-entries 100
    python -m repro.api.cache gc --clear
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from .digests import data_digest, model_digest, payload_digest
from .pipeline import CompressionReport
from .spec import CompressionSpec

#: Wire-format identifier of stored cache entries.
CACHE_ENTRY_SCHEMA = "repro-cache-entry/1"
#: Environment variable overriding the default filesystem cache root.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"
#: Accepted values of the session-level ``cache=`` policy knob.
CACHE_POLICIES = ("off", "read", "write", "readwrite")

CacheArg = Union[None, str, "ReportCache", Tuple["ReportCache", str]]


class CacheIntegrityWarning(UserWarning):
    """A stored cache entry failed validation and was treated as a miss."""


class CacheEntryError(ValueError):
    """Internal: why an entry failed validation (surfaced as a warning)."""


# --------------------------------------------------------------------------- #
# Keys
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CacheKey:
    """The content address of one submission.

    ``spec`` / ``model`` / ``data`` are the three component digests;
    ``method`` rides along (it is already encoded in ``spec``) so stores
    can group entries for near-miss lookups without re-parsing spec
    payloads.
    """

    method: str
    spec: str
    model: str
    data: str

    @property
    def combined(self) -> str:
        """One SHA-256 over the three component digests — the store address."""
        return payload_digest(
            {"spec": self.spec, "model": self.model, "data": self.data})

    def to_dict(self) -> Dict[str, str]:
        return {"method": self.method, "spec": self.spec, "model": self.model,
                "data": self.data, "combined": self.combined}


def cache_key(spec: CompressionSpec, model: Any,
              plan: Any = None) -> Optional[CacheKey]:
    """Build the :class:`CacheKey` of (validated spec, built model, loader plan).

    ``None`` when the submission has no sound content address: the spec
    carries a live ``Module`` (no canonical payload) or the data plan wraps
    live user loaders (no canonical recipe).
    """
    try:
        spec_part = spec.digest()
    except TypeError:
        return None
    data_part = data_digest(plan) if plan is not None else payload_digest(None)
    if data_part is None:
        return None
    return CacheKey(method=spec.method, spec=spec_part,
                    model=model_digest(model), data=data_part)


@dataclass
class WarmStart:
    """A cached checkpoint selected to seed a near-miss run's fine-tuning.

    ``source`` is the providing entry's combined key (recorded on the
    warm-started run's own cache entry as ``warm_source``); ``spec`` is the
    providing entry's spec; ``state`` the stored parameter/buffer arrays.
    """

    source: str
    spec: CompressionSpec
    state: Dict[str, np.ndarray]


@dataclass
class CacheStats:
    """Store contents plus this instance's traffic counters."""

    entries: int = 0
    checkpoints: int = 0
    plans: int = 0
    total_bytes: int = 0
    hits: int = 0
    misses: int = 0
    writes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"entries": self.entries, "checkpoints": self.checkpoints,
                "plans": self.plans, "total_bytes": self.total_bytes,
                "hits": self.hits, "misses": self.misses,
                "writes": self.writes}


# --------------------------------------------------------------------------- #
# Spec nearness (for warm-start selection)
# --------------------------------------------------------------------------- #
_MISSING = object()


def _flatten(payload: Any, prefix: str = "") -> Iterator[Tuple[str, Any]]:
    if isinstance(payload, Mapping):
        for key, value in payload.items():
            yield from _flatten(value, f"{prefix}{key}.")
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            yield from _flatten(value, f"{prefix}{index}.")
    else:
        yield prefix[:-1], payload


def spec_distance(a: Mapping[str, Any], b: Mapping[str, Any]) -> float:
    """How far apart two spec payloads are (0 = identical).

    Each differing leaf contributes 1, except numeric pairs, which
    contribute their relative difference in ``(0, 1)`` — so among cached
    candidates that differ in the same knob (say the pruning ratio), the
    numerically *nearest* operating point wins.
    """
    flat_a, flat_b = dict(_flatten(a)), dict(_flatten(b))
    score = 0.0
    for path in set(flat_a) | set(flat_b):
        va = flat_a.get(path, _MISSING)
        vb = flat_b.get(path, _MISSING)
        if va is _MISSING or vb is _MISSING:
            score += 1.0
            continue
        numeric = (isinstance(va, (int, float)) and not isinstance(va, bool)
                   and isinstance(vb, (int, float)) and not isinstance(vb, bool))
        if numeric:
            score += min(1.0, abs(va - vb) / (1.0 + abs(va) + abs(vb)))
        elif va != vb:
            score += 1.0
    return score


# --------------------------------------------------------------------------- #
# The store contract + shared entry codec
# --------------------------------------------------------------------------- #
class ReportCache:
    """Content-addressed report + checkpoint store.

    Subclasses implement the raw primitives (``_read_entry`` /
    ``_write_entry`` / ``_read_state`` / ``_write_state`` / ``_keys`` /
    ``_remove``); validation, the ``repro-cache-entry/1`` codec, traffic
    counters and near-miss search are shared here.  ``get`` never raises on
    a damaged entry: a bad digest, truncated JSON or unknown schema version
    is reported as a :class:`CacheIntegrityWarning` and treated as a miss.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0

    # -- primitives (subclass responsibility) ---------------------------- #
    def _read_entry(self, combined: str) -> Optional[str]:
        """The entry's raw JSON text, or ``None`` when absent."""
        raise NotImplementedError

    def _write_entry(self, combined: str, text: str) -> None:
        raise NotImplementedError

    def _read_state(self, combined: str) -> Optional[Dict[str, np.ndarray]]:
        raise NotImplementedError

    def _write_state(self, combined: str,
                     state: Mapping[str, np.ndarray]) -> None:
        raise NotImplementedError

    def _keys(self) -> List[str]:
        """Combined keys of every stored entry (no particular order).

        Recency does **not** live here: filesystem mtimes are too coarse
        (1 s on some filesystems) to order same-second writes, so age is
        tracked by the monotonic ``seq`` number persisted inside each
        entry — see :meth:`_lru_keys`.
        """
        raise NotImplementedError

    def _remove(self, combined: str) -> None:
        """Drop one entry and its checkpoint (missing entries are fine)."""
        raise NotImplementedError

    def _read_plan(self, address: str) -> Optional[str]:
        """The raw JSON text of one stored plan artifact, or ``None``."""
        raise NotImplementedError

    def _write_plan(self, address: str, text: str) -> None:
        raise NotImplementedError

    def _plan_keys(self) -> List[str]:
        """Addresses of every stored plan artifact."""
        raise NotImplementedError

    def _remove_plan(self, address: str) -> None:
        raise NotImplementedError

    def _content_stats(self) -> Tuple[int, int, int, int]:
        """(entries, checkpoints, plans, total_bytes) of the stored content."""
        raise NotImplementedError

    # -- entry codec ------------------------------------------------------ #
    @staticmethod
    def _encode(key: CacheKey, report: CompressionReport,
                has_checkpoint: bool,
                warm_source: Optional[str]) -> Dict[str, Any]:
        report_payload = report.to_dict()
        return {
            "schema": CACHE_ENTRY_SCHEMA,
            "key": key.to_dict(),
            "spec": report_payload["spec"],
            "report": report_payload,
            "report_digest": payload_digest(report_payload),
            "checkpoint": bool(has_checkpoint),
            "warm_source": warm_source,
        }

    @staticmethod
    def _decode(text: str) -> Dict[str, Any]:
        """Parse + validate raw entry text; raises :class:`CacheEntryError`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CacheEntryError(f"unreadable entry JSON ({exc})") from None
        schema = payload.get("schema") if isinstance(payload, dict) else None
        if schema != CACHE_ENTRY_SCHEMA:
            raise CacheEntryError(
                f"unsupported cache-entry schema {schema!r}: expected "
                f"'{CACHE_ENTRY_SCHEMA}'")
        report_payload = payload.get("report")
        if payload.get("report_digest") != payload_digest(report_payload):
            raise CacheEntryError(
                "report digest mismatch: the stored entry was corrupted")
        return payload

    def _warn(self, combined: str, error: Exception) -> None:
        warnings.warn(
            f"report-cache entry {combined[:12]}… is unusable and was "
            f"treated as a miss: {error}", CacheIntegrityWarning,
            stacklevel=3)

    # -- recency ----------------------------------------------------------- #
    def _entry_seq(self, combined: str) -> int:
        """The persisted ``seq`` of one entry; ``-1`` for damaged/legacy."""
        text = self._read_entry(combined)
        if text is None:
            return -1
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return -1
        seq = payload.get("seq") if isinstance(payload, dict) else None
        return seq if isinstance(seq, int) and not isinstance(seq, bool) else -1

    def _next_seq(self) -> int:
        """One more than the highest ``seq`` stored anywhere in this store."""
        highest = -1
        for combined in self._keys():
            highest = max(highest, self._entry_seq(combined))
        return highest + 1

    def _lru_keys(self) -> List[str]:
        """Combined keys, least recently used first.

        Ordered by the persisted ``seq`` (written on :meth:`put`, refreshed
        on every :meth:`get` hit) with the combined digest as a
        deterministic tie-break; legacy entries without a ``seq`` sort
        first and are evicted before anything stamped.
        """
        return sorted(self._keys(),
                      key=lambda combined: (self._entry_seq(combined),
                                            combined))

    # -- public API -------------------------------------------------------- #
    def get(self, key: CacheKey) -> Optional[CompressionReport]:
        """The stored report for ``key``, or ``None`` (miss) — never raises."""
        entry = self.entry(key)
        if entry is None:
            with self._lock:
                self._misses += 1
            return None
        try:
            report = CompressionReport.from_dict(entry["report"])
        except Exception as exc:
            self._warn(key.combined, exc)
            with self._lock:
                self._misses += 1
            return None
        try:
            # Touch: refresh the entry's seq so gc eviction is genuinely
            # least-recently-*used*, not write-order.  Best effort — a
            # read-only store must not turn a hit into a crash.
            entry["seq"] = self._next_seq()
            self._write_entry(key.combined, json.dumps(entry, sort_keys=True))
        except Exception:
            pass
        with self._lock:
            self._hits += 1
        return report

    def entry(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """The validated raw entry payload, or ``None`` — never raises."""
        text = self._read_entry(key.combined)
        if text is None:
            return None
        try:
            return self._decode(text)
        except CacheEntryError as exc:
            self._warn(key.combined, exc)
            return None

    def put(self, key: CacheKey, report: CompressionReport,
            checkpoint: Optional[Mapping[str, np.ndarray]] = None,
            warm_source: Optional[str] = None) -> None:
        """Store ``report`` (and optionally its checkpoint) under ``key``.

        The entry is written after the checkpoint so a reader never sees an
        entry advertising a checkpoint that does not exist yet; writes are
        atomic per artifact.
        """
        if checkpoint is not None:
            self._write_state(key.combined, checkpoint)
        entry = self._encode(key, report, checkpoint is not None, warm_source)
        entry["seq"] = self._next_seq()
        self._write_entry(key.combined,
                          json.dumps(entry, sort_keys=True))
        with self._lock:
            self._writes += 1

    def checkpoint(self, key: CacheKey) -> Optional[Dict[str, np.ndarray]]:
        """The stored parameter/buffer arrays for ``key``, or ``None``."""
        try:
            return self._read_state(key.combined)
        except Exception as exc:
            self._warn(key.combined, exc)
            return None

    def nearest_checkpoint(self, key: CacheKey,
                           spec_payload: Mapping[str, Any]
                           ) -> Optional[WarmStart]:
        """The closest same-(method, model, data) checkpoint to a new spec.

        Candidates must share the method, model digest and data digest
        (a checkpoint from another model or data recipe cannot seed this
        run), must not *be* the queried key, and must actually carry a
        checkpoint.  Among those, the entry whose stored spec payload has
        the smallest :func:`spec_distance` to ``spec_payload`` wins;
        distance ties break on the combined digest, so the winner is a
        deterministic function of the store *contents* rather than of
        write order or filesystem timestamps.
        """
        best: Optional[Tuple[float, str, Dict[str, Any]]] = None
        for combined in self._keys():
            if combined == key.combined:
                continue
            text = self._read_entry(combined)
            if text is None:
                continue
            try:
                entry = self._decode(text)
            except CacheEntryError:
                continue  # damaged entries never seed anything
            entry_key = entry.get("key") or {}
            if (entry_key.get("method") != key.method
                    or entry_key.get("model") != key.model
                    or entry_key.get("data") != key.data
                    or not entry.get("checkpoint")):
                continue
            distance = spec_distance(spec_payload, entry.get("spec") or {})
            if best is None or (distance, combined) < (best[0], best[1]):
                best = (distance, combined, entry)
        if best is None:
            return None
        _, combined, entry = best
        try:
            state = self._read_state(combined)
        except Exception as exc:
            self._warn(combined, exc)
            return None
        if state is None:
            return None
        return WarmStart(source=combined,
                         spec=CompressionSpec.from_dict(entry["spec"]),
                         state=state)

    # -- plan artifacts ----------------------------------------------------- #
    def get_plan(self, address: str) -> Optional[Dict[str, Any]]:
        """The stored ``repro-plan/1`` payload at ``address`` — never raises.

        Validation mirrors :meth:`get`: unreadable JSON, a non-plan schema
        or a payload-digest mismatch is a :class:`CacheIntegrityWarning`
        plus a miss, so a corrupt artifact can only cost a recompile.
        """
        text = self._read_plan(address)
        if text is None:
            with self._lock:
                self._misses += 1
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            self._warn(address, CacheEntryError(
                f"unreadable plan JSON ({exc})"))
            with self._lock:
                self._misses += 1
            return None
        schema = payload.get("schema") if isinstance(payload, dict) else None
        if not (isinstance(schema, str) and schema.startswith("repro-plan/")):
            self._warn(address, CacheEntryError(
                f"unsupported plan schema {schema!r}"))
            with self._lock:
                self._misses += 1
            return None
        body = {k: v for k, v in payload.items() if k != "digest"}
        if payload.get("digest") != payload_digest(body):
            self._warn(address, CacheEntryError(
                "plan payload digest mismatch: the stored artifact was "
                "corrupted"))
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            self._hits += 1
        return payload

    def put_plan(self, address: str, payload: Mapping[str, Any]) -> None:
        """Store one serialized plan payload under ``address``."""
        if not isinstance(payload, Mapping):
            raise TypeError(
                f"plan payload must be a mapping, got {type(payload).__name__}")
        self._write_plan(address, json.dumps(dict(payload), sort_keys=True))
        with self._lock:
            self._writes += 1

    # -- maintenance ------------------------------------------------------- #
    def stats(self) -> CacheStats:
        entries, checkpoints, plans, total_bytes = self._content_stats()
        with self._lock:
            return CacheStats(entries=entries, checkpoints=checkpoints,
                              plans=plans, total_bytes=total_bytes,
                              hits=self._hits, misses=self._misses,
                              writes=self._writes)

    def gc(self, max_entries: Optional[int] = None,
           clear: bool = False) -> int:
        """Evict entries (least recently used first) down to ``max_entries``.

        Recency is the persisted per-entry ``seq``, not filesystem mtime —
        a :meth:`get` hit protects an entry from eviction, and same-second
        writes still evict in a deterministic order.  ``clear=True``
        empties the store, plan artifacts included.  Checkpoints are
        removed with their entries.  Returns the number of entries
        removed.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        keys = self._lru_keys()
        if clear:
            doomed = keys
            for address in self._plan_keys():
                self._remove_plan(address)
        elif max_entries is not None and len(keys) > max_entries:
            doomed = keys[:len(keys) - max_entries]
        else:
            doomed = []
        for combined in doomed:
            self._remove(combined)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._keys())


# --------------------------------------------------------------------------- #
# In-memory store (tests / single-process warm layer)
# --------------------------------------------------------------------------- #
class MemoryReportCache(ReportCache):
    """The store contract over plain dicts — nothing touches the filesystem.

    Entries still round-trip through their JSON text, so everything the
    persistent store guarantees (schema validation, digest guarding,
    wire-format fidelity of replayed reports) holds here too.
    """

    def __init__(self) -> None:
        super().__init__()
        self._entries: "Dict[str, str]" = {}
        self._states: Dict[str, Dict[str, np.ndarray]] = {}
        self._plans: "Dict[str, str]" = {}

    def _read_entry(self, combined: str) -> Optional[str]:
        with self._lock:
            return self._entries.get(combined)

    def _write_entry(self, combined: str, text: str) -> None:
        with self._lock:
            self._entries[combined] = text

    def _read_state(self, combined: str) -> Optional[Dict[str, np.ndarray]]:
        with self._lock:
            state = self._states.get(combined)
            return None if state is None else {name: array.copy()
                                               for name, array in state.items()}

    def _write_state(self, combined: str,
                     state: Mapping[str, np.ndarray]) -> None:
        with self._lock:
            self._states[combined] = {name: np.ascontiguousarray(array).copy()
                                      for name, array in state.items()}

    def _keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def _remove(self, combined: str) -> None:
        with self._lock:
            self._entries.pop(combined, None)
            self._states.pop(combined, None)

    def _read_plan(self, address: str) -> Optional[str]:
        with self._lock:
            return self._plans.get(address)

    def _write_plan(self, address: str, text: str) -> None:
        with self._lock:
            self._plans[address] = text

    def _plan_keys(self) -> List[str]:
        with self._lock:
            return list(self._plans)

    def _remove_plan(self, address: str) -> None:
        with self._lock:
            self._plans.pop(address, None)

    def _content_stats(self) -> Tuple[int, int, int, int]:
        with self._lock:
            text_bytes = sum(len(text) for text in self._entries.values())
            state_bytes = sum(array.nbytes for state in self._states.values()
                              for array in state.values())
            plan_bytes = sum(len(text) for text in self._plans.values())
            return (len(self._entries), len(self._states), len(self._plans),
                    text_bytes + state_bytes + plan_bytes)


# --------------------------------------------------------------------------- #
# Filesystem store
# --------------------------------------------------------------------------- #
class FileReportCache(ReportCache):
    """Persistent content-addressed store under one root directory.

    Layout::

        <root>/entries/<combined>.json       repro-cache-entry/1 payloads
        <root>/checkpoints/<combined>.npz    finalized model parameters
        <root>/plans/<address>.json          repro-plan/1 compiled plans

    Both artifact kinds are written atomically (temp file + ``os.replace``)
    so concurrent sessions — or a crash mid-write — can never leave a
    half-written entry that parses; anything damaged on disk is handled by
    the read-side validation (warning + miss).
    """

    def __init__(self, root: Union[str, "os.PathLike[str]"]):
        super().__init__()
        self.root = os.path.abspath(os.fspath(root))
        self._entries_dir = os.path.join(self.root, "entries")
        self._states_dir = os.path.join(self.root, "checkpoints")
        self._plans_dir = os.path.join(self.root, "plans")

    # -- paths ------------------------------------------------------------- #
    def _entry_path(self, combined: str) -> str:
        return os.path.join(self._entries_dir, f"{combined}.json")

    def _state_path(self, combined: str) -> str:
        return os.path.join(self._states_dir, f"{combined}.npz")

    def _plan_path(self, address: str) -> str:
        return os.path.join(self._plans_dir, f"{address}.json")

    @staticmethod
    def _atomic_write(path: str, writer) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=os.path.splitext(path)[1])
        try:
            with os.fdopen(handle, "wb") as stream:
                writer(stream)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- primitives -------------------------------------------------------- #
    def _read_entry(self, combined: str) -> Optional[str]:
        try:
            with open(self._entry_path(combined), "r", encoding="utf-8") as f:
                return f.read()
        except (FileNotFoundError, NotADirectoryError):
            return None
        except OSError as exc:
            self._warn(combined, exc)
            return None

    def _write_entry(self, combined: str, text: str) -> None:
        self._atomic_write(self._entry_path(combined),
                           lambda stream: stream.write(text.encode("utf-8")))

    def _read_state(self, combined: str) -> Optional[Dict[str, np.ndarray]]:
        path = self._state_path(combined)
        if not os.path.exists(path):
            return None
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}

    def _write_state(self, combined: str,
                     state: Mapping[str, np.ndarray]) -> None:
        arrays = {name: np.ascontiguousarray(array)
                  for name, array in state.items()}
        self._atomic_write(self._state_path(combined),
                           lambda stream: np.savez(stream, **arrays))

    @staticmethod
    def _listing(directory: str, suffix: str) -> List[str]:
        try:
            names = os.listdir(directory)
        except (FileNotFoundError, NotADirectoryError):
            return []
        # Sorted filenames, not mtimes: getmtime is 1 s-coarse on some
        # filesystems, so mtime order for same-second writes was really
        # digest-alphabetical — and never "least recently used" anyway,
        # since reads don't bump mtime.  Recency lives in the entry's
        # persisted seq (see ReportCache._lru_keys).
        return sorted(name[:-len(suffix)] for name in names
                      if name.endswith(suffix) and not name.startswith("."))

    def _keys(self) -> List[str]:
        return self._listing(self._entries_dir, ".json")

    def _remove(self, combined: str) -> None:
        for path in (self._entry_path(combined), self._state_path(combined)):
            try:
                os.unlink(path)
            except OSError:
                pass

    def _read_plan(self, address: str) -> Optional[str]:
        try:
            with open(self._plan_path(address), "r", encoding="utf-8") as f:
                return f.read()
        except (FileNotFoundError, NotADirectoryError):
            return None
        except OSError as exc:
            self._warn(address, exc)
            return None

    def _write_plan(self, address: str, text: str) -> None:
        self._atomic_write(self._plan_path(address),
                           lambda stream: stream.write(text.encode("utf-8")))

    def _plan_keys(self) -> List[str]:
        return self._listing(self._plans_dir, ".json")

    def _remove_plan(self, address: str) -> None:
        try:
            os.unlink(self._plan_path(address))
        except OSError:
            pass

    def _content_stats(self) -> Tuple[int, int, int, int]:
        entries = checkpoints = plans = total_bytes = 0
        for directory, suffix in ((self._entries_dir, ".json"),
                                  (self._states_dir, ".npz"),
                                  (self._plans_dir, ".json")):
            try:
                names = os.listdir(directory)
            except (FileNotFoundError, NotADirectoryError):
                continue
            for name in names:
                if not name.endswith(suffix) or name.startswith("."):
                    continue
                try:
                    total_bytes += os.path.getsize(os.path.join(directory, name))
                except OSError:
                    continue
                if directory is self._entries_dir:
                    entries += 1
                elif directory is self._states_dir:
                    checkpoints += 1
                else:
                    plans += 1
        return entries, checkpoints, plans, total_bytes


# --------------------------------------------------------------------------- #
# Defaults + the session-facing policy knob
# --------------------------------------------------------------------------- #
def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, or ``~/.cache/repro`` when unset."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def default_cache() -> FileReportCache:
    """The process-default persistent store (honours ``REPRO_CACHE_DIR``)."""
    return FileReportCache(default_cache_dir())


def resolve_cache(cache: CacheArg) -> Tuple[Optional[ReportCache], str]:
    """Normalize the ``cache=`` knob into ``(store, policy)``.

    * ``None`` / ``"off"`` → no store, policy ``"off"``;
    * ``"read"`` / ``"write"`` / ``"readwrite"`` → the
      :func:`default_cache` store under that policy;
    * a :class:`ReportCache` instance → that store, ``"readwrite"``;
    * an explicit ``(store, policy)`` pair → as given.
    """
    if cache is None or cache == "off":
        return None, "off"
    if isinstance(cache, str):
        if cache not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {cache!r}: expected one of "
                f"{list(CACHE_POLICIES)}")
        return default_cache(), cache
    if isinstance(cache, ReportCache):
        return cache, "readwrite"
    if isinstance(cache, tuple) and len(cache) == 2:
        store, policy = cache
        if not isinstance(store, ReportCache):
            raise TypeError(
                f"cache=(store, policy) requires a ReportCache store, got "
                f"{type(store).__name__}")
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}: expected one of "
                f"{list(CACHE_POLICIES)}")
        return (store, "off") if policy == "off" else (store, policy)
    raise TypeError(
        "cache must be None, a policy string ('off'/'read'/'write'/"
        "'readwrite'), a ReportCache, or a (ReportCache, policy) tuple; "
        f"got {type(cache).__name__}")


# --------------------------------------------------------------------------- #
# ``python -m repro.api.cache`` — stats / gc maintenance
# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.api.cache",
        description="Inspect or prune the content-addressed report cache.")
    parser.add_argument("--dir", default=None,
                        help="cache root (default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro)")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("stats", help="print entry / checkpoint / byte counts")
    gc_parser = commands.add_parser(
        "gc", help="evict entries (least recently used first)")
    gc_parser.add_argument("--max-entries", type=int, default=None,
                           help="keep at most this many entries")
    gc_parser.add_argument("--clear", action="store_true",
                           help="remove every entry and checkpoint")
    args = parser.parse_args(argv)

    store = FileReportCache(args.dir) if args.dir else default_cache()
    if args.command == "stats":
        stats = store.stats()
        print(json.dumps({"root": store.root,
                          **{k: v for k, v in stats.to_dict().items()
                             if k in ("entries", "checkpoints", "plans",
                                      "total_bytes")}},
                         indent=2, sort_keys=True))
        return 0
    if args.command == "gc" and not args.clear and args.max_entries is None:
        parser.error("gc needs --max-entries or --clear")
    removed = store.gc(max_entries=args.max_entries, clear=args.clear)
    remaining = len(store)
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"({remaining} remaining) from {store.root}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
