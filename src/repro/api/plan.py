"""Compile a finished :class:`CompressionReport` into an inference plan.

This is the deployment hand-off of the API layer: after a pipeline run
(or a cache hit that rebuilt the model), :func:`compile_report` turns the
compressed model into a static :class:`repro.deploy.InferencePlan` using
the geometry and execution settings already recorded on the spec — the
same backend / dtype scope the pipeline trained and evaluated under, the
spec's input shape, and its hardware batch.

Compilation composes with the result cache: pass ``cache=`` (the same
knob :class:`~repro.api.session.SweepSession` takes) and the serialized
``repro-plan/1`` payload is stored under a content address derived from
the model's parameter bytes and every compile option, so the next
``compile_report`` for the same model serves the stored plan instead of
re-tracing and re-lowering — bit-identically, since the wire form
round-trips plans exactly.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np

from ..deploy import InferencePlan
from ..deploy import compile as compile_plan
from ..models import default_input_shape
from ..nn.backend import current_backend, get_backend, use_backend
from .cache import CacheArg, CacheIntegrityWarning, resolve_cache
from .digests import model_digest, payload_digest
from .pipeline import CompressionReport

#: Versioned kind tag of the plan-artifact content address.
PLAN_ADDRESS_KIND = "repro-plan-address/1"


def _resolve_input_shape(report: CompressionReport) -> Tuple[int, ...]:
    if report.spec.input_shape is not None:
        return tuple(report.spec.input_shape)
    if isinstance(report.spec.model, str):
        return tuple(default_input_shape(report.spec.model))
    raise ValueError(
        "cannot infer the input shape: spec.input_shape is unset and "
        "spec.model is not a registry name")


def _resolve_backend(report: CompressionReport, backend):
    """The backend/dtype compilation will actually run under."""
    if backend is not None:
        return get_backend(backend)
    spec = report.spec
    target = (get_backend(spec.backend) if spec.backend is not None
              else current_backend())
    if spec.dtype is not None and np.dtype(spec.dtype) != target.default_dtype:
        target = target.with_dtype(spec.dtype)
    return target


def plan_address(report: CompressionReport, *, input_shape: Tuple[int, ...],
                 batch: int, backend, memory_budget: Optional[int],
                 fold_bn: bool, elide_dead: bool) -> str:
    """Content address of the plan ``compile_report`` would produce.

    A plan is a deterministic function of the model's parameter bytes and
    the compile options, so those — not the report's provenance — form
    the address.  Two reports that converged to byte-identical models
    share one stored plan.
    """
    return payload_digest({
        "kind": PLAN_ADDRESS_KIND,
        "model": model_digest(report.model),
        "input_shape": list(input_shape),
        "batch": int(batch),
        "backend": backend.name,
        "dtype": np.dtype(backend.default_dtype).name,
        "memory_budget": None if memory_budget is None else int(memory_budget),
        "fold_bn": bool(fold_bn),
        "elide_dead": bool(elide_dead),
    })


def compile_report(report: CompressionReport, *, batch: Optional[int] = None,
                   memory_budget: Optional[int] = None, fold_bn: bool = False,
                   elide_dead: bool = True, backend=None,
                   cache: CacheArg = None) -> InferencePlan:
    """Compile ``report.model`` into a static :class:`InferencePlan`.

    The input shape comes from ``report.spec.input_shape`` (falling back
    to the registry default when the spec names a model), ``batch``
    defaults to ``spec.hardware_batch``, and — unless an explicit
    ``backend`` is given — compilation runs under the same
    backend / dtype scope as the pipeline itself, so the plan's weights
    and buffers match the dtype the report was produced in.

    ``cache=`` accepts the session cache knob (a policy string, a
    :class:`~repro.api.cache.ReportCache`, or a ``(store, policy)``
    pair): under a readable policy a stored ``repro-plan/1`` artifact for
    this exact (model bytes, compile options) is deserialized instead of
    recompiling; under a writable policy the freshly compiled plan is
    stored for the next call.  A damaged stored plan is a
    :class:`~repro.api.cache.CacheIntegrityWarning` plus a recompile,
    never a failure.

    The report must still carry its live model (reports rebuilt from the
    wire format via :meth:`CompressionReport.from_dict` do not).
    """
    input_shape = _resolve_input_shape(report)
    if batch is None:
        batch = report.spec.hardware_batch
    store, policy = resolve_cache(cache)

    address = None
    if store is not None and report.model is not None:
        resolved = _resolve_backend(report, backend)
        address = plan_address(report, input_shape=input_shape, batch=batch,
                               backend=resolved, memory_budget=memory_budget,
                               fold_bn=fold_bn, elide_dead=elide_dead)
    if address is not None and policy in ("read", "readwrite"):
        payload = store.get_plan(address)
        if payload is not None:
            try:
                return InferencePlan.from_dict(payload)
            except Exception as exc:
                warnings.warn(
                    f"stored plan {address[:12]}… failed to deserialize and "
                    f"was recompiled: {exc}", CacheIntegrityWarning,
                    stacklevel=2)

    if backend is not None:
        plan = compile_plan(report.model, input_shape, batch=batch,
                            memory_budget=memory_budget, fold_bn=fold_bn,
                            elide_dead=elide_dead, backend=backend)
    else:
        with use_backend(report.spec.backend, dtype=report.spec.dtype):
            plan = compile_plan(report.model, input_shape, batch=batch,
                                memory_budget=memory_budget, fold_bn=fold_bn,
                                elide_dead=elide_dead)

    if address is not None and policy in ("write", "readwrite"):
        try:
            store.put_plan(address, plan.to_dict())
        except ValueError:
            pass  # plans that traced unregistered ops have no wire form
    return plan
