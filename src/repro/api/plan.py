"""Compile a finished :class:`CompressionReport` into an inference plan.

This is the deployment hand-off of the API layer: after a pipeline run
(or a cache hit that rebuilt the model), :func:`compile_report` turns the
compressed model into a static :class:`repro.deploy.InferencePlan` using
the geometry and execution settings already recorded on the spec — the
same backend / dtype scope the pipeline trained and evaluated under, the
spec's input shape, and its hardware batch.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..deploy import InferencePlan
from ..deploy import compile as compile_plan
from ..models import default_input_shape
from ..nn.backend import use_backend
from .pipeline import CompressionReport


def _resolve_input_shape(report: CompressionReport) -> Tuple[int, ...]:
    if report.spec.input_shape is not None:
        return tuple(report.spec.input_shape)
    if isinstance(report.spec.model, str):
        return tuple(default_input_shape(report.spec.model))
    raise ValueError(
        "cannot infer the input shape: spec.input_shape is unset and "
        "spec.model is not a registry name")


def compile_report(report: CompressionReport, *, batch: Optional[int] = None,
                   memory_budget: Optional[int] = None, fold_bn: bool = False,
                   elide_dead: bool = True, backend=None) -> InferencePlan:
    """Compile ``report.model`` into a static :class:`InferencePlan`.

    The input shape comes from ``report.spec.input_shape`` (falling back
    to the registry default when the spec names a model), ``batch``
    defaults to ``spec.hardware_batch``, and — unless an explicit
    ``backend`` is given — compilation runs under the same
    backend / dtype scope as the pipeline itself, so the plan's weights
    and buffers match the dtype the report was produced in.

    The report must still carry its live model (reports rebuilt from the
    wire format via :meth:`CompressionReport.from_dict` do not).
    """
    input_shape = _resolve_input_shape(report)
    if batch is None:
        batch = report.spec.hardware_batch
    if backend is not None:
        return compile_plan(report.model, input_shape, batch=batch,
                            memory_budget=memory_budget, fold_bn=fold_bn,
                            elide_dead=elide_dead, backend=backend)
    with use_backend(report.spec.backend, dtype=report.spec.dtype):
        return compile_plan(report.model, input_shape, batch=batch,
                            memory_budget=memory_budget, fold_bn=fold_bn,
                            elide_dead=elide_dead)
