"""Lazy re-export machinery shared by the package ``__init__`` modules.

``repro.core`` / ``repro.baselines`` re-export their unified-pipeline
counterparts from ``repro.api`` without importing it eagerly (keeping their
light import footprint); this helper builds the module-level ``__getattr__``
implementing that.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict


def lazy_reexport(module_name: str, targets: Dict[str, str]) -> Callable[[str], object]:
    """A module ``__getattr__`` resolving ``targets[name]`` modules on demand.

    ``targets`` maps attribute name -> absolute module path exporting it.
    """

    def __getattr__(name: str):
        if name in targets:
            return getattr(importlib.import_module(targets[name]), name)
        raise AttributeError(f"module {module_name!r} has no attribute {name!r}")

    return __getattr__
