"""Layer-wise profiling: parameter and operation (MAC / OP) counting.

The paper reports "Params" and "OPs" where one multiply-accumulate counts
as two OPs (Table II: ResNet-20's convolutional layers = 0.27 M parameters
and 81.1 M OPs at 32x32, which equals 2x the MAC count).  Profiling works
by running a single forward pass while temporarily instrumenting every leaf
layer, so arbitrary architectures (including ALF blocks and their deployed
compressed form) are measured from their true input geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.alf_block import ALFConv2d
from ..core.deploy import CompressedConv2d
from ..nn.backend import get_default_dtype
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from ..nn.tensor import Tensor

#: Operations per multiply-accumulate (multiply + add), as used in the paper.
OPS_PER_MAC = 2


@dataclass
class LayerProfile:
    """Cost record of one profiled layer."""

    name: str
    kind: str
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    params: int
    macs: int

    @property
    def ops(self) -> int:
        return self.macs * OPS_PER_MAC


@dataclass
class ModelProfile:
    """Aggregated profiling result of a model."""

    layers: List[LayerProfile] = field(default_factory=list)

    def total_params(self, conv_only: bool = False) -> int:
        return sum(l.params for l in self.layers if not conv_only or l.kind != "linear")

    def total_macs(self, conv_only: bool = False) -> int:
        return sum(l.macs for l in self.layers if not conv_only or l.kind != "linear")

    def total_ops(self, conv_only: bool = False) -> int:
        return self.total_macs(conv_only=conv_only) * OPS_PER_MAC

    def by_name(self, name: str) -> LayerProfile:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no profiled layer named '{name}'")

    def conv_layers(self) -> List[LayerProfile]:
        return [l for l in self.layers if l.kind in ("conv", "alf", "compressed")]


def _conv_macs(in_channels: int, out_channels: int, kernel: Tuple[int, int],
               output_hw: Tuple[int, int]) -> int:
    return in_channels * out_channels * kernel[0] * kernel[1] * output_hw[0] * output_hw[1]


def profile_model(model: Module, input_shape: Tuple[int, int, int],
                  batch_size: int = 1) -> ModelProfile:
    """Profile a model with a dummy input of ``(batch_size, *input_shape)``.

    Parameters / MACs are reported **per image** (independent of the batch
    size used for profiling).  ALF blocks are accounted in their deployed
    form: a code convolution with only the currently-active filters plus the
    1x1 expansion layer.
    """
    records: List[LayerProfile] = []
    originals: List[Tuple[Module, object]] = []

    def instrument(name: str, module: Module) -> None:
        original_forward = module.forward

        def wrapped(x, _name=name, _module=module, _original=original_forward):
            out = _original(x)
            records.append(_profile_layer(_name, _module, x, out))
            return out

        originals.append((module, original_forward))
        object.__setattr__(module, "forward", wrapped)

    try:
        for name, module in model.named_modules():
            if isinstance(module, (Conv2d, Linear, ALFConv2d, CompressedConv2d)):
                instrument(name or type(module).__name__.lower(), module)
        was_training = model.training
        model.eval()
        # Eval mode makes this forward tape-free; the dummy uses the
        # backend default dtype so float32 models are profiled as float32.
        dummy = Tensor(np.zeros((batch_size,) + tuple(input_shape),
                                dtype=get_default_dtype()))
        model(dummy)
        model.train(was_training)
    finally:
        for module, original in originals:
            try:
                object.__delattr__(module, "forward")
            except AttributeError:
                object.__setattr__(module, "forward", original)

    return ModelProfile(layers=records)


def _profile_layer(name: str, module: Module, x: Tensor, out: Tensor) -> LayerProfile:
    input_shape = tuple(x.shape[1:])
    output_shape = tuple(out.shape[1:])
    if isinstance(module, ALFConv2d):
        active = module.active_filters()
        out_hw = output_shape[1:]
        macs = (_conv_macs(module.in_channels, active,
                           (module.kernel_size, module.kernel_size), out_hw)
                + _conv_macs(active, module.out_channels, (1, 1), out_hw))
        params = module.compressed_params(active)
        if module.bias is not None:
            params += module.out_channels
        kind = "alf"
    elif isinstance(module, CompressedConv2d):
        out_hw = output_shape[1:]
        macs = module.macs(tuple(input_shape[1:]))
        params = module.num_weight_params()
        kind = "compressed"
    elif isinstance(module, Conv2d):
        out_hw = output_shape[1:]
        macs = _conv_macs(module.in_channels, module.out_channels, module.kernel_size, out_hw)
        params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        kind = "conv"
    elif isinstance(module, Linear):
        macs = module.in_features * module.out_features
        params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        kind = "linear"
    else:  # pragma: no cover - instrument() only selects the four types above
        macs = 0
        params = 0
        kind = "other"
    return LayerProfile(name=name, kind=kind, input_shape=input_shape,
                        output_shape=output_shape, params=int(params), macs=int(macs))


def count_params(model: Module, input_shape: Tuple[int, int, int],
                 conv_only: bool = False) -> int:
    """Total parameter count (per the paper's accounting)."""
    return profile_model(model, input_shape).total_params(conv_only=conv_only)


def count_ops(model: Module, input_shape: Tuple[int, int, int],
              conv_only: bool = False) -> int:
    """Total operations (2 x MACs) for one input image."""
    return profile_model(model, input_shape).total_ops(conv_only=conv_only)


def count_macs(model: Module, input_shape: Tuple[int, int, int],
               conv_only: bool = False) -> int:
    """Total multiply-accumulates for one input image."""
    return profile_model(model, input_shape).total_macs(conv_only=conv_only)
