"""``repro.metrics`` — parameter / operation counters and comparison reporting."""

from .compression import (
    ComparisonTable,
    MethodResult,
    compression_summary,
    dominates,
    pareto_front,
)
from .ops import (
    OPS_PER_MAC,
    LayerProfile,
    ModelProfile,
    count_macs,
    count_ops,
    count_params,
    profile_model,
)
from .tables import format_count, format_percent, format_reduction, render_table

__all__ = [
    "profile_model", "ModelProfile", "LayerProfile",
    "count_params", "count_ops", "count_macs", "OPS_PER_MAC",
    "MethodResult", "ComparisonTable", "pareto_front", "dominates", "compression_summary",
    "render_table", "format_count", "format_percent", "format_reduction",
]
