"""Compression reporting: reductions, comparisons and pareto analysis.

These helpers turn raw Params / OPs / accuracy numbers into the derived
quantities the paper reports — percentage reductions relative to the
uncompressed baseline (Table II), relative OPs factors (Table III) and the
pareto front over (Params, OPs, accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class MethodResult:
    """One row of a comparison table (a method applied to a model)."""

    method: str
    policy: str
    params: Optional[float]
    ops: float
    accuracy: float

    def params_reduction(self, baseline_params: float) -> Optional[float]:
        """Fractional parameter reduction vs. a baseline (positive = smaller)."""
        if self.params is None:
            return None
        return 1.0 - self.params / baseline_params

    def ops_reduction(self, baseline_ops: float) -> float:
        return 1.0 - self.ops / baseline_ops

    def accuracy_drop(self, baseline_accuracy: float) -> float:
        return baseline_accuracy - self.accuracy


@dataclass
class ComparisonTable:
    """A collection of method results with a designated baseline row."""

    baseline: MethodResult
    rows: List[MethodResult] = field(default_factory=list)

    def add(self, row: MethodResult) -> None:
        self.rows.append(row)

    def all_rows(self) -> List[MethodResult]:
        return [self.baseline] + self.rows

    def reductions(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-method reductions relative to the baseline row."""
        out: Dict[str, Dict[str, Optional[float]]] = {}
        for row in self.rows:
            out[row.method] = {
                "params_reduction": row.params_reduction(self.baseline.params),
                "ops_reduction": row.ops_reduction(self.baseline.ops),
                "accuracy_drop": row.accuracy_drop(self.baseline.accuracy),
            }
        return out


def dominates(a: MethodResult, b: MethodResult) -> bool:
    """True if ``a`` is at least as good as ``b`` on params/ops/accuracy and better in one.

    Missing parameter counts are treated as "unknown" and never dominate.
    """
    if a.params is None or b.params is None:
        params_better_or_equal = a.params is not None or b.params is None
        params_strictly_better = False
        if a.params is not None and b.params is None:
            params_strictly_better = False
    else:
        params_better_or_equal = a.params <= b.params
        params_strictly_better = a.params < b.params
    ops_better_or_equal = a.ops <= b.ops
    acc_better_or_equal = a.accuracy >= b.accuracy
    if not (params_better_or_equal and ops_better_or_equal and acc_better_or_equal):
        return False
    return params_strictly_better or a.ops < b.ops or a.accuracy > b.accuracy


def pareto_front(rows: Sequence[MethodResult]) -> List[MethodResult]:
    """Methods not dominated by any other method (lower params/ops, higher accuracy)."""
    front: List[MethodResult] = []
    for candidate in rows:
        if not any(dominates(other, candidate) for other in rows if other is not candidate):
            front.append(candidate)
    return front


def compression_summary(baseline_params: float, baseline_ops: float,
                        compressed_params: float, compressed_ops: float) -> Dict[str, float]:
    """Headline-style summary: fractional reductions in parameters and operations."""
    return {
        "params_reduction": 1.0 - compressed_params / baseline_params,
        "ops_reduction": 1.0 - compressed_ops / baseline_ops,
    }
