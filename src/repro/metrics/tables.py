"""Plain-text table rendering used by the benchmark harnesses.

The benchmark for each paper table prints rows in the same structure the
paper reports; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_count(value: Optional[float], unit: str = "M", decimals: int = 2) -> str:
    """Render a raw count in millions (``unit='M'``) or thousands (``'K'``)."""
    if value is None:
        return "-"
    scale = {"": 1.0, "K": 1e3, "M": 1e6, "G": 1e9}[unit]
    return f"{value / scale:.{decimals}f}{unit}"


def format_percent(value: Optional[float], decimals: int = 1, signed: bool = False) -> str:
    if value is None:
        return "-"
    sign = "+" if signed and value >= 0 else ""
    return f"{sign}{value * 100:.{decimals}f}%"


def format_reduction(value: Optional[float], decimals: int = 0) -> str:
    """Render a fractional reduction: ``0.61 -> '-61%'``, ``-0.23 -> '+23%'``.

    A negative reduction means the quantity *grew*; rendering it with an
    explicit ``+`` avoids the "--23%" double negative.
    """
    if value is None:
        return "-"
    sign = "-" if value >= 0 else "+"
    return f"{sign}{abs(value) * 100:.{decimals}f}%"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
