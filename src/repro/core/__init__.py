"""``repro.core`` — the ALF method (the paper's primary contribution).

Public API
----------
:class:`ALFConfig`
    Hyper-parameters of the ALF blocks and the two-player training scheme.
:class:`ALFConv2d`
    Drop-in replacement for a convolution: code conv + expansion layer,
    compressed online by a sparse weight autoencoder.
:func:`convert_to_alf`
    Swap the convolutions of an existing model for ALF blocks.
:class:`ALFTrainer`
    Two-player training loop (task optimizer + per-block AE optimizers).
:func:`compress_model`
    Deployment step: drop the autoencoders, remove zeroed filters, return a
    dense compressed model.
"""

from .alf_block import ALFBlockStats, ALFConv2d, ccode_max
from .autoencoder import AutoencoderOutput, WeightAutoencoder
from .config import ALFConfig, PAPER_DEFAULT
from .convert import alf_blocks, convert_to_alf, default_convert_predicate, named_alf_blocks
from .deploy import (
    CompressedConv2d,
    CompressionRecord,
    CompressionResult,
    compress_block,
    compress_model,
    compressed_blocks,
)
from .mask import PruningMask
from .schedule import PruningSchedule, nu_prune
from .trainer import (
    ALFTrainer,
    ClassifierTrainer,
    EpochStats,
    TrainingHistory,
    evaluate_accuracy,
)

__all__ = [
    "ALFConfig", "PAPER_DEFAULT",
    "ALFConv2d", "ALFBlockStats", "ccode_max",
    "WeightAutoencoder", "AutoencoderOutput", "PruningMask",
    "PruningSchedule", "nu_prune",
    "convert_to_alf", "default_convert_predicate", "alf_blocks", "named_alf_blocks",
    "ALFTrainer", "ClassifierTrainer", "EpochStats", "TrainingHistory",
    "evaluate_accuracy",
    "compress_model", "compress_block", "compressed_blocks",
    "CompressedConv2d", "CompressionRecord", "CompressionResult",
    "ALFMethod", "ALFSpec",
]

# The unified-pipeline view of ALF lives in ``repro.api``; re-export it
# lazily so ``repro.core`` keeps its light import footprint.
from .._compat import lazy_reexport

__getattr__ = lazy_reexport(__name__, {
    "ALFMethod": "repro.api.adapters",
    "ALFSpec": "repro.api.spec",
})
