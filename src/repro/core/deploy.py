"""Deployment-stage post-processing of an ALF-trained model.

After training, the autoencoders are discarded; the code filter bank
``Wcode`` contains a number of all-zero filters which are physically
removed, together with the corresponding input channels of the expansion
layer (Sec. III-C).  The result is a dense, structurally-compressed model
consisting only of standard convolutions.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.layers import BatchNorm2d
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor
from .alf_block import ALFConv2d


class CompressedConv2d(Module):
    """Deployed form of an ALF block: reduced code conv followed by 1x1 expansion."""

    def __init__(self, code_weight: np.ndarray, expansion_weight: np.ndarray,
                 stride: int = 1, padding: int = 0, bias: Optional[np.ndarray] = None,
                 sigma_inter: Optional[str] = None, bn_inter: Optional[BatchNorm2d] = None,
                 name: Optional[str] = None):
        super().__init__()
        self.code_weight = Parameter(np.asarray(code_weight))
        self.expansion_weight = Parameter(np.asarray(expansion_weight))
        self.bias = Parameter(np.asarray(bias)) if bias is not None else None
        self.stride = stride
        self.padding = padding
        self.block_name = name or "compressed_conv"
        self._sigma_inter = F.get_activation(sigma_inter)
        self.bn_inter = bn_inter

        self.code_channels = self.code_weight.shape[0]
        self.in_channels = self.code_weight.shape[1]
        self.out_channels = self.expansion_weight.shape[0]
        self.kernel_size = self.code_weight.shape[2]

    def forward(self, x: Tensor) -> Tensor:
        a_tilde = F.conv2d(x, self.code_weight, stride=self.stride, padding=self.padding)
        a_tilde = self._sigma_inter(a_tilde)
        if self.bn_inter is not None:
            a_tilde = self.bn_inter(a_tilde)
        return F.conv2d(a_tilde, self.expansion_weight, self.bias, stride=1, padding=0)

    def macs(self, input_hw: Tuple[int, int]) -> int:
        out_h = F.conv_output_size(input_hw[0], self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(input_hw[1], self.kernel_size, self.stride, self.padding)
        code = self.in_channels * self.code_channels * self.kernel_size ** 2 * out_h * out_w
        expansion = self.code_channels * self.out_channels * out_h * out_w
        return code + expansion

    def num_weight_params(self) -> int:
        total = self.code_weight.size + self.expansion_weight.size
        if self.bias is not None:
            total += self.bias.size
        return int(total)

    def __repr__(self) -> str:
        return (f"CompressedConv2d(in={self.in_channels}, code={self.code_channels}, "
                f"out={self.out_channels}, k={self.kernel_size})")


@dataclass
class CompressionRecord:
    """Per-block record of what deployment removed."""

    name: str
    original_filters: int
    kept_filters: int
    original_params: int
    compressed_params: int

    @property
    def filter_reduction(self) -> float:
        return 1.0 - self.kept_filters / self.original_filters


@dataclass
class CompressionResult:
    """Deployment output: the compressed model plus per-block records."""

    model: Module
    records: List[CompressionRecord]

    @property
    def total_kept_filters(self) -> int:
        return sum(r.kept_filters for r in self.records)

    @property
    def total_filters(self) -> int:
        return sum(r.original_filters for r in self.records)

    @property
    def remaining_filter_fraction(self) -> float:
        if not self.records:
            return 1.0
        return self.total_kept_filters / self.total_filters

    def compile(self, input_shape: Tuple[int, ...], *, batch: int = 1,
                memory_budget: Optional[int] = None, fold_bn: bool = False,
                elide_dead: bool = True, backend=None):
        """Compile the compressed model into a static inference plan.

        Each :class:`CompressedConv2d` lowers to two plan steps — the
        reduced code convolution (with its intermediate activation fused
        in) and the 1x1 expansion — over preallocated buffers.  See
        :func:`repro.deploy.compile` for the options.
        """
        from ..deploy import compile as compile_plan
        return compile_plan(self.model, input_shape, batch=batch,
                            memory_budget=memory_budget, fold_bn=fold_bn,
                            elide_dead=elide_dead, backend=backend)


def compress_block(block: ALFConv2d, keep_at_least_one: bool = True) -> Tuple[CompressedConv2d, CompressionRecord]:
    """Build the deployed form of a single ALF block."""
    code = block.autoencoder.compute_code(block.weight.data)
    keep = block.keep_indices()
    if keep.size == 0 and keep_at_least_one:
        # Never produce an empty layer: keep the single most salient filter.
        magnitudes = np.abs(block.weight.data).reshape(block.out_channels, -1).sum(axis=1)
        keep = np.array([int(np.argmax(magnitudes))])

    code_weight = code[keep]                                  # (Ccode_nz, Ci, K, K)
    expansion_weight = block.expansion.data[:, keep, :, :]    # (Co, Ccode_nz, 1, 1)
    bias = block.bias.data.copy() if block.bias is not None else None
    bn_inter = copy.deepcopy(block.bn_inter) if block.bn_inter is not None else None

    compressed = CompressedConv2d(
        code_weight, expansion_weight, stride=block.stride, padding=block.padding,
        bias=bias, sigma_inter=block.config.sigma_inter, bn_inter=bn_inter,
        name=block.block_name,
    )
    record = CompressionRecord(
        name=block.block_name,
        original_filters=block.out_channels,
        kept_filters=int(keep.size),
        original_params=block.original_params(),
        compressed_params=compressed.num_weight_params(),
    )
    return compressed, record


def compress_model(model: Module, inplace: bool = False) -> CompressionResult:
    """Replace every ALF block of ``model`` with its dense deployed form.

    By default the input model is left untouched and a deep copy is
    compressed and returned.
    """
    target = model if inplace else copy.deepcopy(model)
    records: List[CompressionRecord] = []
    for parent_name, parent in target.named_modules():
        for child_name, child in list(parent._modules.items()):
            if isinstance(child, ALFConv2d):
                compressed, record = compress_block(child)
                setattr(parent, child_name, compressed)
                records.append(record)
    return CompressionResult(model=target, records=records)


def compressed_blocks(model: Module) -> List[CompressedConv2d]:
    """All deployed (compressed) blocks in a model."""
    return [m for m in model.modules() if isinstance(m, CompressedConv2d)]
