"""The ALF block: autoencoder-compressed convolution plus expansion layer.

An :class:`ALFConv2d` is a drop-in replacement for a standard
:class:`repro.nn.Conv2d`.  During training the convolution does not use the
raw filter bank ``W`` but the autoencoder code ``Wcode`` (with pruned
filters zeroed); a point-wise expansion convolution ``Wexp`` maps the
intermediate feature map back to the original number of output channels so
downstream layers are unaffected (Eq. 1 of the paper).  Gradients of the
task loss reach ``W`` through a straight-through estimator (Eq. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn import init as init_mod
from ..nn.layers import BatchNorm2d
from ..nn.module import Module, Parameter
from ..nn.ste import ste_bridge
from ..nn.tensor import Tensor
from .autoencoder import WeightAutoencoder
from .config import ALFConfig
from .schedule import nu_prune


def ccode_max(in_channels: int, out_channels: int, kernel_size: int) -> int:
    """Maximum code size for which the ALF block beats a standard convolution.

    Eq. 2 of the paper: the code convolution plus the point-wise expansion
    layer are only cheaper than the original convolution if
    ``Ccode < Ci*Co*K^2 / (Ci*K^2 + Co)``.
    """
    if min(in_channels, out_channels, kernel_size) <= 0:
        raise ValueError("channel counts and kernel size must be positive")
    numerator = in_channels * out_channels * kernel_size ** 2
    denominator = in_channels * kernel_size ** 2 + out_channels
    return numerator // denominator


@dataclass
class ALFBlockStats:
    """Snapshot of an ALF block's compression state."""

    name: str
    total_filters: int
    active_filters: int
    zero_fraction: float
    ccode_max: int
    meets_efficiency_bound: bool


class ALFConv2d(Module):
    """Convolution whose filters are compressed online by a sparse autoencoder."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = False,
                 config: Optional[ALFConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 name: Optional[str] = None):
        super().__init__()
        self.config = (config or ALFConfig()).validate()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = stride
        self.padding = padding
        self.block_name = name or f"alf_{in_channels}x{out_channels}x{kernel_size}"

        rng = rng or np.random.default_rng(self.config.seed)

        # Task-trainable variables: the original filter bank W, the expansion
        # layer Wexp and (optionally) a bias on the expansion output.
        self.weight = Parameter(init_mod.he_normal(
            (out_channels, in_channels, self.kernel_size, self.kernel_size), rng=rng))
        wexp_init = init_mod.get_initializer(self.config.wexp_init)
        self.expansion = Parameter(wexp_init((out_channels, out_channels, 1, 1), rng=rng))
        self.bias = Parameter(init_mod.zeros((out_channels,))) if bias else None

        # Autoencoder variables (trained by the dedicated AE optimizer only).
        self.autoencoder = WeightAutoencoder(
            out_channels,
            threshold=self.config.threshold,
            sigma_ae=self.config.sigma_ae,
            weight_init=self.config.wae_init,
            mask_init=self.config.mask_init,
            enable_mask=self.config.enable_mask,
            rng=rng,
        )

        # Optional intermediate activation / BN between code conv and expansion.
        self._sigma_inter = F.get_activation(self.config.sigma_inter)
        self.bn_inter = BatchNorm2d(out_channels) if self.config.use_bn_inter else None

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        code_values = self.autoencoder.compute_code(self.weight.data)
        # Straight-through estimator: the conv uses Wcode's values but the
        # task gradient lands directly on W (Eq. 5).
        wcode = ste_bridge(code_values, self.weight)
        a_tilde = F.conv2d(x, wcode, stride=self.stride, padding=self.padding)
        a_tilde = self._sigma_inter(a_tilde)
        if self.bn_inter is not None:
            a_tilde = self.bn_inter(a_tilde)
        return F.conv2d(a_tilde, self.expansion, self.bias, stride=1, padding=0)

    # ------------------------------------------------------------------ #
    # Parameter bookkeeping for the two-player training scheme
    # ------------------------------------------------------------------ #
    def task_parameters(self) -> List[Parameter]:
        """Variables updated by the task optimizer (W, Wexp, bias, BN)."""
        params = [self.weight, self.expansion]
        if self.bias is not None:
            params.append(self.bias)
        if self.bn_inter is not None:
            params.extend([self.bn_inter.gamma, self.bn_inter.beta])
        return params

    def regularized_parameters(self) -> List[Parameter]:
        """Task parameters that receive weight decay.

        The paper explicitly exempts ``W`` (and therefore ``Wcode``) from any
        regularization because the autoencoder already injects noise into its
        gradient; the expansion layer and BN affine terms are regular
        parameters and keep their weight decay.
        """
        params = [self.expansion]
        if self.bias is not None:
            params.append(self.bias)
        if self.bn_inter is not None:
            params.extend([self.bn_inter.gamma, self.bn_inter.beta])
        return params

    def autoencoder_parameters(self) -> List[Parameter]:
        """Variables updated by the autoencoder optimizer (Wenc, Wdec, M)."""
        return self.autoencoder.autoencoder_parameters()

    # ------------------------------------------------------------------ #
    # Autoencoder loss (second player)
    # ------------------------------------------------------------------ #
    def autoencoder_loss(self) -> Tuple[Tensor, float]:
        """Return ``(Lae, nu_prune)`` for the current state of the block."""
        weight_matrix = Tensor(
            self.weight.data.reshape(self.out_channels, -1).T.copy()
        )
        output = self.autoencoder(weight_matrix)
        rec_loss = self.autoencoder.reconstruction_loss(weight_matrix, output)
        theta = self.autoencoder.zero_fraction()
        scale = nu_prune(theta, slope=self.config.slope, pr_max=self.config.pr_max)
        loss = rec_loss + self.autoencoder.sparsity_loss() * scale
        return loss, scale

    # ------------------------------------------------------------------ #
    # Compression accounting
    # ------------------------------------------------------------------ #
    def active_filters(self) -> int:
        """Number of code filters that currently survive the pruning mask."""
        code = self.autoencoder.compute_code(self.weight.data)
        per_filter = np.abs(code).reshape(self.out_channels, -1).sum(axis=1)
        return int(np.count_nonzero(per_filter > 0))

    def keep_indices(self) -> np.ndarray:
        """Indices of the code filters kept at deployment time."""
        code = self.autoencoder.compute_code(self.weight.data)
        per_filter = np.abs(code).reshape(self.out_channels, -1).sum(axis=1)
        return np.nonzero(per_filter > 0)[0]

    def ccode_max(self) -> int:
        return ccode_max(self.in_channels, self.out_channels, self.kernel_size)

    def stats(self) -> ALFBlockStats:
        active = self.active_filters()
        bound = self.ccode_max()
        return ALFBlockStats(
            name=self.block_name,
            total_filters=self.out_channels,
            active_filters=active,
            zero_fraction=1.0 - active / self.out_channels,
            ccode_max=bound,
            meets_efficiency_bound=active < bound,
        )

    def original_macs(self, input_hw: Tuple[int, int]) -> int:
        """MACs of the standard convolution this block replaces."""
        out_h = F.conv_output_size(input_hw[0], self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(input_hw[1], self.kernel_size, self.stride, self.padding)
        return (self.in_channels * self.out_channels * self.kernel_size ** 2) * out_h * out_w

    def compressed_macs(self, input_hw: Tuple[int, int],
                        active: Optional[int] = None) -> int:
        """MACs of the deployed block (code conv + expansion) with pruned filters removed."""
        active = self.active_filters() if active is None else active
        out_h = F.conv_output_size(input_hw[0], self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(input_hw[1], self.kernel_size, self.stride, self.padding)
        code_macs = self.in_channels * active * self.kernel_size ** 2 * out_h * out_w
        expansion_macs = active * self.out_channels * out_h * out_w
        return code_macs + expansion_macs

    def original_params(self) -> int:
        return self.in_channels * self.out_channels * self.kernel_size ** 2

    def compressed_params(self, active: Optional[int] = None) -> int:
        active = self.active_filters() if active is None else active
        code_params = self.in_channels * active * self.kernel_size ** 2
        expansion_params = active * self.out_channels
        return code_params + expansion_params

    def __repr__(self) -> str:
        return (f"ALFConv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"stride={self.stride}, active={self.active_filters()}/{self.out_channels})")
