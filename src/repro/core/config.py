"""Configuration for ALF blocks and the two-player training scheme.

Defaults follow Sec. IV of the paper: the Xavier initialization is used for
the expansion layer and the autoencoder weights, ``tanh`` is the
autoencoder activation, no intermediate activation or batch-norm is
inserted after the code convolution, the mask threshold is ``t = 1e-4``,
the autoencoder learning rate is ``1e-3`` and the pruning-sensitivity
schedule uses ``m = 8`` and ``pr_max = 0.85``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np


@dataclass
class ALFConfig:
    """Hyper-parameters of an ALF block and its autoencoder optimizer.

    Attributes
    ----------
    threshold:
        Clipping threshold ``t`` below which mask entries are zeroed.
    lr_autoencoder:
        Learning rate of the per-layer autoencoder SGD optimizer.
    slope:
        Slope ``m`` of the pruning-sensitivity schedule (Sec. III-B).
    pr_max:
        Maximum pruning rate ``pr_max`` of the schedule.
    sigma_ae:
        Activation applied inside the autoencoder (``tanh`` in the paper).
    sigma_inter:
        Optional activation between the code convolution and the expansion
        layer (``None`` performed best in Fig. 2a/2b).
    use_bn_inter:
        Whether to insert a BatchNorm between code conv and expansion layer.
    wexp_init / wae_init:
        Initialization scheme names for the expansion layer and the
        autoencoder weights (``xavier`` chosen in the paper).
    mask_init:
        Initial value of every pruning-mask entry.
    enable_mask:
        If false the pruning mask is bypassed entirely (Fig. 2b setup).
    weight_decay:
        L2 regularization factor ``nu_wd`` of the task loss (applied to all
        task parameters except ``W`` and ``Wcode``).
    momentum:
        Momentum of the task SGD optimizer.
    lr_task:
        Learning rate of the task optimizer.
    dtype:
        Optional compute dtype for the whole training run (``"float32"`` /
        ``"float64"``); ``None`` defers to the active backend's default.
    """

    threshold: float = 1e-4
    lr_autoencoder: float = 1e-3
    slope: float = 8.0
    pr_max: float = 0.85
    sigma_ae: str = "tanh"
    sigma_inter: Optional[str] = None
    use_bn_inter: bool = False
    wexp_init: str = "xavier"
    wae_init: str = "xavier"
    mask_init: float = 1.0
    enable_mask: bool = True
    weight_decay: float = 1e-4
    momentum: float = 0.9
    lr_task: float = 0.1
    dtype: Optional[str] = None
    seed: int = 0

    def validate(self) -> "ALFConfig":
        """Raise ``ValueError`` for out-of-range hyper-parameters."""
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if not 0.0 <= self.pr_max <= 1.0:
            raise ValueError("pr_max must lie in [0, 1]")
        if self.slope <= 0:
            raise ValueError("slope must be positive")
        if self.lr_autoencoder <= 0 or self.lr_task <= 0:
            raise ValueError("learning rates must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if self.mask_init < 0:
            raise ValueError("mask_init must be non-negative")
        if self.dtype is not None and np.dtype(self.dtype).kind != "f":
            raise ValueError("dtype must be a floating dtype (e.g. 'float32')")
        return self

    def with_overrides(self, **kwargs) -> "ALFConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs).validate()


# The configuration chosen by the paper after the design-space exploration
# (Fig. 2a/2b/2c): xavier everywhere, tanh autoencoder, no sigma_inter,
# t = 1e-4, lr_ae = 1e-3, m = 8, pr_max = 0.85.
PAPER_DEFAULT = ALFConfig()
