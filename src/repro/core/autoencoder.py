"""Sparse weight autoencoder used inside every ALF block.

The autoencoder sees the layer's filter bank ``W`` flattened to a matrix of
shape ``(Ci*K*K, Co)`` — one column per output filter.  The encoder mixes
filters along the output-channel dimension (``Wenc`` of shape ``(Co, Co)``),
the pruning mask gates the resulting code columns, and the decoder
reconstructs the original filters (``Wdec`` of shape ``(Co, Co)``).  During
training the autoencoder is optimized with its own SGD instance on
``Lae = MSE(W, Wrec) + nu_prune * Lprune`` (Sec. III-A/III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn import init as init_mod
from ..nn.loss import mse_loss
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor
from .mask import PruningMask


@dataclass
class AutoencoderOutput:
    """Forward-pass products of the weight autoencoder."""

    code: Tensor          # Wcode, shape (Ci*K*K, Co), masked and activated
    reconstruction: Tensor  # Wrec, shape (Ci*K*K, Co)
    pre_code: Tensor      # W~code before mask/activation (diagnostics)


class WeightAutoencoder(Module):
    """Encoder / pruning-mask / decoder operating on a flattened filter bank."""

    def __init__(self, num_filters: int, threshold: float = 1e-4,
                 sigma_ae: str = "tanh", weight_init: str = "xavier",
                 mask_init: float = 1.0, enable_mask: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_filters = num_filters
        self.sigma_ae_name = sigma_ae
        self._sigma_ae = F.get_activation(sigma_ae)
        initializer = init_mod.get_initializer(weight_init)
        self.encoder = Parameter(initializer((num_filters, num_filters), rng=rng))
        self.decoder = Parameter(initializer((num_filters, num_filters), rng=rng))
        self.pruning_mask = PruningMask(
            num_filters, threshold=threshold, init_value=mask_init, enabled=enable_mask
        )

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def encode(self, weight_matrix: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(Wcode, W~code)`` for a ``(Ci*K*K, Co)`` weight matrix."""
        pre_code = weight_matrix @ self.encoder
        mask = self.pruning_mask()
        code = self._sigma_ae(pre_code * mask.reshape(1, -1))
        return code, pre_code

    def decode(self, code: Tensor) -> Tensor:
        """Reconstruct the filter bank from the code."""
        return self._sigma_ae(code @ self.decoder)

    def forward(self, weight_matrix: Tensor) -> AutoencoderOutput:
        code, pre_code = self.encode(weight_matrix)
        reconstruction = self.decode(code)
        return AutoencoderOutput(code=code, reconstruction=reconstruction, pre_code=pre_code)

    # ------------------------------------------------------------------ #
    # Losses
    # ------------------------------------------------------------------ #
    def reconstruction_loss(self, weight_matrix: Tensor,
                            output: Optional[AutoencoderOutput] = None) -> Tensor:
        """``Lrec = MSE(W, Wrec)``; recomputes the forward pass if needed."""
        if output is None:
            output = self.forward(weight_matrix)
        return mse_loss(output.reconstruction, weight_matrix.detach())

    def sparsity_loss(self) -> Tensor:
        """``Lprune`` delegated to the pruning mask."""
        return self.pruning_mask.sparsity_loss()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def zero_fraction(self) -> float:
        return self.pruning_mask.zero_fraction()

    def keep_indicator(self) -> np.ndarray:
        return self.pruning_mask.keep_indicator()

    def num_active_filters(self) -> int:
        return self.pruning_mask.num_active()

    def autoencoder_parameters(self):
        """Parameters updated by the dedicated autoencoder optimizer."""
        return [self.encoder, self.decoder, self.pruning_mask.mask]

    def compute_code(self, weight: np.ndarray) -> np.ndarray:
        """Numpy-only code computation used on the task path (behind an STE).

        ``weight`` has shape ``(Co, Ci, K, K)``; the result has the same
        shape but with pruned filters zeroed and the autoencoder activation
        applied.
        """
        co = weight.shape[0]
        if co != self.num_filters:
            raise ValueError(
                f"weight has {co} filters but autoencoder was built for {self.num_filters}"
            )
        weight_matrix = weight.reshape(co, -1).T          # (Ci*K*K, Co)
        pre_code = weight_matrix @ self.encoder.data
        mask = self.pruning_mask().data.reshape(1, -1)
        code = self._activation_np(pre_code * mask)
        return code.T.reshape(weight.shape)

    def _activation_np(self, values: np.ndarray) -> np.ndarray:
        name = self.sigma_ae_name.lower() if self.sigma_ae_name else "none"
        if name == "tanh":
            return np.tanh(values)
        if name == "sigmoid":
            return 1.0 / (1.0 + np.exp(-values))
        if name == "relu":
            return np.maximum(values, 0.0)
        return values

    def __repr__(self) -> str:
        return (f"WeightAutoencoder(filters={self.num_filters}, sigma_ae={self.sigma_ae_name}, "
                f"active={self.num_active_filters()})")
