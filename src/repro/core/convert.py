"""Convert standard CNNs into ALF form by swapping convolutions for ALF blocks.

The paper applies ALF to the (3x3) convolutional layers of Plain-20,
ResNet-20 and ResNet-18; 1x1 projection shortcuts and the fully-connected
classifier are left untouched.  :func:`convert_to_alf` walks an arbitrary
model built from :mod:`repro.nn` modules and performs that substitution.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..nn.layers import Conv2d
from ..nn.module import Module
from .alf_block import ALFConv2d
from .config import ALFConfig


def default_convert_predicate(name: str, conv: Conv2d) -> bool:
    """Replace every convolution except point-wise (1x1) projections."""
    return conv.kernel_size[0] > 1 and conv.kernel_size[1] > 1


def convert_to_alf(model: Module, config: Optional[ALFConfig] = None,
                   predicate: Optional[Callable[[str, Conv2d], bool]] = None,
                   copy_weights: bool = True,
                   rng: Optional[np.random.Generator] = None) -> List[Tuple[str, ALFConv2d]]:
    """Replace eligible ``Conv2d`` layers of ``model`` with :class:`ALFConv2d` in place.

    Parameters
    ----------
    model:
        Any module tree built from ``repro.nn`` components.
    config:
        ALF hyper-parameters shared by all created blocks.
    predicate:
        ``(qualified_name, conv) -> bool`` deciding which convolutions are
        converted.  Defaults to "every conv with a spatial kernel".
    copy_weights:
        If true, the new block's ``W`` is initialized from the existing
        convolution weights (useful when starting from a trained model,
        although the paper trains from scratch).

    Returns
    -------
    list of (qualified name, block) pairs, in traversal order.
    """
    config = (config or ALFConfig()).validate()
    predicate = predicate or default_convert_predicate
    rng = rng or np.random.default_rng(config.seed)
    converted: List[Tuple[str, ALFConv2d]] = []

    for parent_name, parent in model.named_modules():
        for child_name, child in list(parent._modules.items()):
            if not isinstance(child, Conv2d):
                continue
            qualified = f"{parent_name}.{child_name}" if parent_name else child_name
            if not predicate(qualified, child):
                continue
            if child.kernel_size[0] != child.kernel_size[1]:
                raise ValueError(f"ALF blocks require square kernels, got {child.kernel_size}")
            block = ALFConv2d(
                child.in_channels, child.out_channels, child.kernel_size[0],
                stride=child.stride[0], padding=child.padding[0],
                bias=child.bias is not None, config=config, rng=rng, name=qualified,
            )
            if copy_weights:
                block.weight.data = child.weight.data.copy()
                if child.bias is not None and block.bias is not None:
                    block.bias.data = child.bias.data.copy()
            setattr(parent, child_name, block)
            converted.append((qualified, block))
    return converted


def alf_blocks(model: Module) -> List[ALFConv2d]:
    """All ALF blocks of a model, in traversal order."""
    return [m for m in model.modules() if isinstance(m, ALFConv2d)]


def named_alf_blocks(model: Module) -> List[Tuple[str, ALFConv2d]]:
    """(name, block) pairs for all ALF blocks of a model."""
    return [(name, m) for name, m in model.named_modules() if isinstance(m, ALFConv2d)]
