"""Trainable pruning mask with threshold clipping and STE gradients.

The mask ``M`` (one scalar per output filter of the code) is driven towards
zero by an L1 penalty; entries whose magnitude falls below the threshold
``t`` are clipped to exactly zero in the forward pass but keep receiving
gradients through a straight-through estimator, which lets a filter recover
if the task later needs it (Sec. III-A of the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.backend import get_default_dtype
from ..nn.module import Module, Parameter
from ..nn.ste import binary_indicator, clip_mask
from ..nn.tensor import Tensor


class PruningMask(Module):
    """Per-filter gate ``Mprune = 1{|m| > t} * m`` with trainable ``m``."""

    def __init__(self, num_filters: int, threshold: float = 1e-4,
                 init_value: float = 1.0, enabled: bool = True):
        super().__init__()
        if num_filters <= 0:
            raise ValueError("num_filters must be positive")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.num_filters = num_filters
        self.threshold = threshold
        self.enabled = enabled
        self.mask = Parameter(np.full(num_filters, float(init_value),
                                    dtype=get_default_dtype()))

    def forward(self) -> Tensor:
        """Return the clipped mask ``Mprune`` as a length-``Co`` tensor."""
        if not self.enabled:
            return Tensor(np.ones(self.num_filters, dtype=self.mask.data.dtype))
        return clip_mask(self.mask, self.threshold)

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def keep_indicator(self) -> np.ndarray:
        """Boolean array: True for filters currently kept (non-zero)."""
        if not self.enabled:
            return np.ones(self.num_filters, dtype=bool)
        return binary_indicator(self.mask, self.threshold)

    def num_active(self) -> int:
        """Number of filters surviving the clip."""
        return int(self.keep_indicator().sum())

    def num_pruned(self) -> int:
        return self.num_filters - self.num_active()

    def zero_fraction(self) -> float:
        """theta = Ccode,zero / Ccode used by the pruning schedule."""
        return self.num_pruned() / self.num_filters

    def sparsity_loss(self) -> Tensor:
        """``Lprune = 1/Co * sum_i |m_i|`` over the *unclipped* mask."""
        return self.mask.abs().sum() * (1.0 / self.num_filters)

    def reset(self, value: Optional[float] = None) -> None:
        """Reset all mask entries (e.g. before a fresh training run)."""
        self.mask.data = np.full(self.num_filters,
                                 float(value if value is not None else 1.0),
                                 dtype=self.mask.data.dtype)
        self.mask.zero_grad()

    def __repr__(self) -> str:
        return (f"PruningMask(filters={self.num_filters}, threshold={self.threshold}, "
                f"active={self.num_active()})")
