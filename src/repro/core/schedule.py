"""Pruning-sensitivity schedule for the mask regularizer.

The autoencoder loss is ``Lae = Lrec + nu_prune * Lprune`` where the scaling
factor ``nu_prune = max(0, 1 - exp(m * (theta - pr_max)))`` decays as the
zero-fraction ``theta`` of the code approaches the maximum pruning rate
``pr_max`` (Sec. III-B).  This mirrors the layer "pruning sensitivity" idea
of Han et al. and slows pruning down towards the end of training.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


def nu_prune(theta: float, slope: float = 8.0, pr_max: float = 0.85) -> float:
    """Scaling factor of the mask regularizer.

    Parameters
    ----------
    theta:
        Current zero-fraction of the code (``Ccode,zero / Ccode``).
    slope:
        Sensitivity slope ``m`` in ``[1, 10]``.
    pr_max:
        Maximum pruning rate in ``[0, 1]``.

    Returns
    -------
    float
        A value in ``[0, 1)`` that is close to 1 when nothing is pruned and
        reaches 0 once ``theta >= pr_max``.
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must lie in [0, 1], got {theta}")
    return max(0.0, 1.0 - math.exp(slope * (theta - pr_max)))


@dataclass
class PruningSchedule:
    """Stateful wrapper around :func:`nu_prune` that records its trajectory."""

    slope: float = 8.0
    pr_max: float = 0.85

    def __post_init__(self):
        self.history: List[float] = []

    def __call__(self, theta: float) -> float:
        value = nu_prune(theta, slope=self.slope, pr_max=self.pr_max)
        self.history.append(value)
        return value

    def saturated(self, theta: float) -> bool:
        """True once the target pruning rate has been reached."""
        return theta >= self.pr_max
