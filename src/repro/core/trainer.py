"""Two-player training scheme for ALF, plus a plain classifier trainer.

The :class:`ALFTrainer` realizes the training procedure of Sec. III-B:

* the **task optimizer** (SGD with momentum) updates the CNN weights ``W``,
  the expansion layers and all ordinary parameters, minimizing
  ``Ltask = LCE + nu_wd * Lreg`` (no regularization on the ALF filter
  banks);
* one **autoencoder optimizer** per ALF block (plain SGD) updates
  ``Wenc, Wdec, M`` minimizing ``Lae = Lrec + nu_prune * Lprune``.

Both run in every training step; the autoencoder sees the *current* filter
bank as its input, the task loss sees the *current* code through the STE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.loss import accuracy, cross_entropy, l2_regularization
from ..nn.module import Module, Parameter
from ..nn.optim import SGD, LRScheduler
from ..nn.tensor import Tensor, no_grad
from .alf_block import ALFConv2d
from .config import ALFConfig
from .convert import alf_blocks


def evaluate_accuracy(model: Module, loader: Iterable[Tuple[np.ndarray, np.ndarray]],
                      dtype=None) -> float:
    """Top-1 accuracy of ``model`` over a loader of ``(images, labels)`` pairs.

    Runs tape-free: evaluation is wrapped in
    :func:`~repro.nn.tensor.no_grad` (on top of eval mode) so no autograd
    state is allocated per batch.  ``dtype`` optionally casts the batches
    (trainers pass their own compute dtype so validation matches training
    precision).
    """
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images, dtype=dtype))
            correct += int((np.argmax(logits.data, axis=1) == labels).sum())
            total += len(labels)
    model.train(was_training)
    return correct / max(1, total)


@dataclass
class EpochStats:
    """Metrics recorded for one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_accuracy: Optional[float] = None
    remaining_filters: float = 1.0
    per_block_active: Dict[str, int] = field(default_factory=dict)
    nu_prune_mean: float = 0.0


@dataclass
class TrainingHistory:
    """Sequence of per-epoch statistics produced by a trainer."""

    epochs: List[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    def series(self, attribute: str) -> List[float]:
        return [getattr(e, attribute) for e in self.epochs]

    @property
    def final(self) -> EpochStats:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1]

    def best_val_accuracy(self) -> float:
        values = [e.val_accuracy for e in self.epochs if e.val_accuracy is not None]
        return max(values) if values else float("nan")


class ClassifierTrainer:
    """Plain SGD training of an (uncompressed or baseline) classifier.

    ``dtype`` optionally casts the model and every incoming batch (e.g.
    ``"float32"`` for the fast path); ``None`` keeps the backend default.
    """

    def __init__(self, model: Module, lr: float = 0.1, momentum: float = 0.9,
                 weight_decay: float = 1e-4,
                 scheduler_factory=None, dtype=None):
        self.model = model
        self.dtype = np.dtype(dtype) if dtype is not None else None
        if self.dtype is not None:
            model.astype(self.dtype)
        self.optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                             weight_decay=weight_decay)
        self.scheduler: Optional[LRScheduler] = (
            scheduler_factory(self.optimizer) if scheduler_factory else None
        )
        self.history = TrainingHistory()

    def train_batch(self, images: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
        self.model.train()
        logits = self.model(Tensor(images, dtype=self.dtype))
        loss = cross_entropy(logits, labels)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.data), accuracy(logits, labels)

    def evaluate(self, loader: Iterable[Tuple[np.ndarray, np.ndarray]]) -> float:
        return evaluate_accuracy(self.model, loader, dtype=self.dtype)

    def fit(self, train_loader, val_loader=None, epochs: int = 1) -> TrainingHistory:
        for epoch in range(1, epochs + 1):
            losses: List[float] = []
            accs: List[float] = []
            for images, labels in train_loader:
                loss, acc = self.train_batch(images, labels)
                losses.append(loss)
                accs.append(acc)
            val_acc = self.evaluate(val_loader) if val_loader is not None else None
            self.history.append(EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(losses)) if losses else float("nan"),
                train_accuracy=float(np.mean(accs)) if accs else float("nan"),
                val_accuracy=val_acc,
            ))
            if self.scheduler is not None:
                self.scheduler.step()
        return self.history


class ALFTrainer:
    """Two-player trainer: task optimizer + one autoencoder optimizer per block."""

    def __init__(self, model: Module, config: Optional[ALFConfig] = None):
        self.model = model
        self.config = (config or ALFConfig()).validate()
        self.dtype = np.dtype(self.config.dtype) if self.config.dtype is not None else None
        if self.dtype is not None:
            model.astype(self.dtype)
        self.blocks: List[ALFConv2d] = alf_blocks(model)
        if not self.blocks:
            raise ValueError("model contains no ALF blocks; call convert_to_alf first")

        ae_param_ids = {
            id(p) for block in self.blocks for p in block.autoencoder_parameters()
        }
        self.task_params: List[Parameter] = [
            p for p in model.parameters() if id(p) not in ae_param_ids
        ]
        alf_weight_ids = {id(block.weight) for block in self.blocks}
        self.regularized_params: List[Parameter] = [
            p for p in self.task_params if id(p) not in alf_weight_ids
        ]

        self.task_optimizer = SGD(
            self.task_params, lr=self.config.lr_task, momentum=self.config.momentum,
            weight_decay=0.0,
        )
        self.ae_optimizers: List[SGD] = [
            SGD(block.autoencoder_parameters(), lr=self.config.lr_autoencoder)
            for block in self.blocks
        ]
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    # Single optimization step of the two-player game
    # ------------------------------------------------------------------ #
    def train_batch(self, images: np.ndarray, labels: np.ndarray) -> Tuple[float, float, float]:
        """One task step followed by one autoencoder step per block.

        Returns ``(task_loss, batch_accuracy, mean_nu_prune)``.
        """
        self.model.train()

        # --- Player 1: task optimizer ---------------------------------- #
        logits = self.model(Tensor(images, dtype=self.dtype))
        task_loss = cross_entropy(logits, labels)
        if self.config.weight_decay > 0 and self.regularized_params:
            task_loss = task_loss + l2_regularization(self.regularized_params) * self.config.weight_decay
        self.task_optimizer.zero_grad()
        task_loss.backward()
        self.task_optimizer.step()

        # --- Player 2: autoencoder optimizers -------------------------- #
        scales: List[float] = []
        for block, optimizer in zip(self.blocks, self.ae_optimizers):
            ae_loss, scale = block.autoencoder_loss()
            optimizer.zero_grad()
            ae_loss.backward()
            optimizer.step()
            scales.append(scale)

        return float(task_loss.data), accuracy(logits, labels), float(np.mean(scales))

    # ------------------------------------------------------------------ #
    # Epoch-level API
    # ------------------------------------------------------------------ #
    def evaluate(self, loader: Iterable[Tuple[np.ndarray, np.ndarray]]) -> float:
        return evaluate_accuracy(self.model, loader, dtype=self.dtype)

    def remaining_filter_fraction(self) -> float:
        """Fraction of code filters still active, across all ALF blocks."""
        active = sum(block.active_filters() for block in self.blocks)
        total = sum(block.out_channels for block in self.blocks)
        return active / max(1, total)

    def per_block_active(self) -> Dict[str, int]:
        return {block.block_name: block.active_filters() for block in self.blocks}

    def fit(self, train_loader, val_loader=None, epochs: int = 1,
            lr_schedule: Optional[Sequence[float]] = None) -> TrainingHistory:
        """Train for ``epochs`` passes over ``train_loader``.

        ``lr_schedule`` optionally gives the task learning rate per epoch.
        """
        for epoch in range(1, epochs + 1):
            if lr_schedule is not None:
                self.task_optimizer.set_lr(lr_schedule[min(epoch - 1, len(lr_schedule) - 1)])
            losses: List[float] = []
            accs: List[float] = []
            scales: List[float] = []
            for images, labels in train_loader:
                loss, acc, scale = self.train_batch(images, labels)
                losses.append(loss)
                accs.append(acc)
                scales.append(scale)
            val_acc = self.evaluate(val_loader) if val_loader is not None else None
            self.history.append(EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(losses)) if losses else float("nan"),
                train_accuracy=float(np.mean(accs)) if accs else float("nan"),
                val_accuracy=val_acc,
                remaining_filters=self.remaining_filter_fraction(),
                per_block_active=self.per_block_active(),
                nu_prune_mean=float(np.mean(scales)) if scales else 0.0,
            ))
        return self.history
