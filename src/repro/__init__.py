"""Reproduction of "ALF: Autoencoder-based Low-rank Filter-sharing for
Efficient Convolutional Neural Networks" (Frickenstein et al., DAC 2020).

Subpackages
-----------
``repro.nn``
    Numpy deep-learning framework (autograd, layers, optimizers).
``repro.core``
    The ALF method: ALF blocks, two-player trainer, deployment compression.
``repro.models``
    CNN architectures used in the paper (Plain-20, ResNet-20/18, ...).
``repro.data``
    Synthetic CIFAR-10 / ImageNet stand-ins and data loading.
``repro.baselines``
    Compression baselines (magnitude, FPGM, AMC-style RL, LCNN, low-rank).
``repro.hardware``
    Analytical Eyeriss/Timeloop-style hardware model (energy / latency).
``repro.metrics``
    OPs / parameter counters and compression reporting.
``repro.deploy``
    Compiled inference: static plans over a preallocated buffer arena,
    with optional streaming (row-banded) convolution under a memory budget.
``repro.experiments``
    One module per paper table/figure reproducing its rows or series.
``repro.api``
    The unified compression pipeline: ``repro.api.compress(model,
    method="alf", ...)`` drives any registered method (ALF or baseline)
    and returns a report combining cost, accuracy and hardware metrics.
"""

import importlib

__version__ = "1.1.0"

from . import nn  # noqa: F401

#: Subpackages importable lazily as ``repro.<name>`` plus the two façade
#: entry points re-exported at the top level (``repro.compress(...)``).
_LAZY_SUBMODULES = (
    "api", "baselines", "core", "data", "deploy", "experiments", "hardware",
    "metrics", "models",
)
_API_REEXPORTS = ("compress", "run_sweep", "CompressionSpec", "CompressionReport")


def __getattr__(name):
    if name in _LAZY_SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    if name in _API_REEXPORTS:
        return getattr(importlib.import_module(".api", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_LAZY_SUBMODULES) + list(_API_REEXPORTS))


__all__ = ["nn", "__version__", *_LAZY_SUBMODULES, *_API_REEXPORTS]
