"""Reproduction of "ALF: Autoencoder-based Low-rank Filter-sharing for
Efficient Convolutional Neural Networks" (Frickenstein et al., DAC 2020).

Subpackages
-----------
``repro.nn``
    Numpy deep-learning framework (autograd, layers, optimizers).
``repro.core``
    The ALF method: ALF blocks, two-player trainer, deployment compression.
``repro.models``
    CNN architectures used in the paper (Plain-20, ResNet-20/18, ...).
``repro.data``
    Synthetic CIFAR-10 / ImageNet stand-ins and data loading.
``repro.baselines``
    Compression baselines (magnitude, FPGM, AMC-style RL, LCNN, low-rank).
``repro.hardware``
    Analytical Eyeriss/Timeloop-style hardware model (energy / latency).
``repro.metrics``
    OPs / parameter counters and compression reporting.
``repro.experiments``
    One module per paper table/figure reproducing its rows or series.
"""

__version__ = "1.0.0"

from . import nn  # noqa: F401

__all__ = ["nn", "__version__"]
