"""Experiments E8/E9 — ablations on design choices called out in DESIGN.md.

* **E8 — Ccode,max bound (Eq. 2)**: sweep layer geometries and verify when
  an ALF block (code conv + expansion) is cheaper than the standard
  convolution it replaces.
* **E9 — STE and pruning-sensitivity schedule**: micro training runs with
  the straight-through estimator replaced by the raw (mask-blocked)
  gradient, and with the nu_prune schedule disabled, to quantify why the
  paper includes both mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ALFConfig, ALFTrainer, ccode_max, convert_to_alf
from ..core.schedule import nu_prune
from ..metrics.tables import render_table
from ..nn.utils import seed_everything
from .runtime import ExperimentScale, get_scale


# --------------------------------------------------------------------------- #
# E8 — efficiency bound of Eq. 2
# --------------------------------------------------------------------------- #
@dataclass
class CcodeMaxPoint:
    in_channels: int
    out_channels: int
    kernel_size: int
    bound: int
    bound_fraction: float      # bound / out_channels


def sweep_ccode_max(channel_counts: Sequence[int] = (16, 32, 64, 128, 256, 512),
                    kernel_sizes: Sequence[int] = (1, 3, 5, 7)) -> List[CcodeMaxPoint]:
    """Evaluate Eq. 2 over a grid of (Ci = Co, K) configurations."""
    points: List[CcodeMaxPoint] = []
    for channels in channel_counts:
        for kernel in kernel_sizes:
            bound = ccode_max(channels, channels, kernel)
            points.append(CcodeMaxPoint(
                in_channels=channels, out_channels=channels, kernel_size=kernel,
                bound=bound, bound_fraction=bound / channels,
            ))
    return points


def alf_block_cost_ratio(in_channels: int, out_channels: int, kernel_size: int,
                         code_channels: int) -> float:
    """(ALF block MACs) / (standard conv MACs); < 1 means the block is cheaper."""
    standard = in_channels * out_channels * kernel_size ** 2
    block = code_channels * (in_channels * kernel_size ** 2 + out_channels)
    return block / standard


def render_ccode_max(points: Sequence[CcodeMaxPoint]) -> str:
    headers = ["Ci=Co", "K", "Ccode,max", "Ccode,max / Co"]
    rows = [[p.in_channels, p.kernel_size, p.bound, f"{p.bound_fraction:.2f}"] for p in points]
    return render_table(headers, rows, title="Eq. 2 — efficiency bound Ccode,max")


# --------------------------------------------------------------------------- #
# E9 — STE and schedule ablation
# --------------------------------------------------------------------------- #
@dataclass
class AblationRun:
    label: str
    accuracy: float
    remaining_filters: float


def _train_variant(preset: ExperimentScale, config: ALFConfig, seed: int,
                   epochs: Optional[int], disable_ste: bool) -> AblationRun:
    from ..core.alf_block import ALFConv2d
    from ..nn import functional as F
    from ..nn.tensor import Tensor

    rng = seed_everything(seed)
    model = preset.build_proxy("plain", rng=rng)
    convert_to_alf(model, config, rng=np.random.default_rng(seed + 1))

    if disable_ste:
        # Replace the STE bridge by the "naive" path: the conv consumes the
        # masked code directly, so gradients towards W are blocked wherever
        # the mask is zero (the failure mode Sec. III-B warns about).
        def naive_forward(self, x):
            mask = self.autoencoder.pruning_mask().reshape(-1, 1, 1, 1)
            wcode = self.weight * mask
            a_tilde = F.conv2d(x, wcode, stride=self.stride, padding=self.padding)
            a_tilde = self._sigma_inter(a_tilde)
            if self.bn_inter is not None:
                a_tilde = self.bn_inter(a_tilde)
            return F.conv2d(a_tilde, self.expansion, self.bias, stride=1, padding=0)

        for module in model.modules():
            if isinstance(module, ALFConv2d):
                object.__setattr__(module, "forward", naive_forward.__get__(module))

    trainer = ALFTrainer(model, config)
    train_loader, test_loader = preset.build_loaders(seed=seed)
    history = trainer.fit(train_loader, test_loader, epochs=epochs or preset.epochs)
    return AblationRun(
        label="",
        accuracy=history.final.val_accuracy,
        remaining_filters=history.final.remaining_filters,
    )


def run_ste_ablation(scale: str = "ci", seed: int = 0,
                     epochs: Optional[int] = None) -> List[AblationRun]:
    """Compare training with the STE bridge against the naive masked gradient."""
    preset = get_scale(scale)
    config = ALFConfig(lr_task=0.05, threshold=3e-2, lr_autoencoder=0.1,
                       pr_max=0.6, mask_init=0.3)
    with_ste = _train_variant(preset, config, seed, epochs, disable_ste=False)
    with_ste.label = "STE (paper)"
    without_ste = _train_variant(preset, config, seed, epochs, disable_ste=True)
    without_ste.label = "no STE (naive gradient)"
    return [with_ste, without_ste]


def run_schedule_ablation(scale: str = "ci", seed: int = 0,
                          epochs: Optional[int] = None) -> List[AblationRun]:
    """Compare the nu_prune schedule against a constant regularization weight.

    Disabling the schedule corresponds to ``pr_max = 1`` with a steep slope:
    ``nu_prune`` then stays ~1 for every zero-fraction below 1, i.e. the
    regularizer never backs off and pruning keeps going.
    """
    preset = get_scale(scale)
    scheduled_config = ALFConfig(lr_task=0.05, threshold=3e-2, lr_autoencoder=0.1,
                                 pr_max=0.6, mask_init=0.3)
    constant_config = scheduled_config.with_overrides(pr_max=1.0, slope=50.0)

    scheduled = _train_variant(preset, scheduled_config, seed, epochs, disable_ste=False)
    scheduled.label = "nu_prune schedule (paper)"
    constant = _train_variant(preset, constant_config, seed, epochs, disable_ste=False)
    constant.label = "constant regularization"
    return [scheduled, constant]


def schedule_curve(slope: float = 8.0, pr_max: float = 0.85,
                   points: int = 50) -> List[Tuple[float, float]]:
    """The nu_prune(theta) curve itself, for plotting / inspection."""
    thetas = np.linspace(0.0, 1.0, points)
    return [(float(theta), nu_prune(float(theta), slope=slope, pr_max=pr_max))
            for theta in thetas]


def render_ablation(runs: Sequence[AblationRun], title: str) -> str:
    headers = ["Variant", "Accuracy [%]", "Remaining filters [%]"]
    rows = [[r.label, f"{r.accuracy * 100:.1f}", f"{r.remaining_filters * 100:.1f}"] for r in runs]
    return render_table(headers, rows, title=title)
