"""Shared experiment infrastructure: scale presets and proxy training runs.

The paper's experiments train Plain-20 / ResNet-20 / ResNet-18 for hundreds
of epochs on CIFAR-10 and ImageNet using GPUs.  A pure-numpy substrate
cannot replicate that wall-clock budget, so every experiment accepts a
:class:`ExperimentScale` preset:

* ``ci``     — seconds-scale runs (tiny proxy models, few samples/epochs)
  used by the test-suite and the default benchmark harness;
* ``small``  — minutes-scale runs producing smoother trends;
* ``paper``  — the full geometry and epoch counts of the paper (only
  practical with a much faster backend, but kept so the configuration is
  explicit and auditable).

Cost columns (Params / OPs) never depend on the preset: they are always
computed at the paper's true input geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core import ALFConfig, ALFTrainer, ClassifierTrainer, convert_to_alf
from ..data import DataLoader, make_synthetic_dataset
from ..models import plain8, plain20, resnet8, resnet20
from ..nn.module import Module
from ..nn.utils import seed_everything


@dataclass(frozen=True)
class ExperimentScale:
    """Size of the training runs behind accuracy measurements."""

    name: str
    image_size: int
    num_classes: int
    train_samples: int
    test_samples: int
    batch_size: int
    epochs: int
    proxy_blocks_per_stage: int     # Plain/ResNet depth: 6n+2
    proxy_base_width: int

    def build_proxy(self, kind: str, rng: Optional[np.random.Generator] = None) -> Module:
        """Build the CIFAR-style proxy model ("plain" or "resnet") for this scale."""
        from ..models.plain import PlainNet
        from ..models.resnet import ResNetCIFAR
        if kind == "plain":
            return PlainNet(num_blocks_per_stage=self.proxy_blocks_per_stage,
                            num_classes=self.num_classes, base_width=self.proxy_base_width,
                            rng=rng)
        if kind == "resnet":
            return ResNetCIFAR(num_blocks_per_stage=self.proxy_blocks_per_stage,
                               num_classes=self.num_classes, base_width=self.proxy_base_width,
                               rng=rng)
        raise KeyError(f"unknown proxy kind '{kind}'")

    def build_loaders(self, seed: int = 0) -> Tuple[DataLoader, DataLoader]:
        dataset = make_synthetic_dataset(
            num_samples=self.train_samples + self.test_samples,
            num_classes=self.num_classes,
            image_shape=(3, self.image_size, self.image_size),
            seed=seed,
        )
        train = dataset.subset(self.train_samples)
        test_images = dataset.images[self.train_samples:]
        test_labels = dataset.labels[self.train_samples:]
        from ..data import SyntheticImageDataset
        test = SyntheticImageDataset(test_images, test_labels, dataset.num_classes,
                                     name="test")
        train_loader = DataLoader(train, batch_size=self.batch_size, shuffle=True, seed=seed)
        test_loader = DataLoader(test, batch_size=max(64, self.batch_size))
        return train_loader, test_loader


SCALES: Dict[str, ExperimentScale] = {
    "ci": ExperimentScale(
        name="ci", image_size=12, num_classes=4, train_samples=256, test_samples=96,
        batch_size=32, epochs=8, proxy_blocks_per_stage=1, proxy_base_width=8,
    ),
    "small": ExperimentScale(
        name="small", image_size=16, num_classes=6, train_samples=600, test_samples=200,
        batch_size=32, epochs=15, proxy_blocks_per_stage=1, proxy_base_width=8,
    ),
    "paper": ExperimentScale(
        name="paper", image_size=32, num_classes=10, train_samples=50_000, test_samples=10_000,
        batch_size=128, epochs=200, proxy_blocks_per_stage=3, proxy_base_width=16,
    ),
}


def get_scale(name: str) -> ExperimentScale:
    if name not in SCALES:
        raise KeyError(f"unknown scale '{name}'; choose from {sorted(SCALES)}")
    return SCALES[name]


@dataclass
class ProxyRunResult:
    """Outcome of one proxy training run."""

    accuracy: float
    remaining_filters: float
    history: object


def train_vanilla_proxy(scale: ExperimentScale, kind: str = "plain", seed: int = 0,
                        lr: float = 0.05, epochs: Optional[int] = None) -> ProxyRunResult:
    """Train an uncompressed proxy model and return its validation accuracy."""
    rng = seed_everything(seed)
    model = scale.build_proxy(kind, rng=rng)
    train_loader, test_loader = scale.build_loaders(seed=seed)
    trainer = ClassifierTrainer(model, lr=lr, momentum=0.9, weight_decay=1e-4)
    history = trainer.fit(train_loader, test_loader, epochs=epochs or scale.epochs)
    return ProxyRunResult(accuracy=history.final.val_accuracy, remaining_filters=1.0,
                          history=history)


def train_alf_proxy(scale: ExperimentScale, config: Optional[ALFConfig] = None,
                    kind: str = "plain", seed: int = 0,
                    epochs: Optional[int] = None) -> Tuple[ProxyRunResult, Module]:
    """Convert a proxy model to ALF form, train it, and return (result, model)."""
    config = config or ALFConfig(lr_task=0.05, threshold=1e-1, lr_autoencoder=5e-2,
                                 pr_max=0.6, mask_init=0.6)
    rng = seed_everything(seed)
    model = scale.build_proxy(kind, rng=rng)
    convert_to_alf(model, config, rng=np.random.default_rng(seed + 1))
    train_loader, test_loader = scale.build_loaders(seed=seed)
    trainer = ALFTrainer(model, config)
    history = trainer.fit(train_loader, test_loader, epochs=epochs or scale.epochs)
    return ProxyRunResult(
        accuracy=history.final.val_accuracy,
        remaining_filters=history.final.remaining_filters,
        history=history,
    ), model
