"""Experiments E2-E4 — Fig. 2: design-space exploration of the ALF block.

* Fig. 2a — expansion-layer configuration: initialization (he/xavier) x
  intermediate activation (none/relu) x intermediate batch-norm (none/bn).
* Fig. 2b — autoencoder configuration: Wenc/Wdec initialization
  (rand/he/xavier) x autoencoder activation (tanh/sigmoid/relu), with the
  pruning mask disabled.
* Fig. 2c — pruning dynamics over training epochs for different
  (autoencoder learning rate, clipping threshold) variants: remaining
  filters [%] and accuracy [%] per epoch.

All three run the same proxy-scale training harness (see
``repro.experiments.runtime``); repeated seeds give the "bar stretching"
the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ALFConfig
from ..metrics.tables import render_table
from .runtime import ExperimentScale, get_scale, train_alf_proxy


@dataclass
class ConfigResult:
    """Accuracy (mean over seeds) for one explored configuration."""

    label: str
    accuracies: List[float] = field(default_factory=list)
    remaining_filters: List[float] = field(default_factory=list)

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def spread(self) -> float:
        return float(np.max(self.accuracies) - np.min(self.accuracies)) if len(self.accuracies) > 1 else 0.0


# --------------------------------------------------------------------------- #
# Fig. 2a — expansion layer configuration
# --------------------------------------------------------------------------- #
FIG2A_CONFIGS: List[Tuple[str, str, Optional[str], bool]] = [
    # (label, wexp_init, sigma_inter, use_bn_inter)
    ("he|nc|nc", "he", None, False),
    ("xavier|nc|nc", "xavier", None, False),
    ("he|relu|nc", "he", "relu", False),
    ("xavier|relu|nc", "xavier", "relu", False),
    ("he|relu|bn", "he", "relu", True),
    ("xavier|relu|bn", "xavier", "relu", True),
]


def run_fig2a(scale: str = "ci", seeds: Sequence[int] = (0, 1),
              epochs: Optional[int] = None) -> List[ConfigResult]:
    """Sweep the expansion-layer configuration (Fig. 2a)."""
    preset = get_scale(scale)
    results: List[ConfigResult] = []
    for label, wexp_init, sigma_inter, use_bn in FIG2A_CONFIGS:
        result = ConfigResult(label=label)
        for seed in seeds:
            config = ALFConfig(
                wexp_init=wexp_init, sigma_inter=sigma_inter, use_bn_inter=use_bn,
                enable_mask=False, lr_task=0.05,
            )
            run, _ = train_alf_proxy(preset, config=config, seed=seed, epochs=epochs)
            result.accuracies.append(run.accuracy)
            result.remaining_filters.append(run.remaining_filters)
        results.append(result)
    return results


# --------------------------------------------------------------------------- #
# Fig. 2b — autoencoder configuration (mask disabled)
# --------------------------------------------------------------------------- #
FIG2B_CONFIGS: List[Tuple[str, str, str]] = [
    # (label, wae_init, sigma_ae)
    ("rand|tanh", "rand", "tanh"),
    ("he|tanh", "he", "tanh"),
    ("xavier|tanh", "xavier", "tanh"),
    ("rand|sigmoid", "rand", "sigmoid"),
    ("he|sigmoid", "he", "sigmoid"),
    ("xavier|sigmoid", "xavier", "sigmoid"),
    ("rand|relu", "rand", "relu"),
    ("he|relu", "he", "relu"),
    ("xavier|relu", "xavier", "relu"),
]


def run_fig2b(scale: str = "ci", seeds: Sequence[int] = (0, 1),
              sigma_inter: Optional[str] = None,
              epochs: Optional[int] = None) -> List[ConfigResult]:
    """Sweep the autoencoder init / activation (Fig. 2b), pruning mask off."""
    preset = get_scale(scale)
    results: List[ConfigResult] = []
    for label, wae_init, sigma_ae in FIG2B_CONFIGS:
        result = ConfigResult(label=label)
        for seed in seeds:
            config = ALFConfig(
                wae_init=wae_init, sigma_ae=sigma_ae, sigma_inter=sigma_inter,
                enable_mask=False, lr_task=0.05,
            )
            run, _ = train_alf_proxy(preset, config=config, seed=seed, epochs=epochs)
            result.accuracies.append(run.accuracy)
        results.append(result)
    return results


# --------------------------------------------------------------------------- #
# Fig. 2c — pruning dynamics for (lr_ae, threshold) variants
# --------------------------------------------------------------------------- #
@dataclass
class PruningCurve:
    """Per-epoch remaining filters / accuracy for one (lr_ae, t) variant."""

    label: str
    lr_autoencoder: float
    threshold: float
    epochs: List[int] = field(default_factory=list)
    remaining_filters: List[float] = field(default_factory=list)
    accuracy: List[float] = field(default_factory=list)

    @property
    def final_remaining_percent(self) -> float:
        return self.remaining_filters[-1] * 100 if self.remaining_filters else 100.0

    @property
    def final_accuracy(self) -> float:
        return self.accuracy[-1] if self.accuracy else float("nan")


# The five variants of Fig. 2c.  At proxy scale the learning rates and
# thresholds are re-based (larger) because the runs are orders of magnitude
# shorter than the paper's 200 epochs; the *relative ordering* of the
# variants is what carries over (larger t or larger lr_ae -> more pruning).
FIG2C_VARIANTS: List[Tuple[str, float, float]] = [
    ("lr=1e-3,t=5e-5", 1e-3, 5e-5),
    ("lr=1e-3,t=1e-4", 1e-3, 1e-4),
    ("lr=1e-3,t=5e-4", 1e-3, 5e-4),
    ("lr=1e-4,t=1e-4", 1e-4, 1e-4),
    ("lr=1e-5,t=1e-4", 1e-5, 1e-4),
]


def run_fig2c(scale: str = "ci", seed: int = 0, epochs: Optional[int] = None,
              lr_scale: float = 100.0, threshold_scale: float = 300.0) -> List[PruningCurve]:
    """Reproduce the pruning-dynamics curves of Fig. 2c.

    ``lr_scale`` / ``threshold_scale`` compensate for the much shorter proxy
    runs (the paper's values assume 200 epochs x 390 steps); they multiply
    every variant identically so relative comparisons are preserved.
    """
    preset = get_scale(scale)
    curves: List[PruningCurve] = []
    for label, lr_ae, threshold in FIG2C_VARIANTS:
        config = ALFConfig(
            lr_autoencoder=lr_ae * lr_scale, threshold=threshold * threshold_scale,
            lr_task=0.05, pr_max=0.85, mask_init=0.5,
        )
        run, _ = train_alf_proxy(preset, config=config, seed=seed, epochs=epochs)
        curve = PruningCurve(label=label, lr_autoencoder=lr_ae, threshold=threshold)
        for stats in run.history.epochs:
            curve.epochs.append(stats.epoch)
            curve.remaining_filters.append(stats.remaining_filters)
            curve.accuracy.append(stats.val_accuracy if stats.val_accuracy is not None else float("nan"))
        curves.append(curve)
    return curves


def render_config_results(results: Sequence[ConfigResult], title: str) -> str:
    headers = ["Configuration", "Accuracy [%]", "Spread [%]"]
    rows = [[r.label, f"{r.mean_accuracy * 100:.1f}", f"{r.spread * 100:.1f}"] for r in results]
    return render_table(headers, rows, title=title)


def render_pruning_curves(curves: Sequence[PruningCurve]) -> str:
    headers = ["Variant", "Remaining filters [%]", "Accuracy [%]"]
    rows = [[c.label, f"{c.final_remaining_percent:.1f}", f"{c.final_accuracy * 100:.1f}"]
            for c in curves]
    return render_table(headers, rows, title="Fig. 2c — pruning dynamics (final epoch)")
