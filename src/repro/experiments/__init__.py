"""``repro.experiments`` — one module per paper table / figure.

* :mod:`~repro.experiments.method_taxonomy` — Table I
* :mod:`~repro.experiments.config_space` — Fig. 2a / 2b / 2c
* :mod:`~repro.experiments.cifar_comparison` — Table II
* :mod:`~repro.experiments.hardware_breakdown` — Fig. 3
* :mod:`~repro.experiments.imagenet_comparison` — Table III
* :mod:`~repro.experiments.ablations` — Eq. 2 bound, STE and schedule ablations
* :mod:`~repro.experiments.paper_values` — the paper's reported numbers
"""

from . import (
    ablations,
    cifar_comparison,
    config_space,
    hardware_breakdown,
    imagenet_comparison,
    method_taxonomy,
    paper_values,
    runtime,
)
from .runtime import SCALES, ExperimentScale, get_scale

__all__ = [
    "method_taxonomy", "config_space", "cifar_comparison", "hardware_breakdown",
    "imagenet_comparison", "ablations", "paper_values", "runtime",
    "ExperimentScale", "SCALES", "get_scale",
]
