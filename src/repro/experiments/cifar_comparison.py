"""Experiment E5 — Table II: pruned CNNs on CIFAR-10 (conv layers only).

Two ingredients are combined, mirroring how such tables are produced:

* **Cost columns (Params, OPs)** are computed analytically at the true
  CIFAR-10 geometry (32x32) for every method, so they are directly
  comparable to the paper's numbers.  ALF costs follow from the remaining
  filter fraction; AMC / FPGM costs follow from applying the respective
  pruners to a ResNet-20.
* **Accuracy column** is measured by training proxy-scale models on the
  synthetic CIFAR stand-in (the full 200-epoch GPU runs of the paper are
  not reachable on a numpy substrate); the relative ordering and the size
  of the compression-induced drops are the reproduced quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api import (
    ALFSpec,
    AMCSpec,
    CompressionSpec,
    FPGMSpec,
    SweepSession,
    compress,
    print_progress,
)
from ..api.cache import CacheArg
from ..api.sweep import ALF_TABLE2_STAGE_REMAINING
from ..core import ALFConfig
from ..metrics import MethodResult, pareto_front, profile_model
from ..metrics.tables import format_count, render_table
from ..models import plain20, resnet20
from ..nn.profiler import OpProfile, profile_inference
from ..nn.utils import seed_everything
from .paper_values import TABLE2_CIFAR
from .runtime import ExperimentScale, get_scale, train_vanilla_proxy

CIFAR_INPUT = (3, 32, 32)


@dataclass
class TableRow:
    """One Table II row: measured values next to the paper's.

    ``measured_seconds`` carries the wall-clock of one profiled inference
    batch of the row's model (``run(..., profile=True)``) next to the
    analytical OPs column; ``None`` when not profiled.
    """

    method: str
    policy: str
    params: Optional[float]
    ops: float
    accuracy: Optional[float]
    paper_params_m: Optional[float] = None
    paper_ops_m: Optional[float] = None
    paper_accuracy: Optional[float] = None
    measured_seconds: Optional[float] = None

    def as_cells(self) -> List[str]:
        acc = f"{self.accuracy:.1f}" if self.accuracy is not None else "-"
        paper_acc = f"{self.paper_accuracy:.1f}" if self.paper_accuracy is not None else "-"
        return [
            self.method, self.policy,
            format_count(self.params), format_count(self.ops),
            acc,
            format_count(self.paper_params_m * 1e6 if self.paper_params_m is not None else None),
            format_count(self.paper_ops_m * 1e6 if self.paper_ops_m is not None else None),
            paper_acc,
        ]


@dataclass
class Table2Result:
    rows: List[TableRow] = field(default_factory=list)
    #: Full layer-scoped inference profiles per row (``profile=True`` runs);
    #: per-layer conv wall-clock for drill-down beyond the table column.
    profiles: Dict[str, OpProfile] = field(default_factory=dict)

    def by_method(self, method: str) -> TableRow:
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"no row for method '{method}'")

    def method_results(self) -> List[MethodResult]:
        return [MethodResult(r.method, r.policy, r.params, r.ops,
                             r.accuracy if r.accuracy is not None else 0.0)
                for r in self.rows]

    def render(self) -> str:
        headers = ["Method", "Policy", "Params", "OPs", "Acc[%]",
                   "Paper Params", "Paper OPs", "Paper Acc[%]"]
        measured = any(r.measured_seconds is not None for r in self.rows)
        if measured:
            headers.append("t [ms]")
        rows = []
        for r in self.rows:
            cells = r.as_cells()
            if measured:
                cells.append(f"{r.measured_seconds * 1e3:.1f}"
                             if r.measured_seconds is not None else "-")
            rows.append(cells)
        return render_table(headers, rows,
                            title="Table II — pruned CNNs on CIFAR-10 (conv layers only)")


# --------------------------------------------------------------------------- #
# Cost side (exact geometry) — thin wrappers over the unified pipeline
# --------------------------------------------------------------------------- #
#: Remaining-filter fraction per stage width after ALF training (see
#: :data:`repro.api.sweep.ALF_TABLE2_STAGE_REMAINING`): the overall average
#: (~38%) matches Fig. 2c's "remaining filters" for t = 1e-4, but the wide,
#: deep layers (which dominate the parameter count) are pruned harder —
#: consistent with Fig. 3.  These rates reproduce Table II's -70% Params /
#: -61% OPs.
ALF_STAGE_REMAINING = ALF_TABLE2_STAGE_REMAINING


def alf_compressed_cost(remaining_fraction: Optional[float] = None,
                        seed: int = 0) -> Dict[str, float]:
    """Params / OPs of an ALF-compressed ResNet-20 at CIFAR geometry.

    ``remaining_fraction`` forces a uniform fraction of non-zero code filters
    per layer; when ``None`` the stage-dependent profile
    :data:`ALF_STAGE_REMAINING` is used (see its docstring).
    """
    config = (ALFSpec(remaining_fraction=remaining_fraction)
              if remaining_fraction is not None
              else ALFSpec(stage_remaining=ALF_STAGE_REMAINING))
    config.deploy = False
    report = compress("resnet20", method="alf", config=config, hardware=None,
                      input_shape=CIFAR_INPUT, seed=seed)
    return {"params": report.cost["params"], "ops": report.cost["ops"]}


def amc_cost(ops_budget: float = 0.49, seed: int = 0,
             iterations: int = 4, population: int = 8) -> Dict[str, float]:
    """Params / OPs of an AMC-pruned ResNet-20 (cost-proxy agent search)."""
    report = compress("resnet20", method="amc",
                      config=AMCSpec(target_ops_fraction=ops_budget,
                                     iterations=iterations, population=population),
                      hardware=None, input_shape=CIFAR_INPUT, seed=seed)
    return {"params": report.cost["params"], "ops": report.cost["ops"]}


def fpgm_cost(prune_ratio: float = 0.3, seed: int = 0) -> Dict[str, float]:
    """Params / OPs of an FPGM-pruned ResNet-20 with a uniform prune ratio."""
    report = compress("resnet20", method="fpgm",
                      config=FPGMSpec(prune_ratio=prune_ratio),
                      hardware=None, input_shape=CIFAR_INPUT, seed=seed)
    return {"params": report.cost["params"], "ops": report.cost["ops"]}


def table2_cost_specs(seed: int = 0,
                      alf_remaining_fraction: Optional[float] = None
                      ) -> List[CompressionSpec]:
    """The compressed Table II rows (AMC, FPGM, ALF) as sweep specs."""
    alf_config = (ALFSpec(remaining_fraction=alf_remaining_fraction)
                  if alf_remaining_fraction is not None
                  else ALFSpec(stage_remaining=ALF_STAGE_REMAINING))
    alf_config.deploy = False
    return [
        CompressionSpec(method="amc",
                        config=AMCSpec(target_ops_fraction=0.49), seed=seed),
        CompressionSpec(method="fpgm",
                        config=FPGMSpec(prune_ratio=0.3), seed=seed),
        CompressionSpec(method="alf", config=alf_config, seed=seed),
    ]


def _table2_cost_sweep(seed: int = 0,
                       alf_remaining_fraction: Optional[float] = None,
                       workers: Optional[int] = None,
                       executor: Optional[str] = None,
                       profile: bool = False,
                       stream: bool = False,
                       cache: CacheArg = None):
    specs = table2_cost_specs(seed=seed,
                              alf_remaining_fraction=alf_remaining_fraction)
    if profile:
        specs = [spec.with_overrides(profile=True) for spec in specs]
    # Submitted through a SweepSession so progress can stream per method;
    # the spec-ordered result is identical to the batch run_sweep call.
    with SweepSession(model="resnet20", hardware=None,
                      input_shape=CIFAR_INPUT, seed=seed,
                      executor=executor, max_workers=workers,
                      cache=cache) as session:
        if stream:
            session.add_progress_callback(
                print_progress("table2", total=len(specs)))
        session.submit_all(specs, fail_fast=True)
        return session.result()


def table2_costs(seed: int = 0,
                 alf_remaining_fraction: Optional[float] = None,
                 workers: Optional[int] = None,
                 executor: Optional[str] = None,
                 profile: bool = False,
                 stream: bool = False,
                 cache: CacheArg = None) -> Dict[str, Dict[str, float]]:
    """Cost columns of the compressed Table II rows, via one (sharded) sweep.

    The three method evaluations share a single dense ResNet-20 and run in
    parallel when ``workers`` / ``executor`` (or ``REPRO_SWEEP_EXECUTOR``)
    select a parallel strategy; results are identical to the serial
    per-method runs.  ``profile=True`` adds a ``"seconds"`` entry per
    method: the measured wall-clock of one profiled inference batch of the
    compressed model (collected inside the shard that ran the spec).
    ``stream=True`` prints one progress line per scheduling milestone as
    shard results stream back from the session.  ``cache`` is the result
    cache knob (see :func:`repro.api.run_sweep`): a policy name, a store,
    or ``(store, policy)``.
    """
    sweep = _table2_cost_sweep(seed=seed,
                               alf_remaining_fraction=alf_remaining_fraction,
                               workers=workers, executor=executor,
                               profile=profile, stream=stream, cache=cache)
    costs = {}
    for report in sweep.reports:
        entry = {"params": report.cost["params"], "ops": report.cost["ops"]}
        if report.profile is not None and report.profile.eval is not None:
            entry["seconds"] = report.profile.eval.total_seconds
        costs[report.method] = entry
    return costs


# --------------------------------------------------------------------------- #
# Accuracy side (proxy training)
# --------------------------------------------------------------------------- #
@dataclass
class AccuracyMeasurements:
    """Validation accuracies of the proxy training runs (in percent)."""

    plain: float
    resnet: float
    amc: float
    fpgm: float
    alf: float
    alf_remaining_filters: float


def _proxy_compress(preset: ExperimentScale, method: str, config, kind: str,
                    seed: int, epochs: int, finetune_epochs: int):
    """One accuracy-bearing proxy run through the unified pipeline."""
    rng = seed_everything(seed)
    model = preset.build_proxy(kind, rng=rng)
    loaders = preset.build_loaders(seed=seed)
    return compress(
        model, method=method, config=config, data=loaders, hardware=None,
        input_shape=(3, preset.image_size, preset.image_size),
        epochs=epochs, finetune_epochs=finetune_epochs, lr=0.05, seed=seed,
        inplace=True,
    )


def measure_accuracies(scale: str = "ci", seed: int = 0,
                       epochs: Optional[int] = None,
                       finetune_epochs: Optional[int] = None) -> AccuracyMeasurements:
    """Train the proxy models for every Table II row and collect accuracies.

    All compressed rows run through :func:`repro.api.compress`: pre-train →
    prune → fine-tune for FPGM/AMC, and the two-player training for ALF.
    """
    preset = get_scale(scale)
    epochs = epochs or preset.epochs
    finetune_epochs = finetune_epochs or max(2, epochs // 2)

    plain_run = train_vanilla_proxy(preset, kind="plain", seed=seed, epochs=epochs)
    resnet_run = train_vanilla_proxy(preset, kind="resnet", seed=seed, epochs=epochs)

    fpgm_report = _proxy_compress(
        preset, "fpgm", FPGMSpec(prune_ratio=0.3), kind="resnet",
        seed=seed, epochs=epochs, finetune_epochs=finetune_epochs)

    # AMC: agent search with real (proxy) accuracy evaluation, then fine-tune.
    amc_report = _proxy_compress(
        preset, "amc",
        AMCSpec(target_ops_fraction=0.49, iterations=2, population=4,
                accuracy_eval=True),
        kind="resnet", seed=seed, epochs=epochs, finetune_epochs=finetune_epochs)

    alf_config = ALFSpec(alf=ALFConfig(lr_task=0.05, threshold=1e-1,
                                       lr_autoencoder=5e-2, pr_max=0.6,
                                       mask_init=0.6))
    alf_report = _proxy_compress(
        preset, "alf", alf_config, kind="plain",
        seed=seed, epochs=epochs, finetune_epochs=finetune_epochs)

    return AccuracyMeasurements(
        plain=plain_run.accuracy * 100,
        resnet=resnet_run.accuracy * 100,
        amc=amc_report.accuracy * 100,
        fpgm=fpgm_report.accuracy * 100,
        alf=alf_report.accuracy * 100,
        alf_remaining_filters=alf_report.remaining_filter_fraction,
    )


# --------------------------------------------------------------------------- #
# Full table
# --------------------------------------------------------------------------- #
def run(scale: str = "ci", seed: int = 0, measure_accuracy: bool = True,
        alf_remaining_fraction: Optional[float] = None,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        profile: bool = False,
        stream: bool = False,
        cache: CacheArg = None) -> Table2Result:
    """Regenerate Table II (cost columns exact, accuracy from proxy runs).

    ``workers`` / ``executor`` shard the per-method cost evaluations across
    a sweep executor (see :func:`repro.api.run_sweep`); the produced table
    is identical to the serial default.  ``profile=True`` adds a measured
    ``t [ms]`` column — one layer-scoped profiled inference batch per row,
    next to the analytical OPs — and keeps the full per-layer profiles on
    ``Table2Result.profiles``.  ``stream=True`` prints per-method progress
    lines while the cost sweep's shard results stream in.  ``cache``
    selects the result cache policy for the cost sweep (the proxy accuracy
    runs always recompute): repeated invocations replay the cost columns
    from the store instead of re-evaluating them.
    """
    plain_model = plain20(rng=np.random.default_rng(seed))
    resnet_model = resnet20(rng=np.random.default_rng(seed))
    plain_profile = profile_model(plain_model, CIFAR_INPUT)
    resnet_profile = profile_model(resnet_model, CIFAR_INPUT)
    sweep = _table2_cost_sweep(seed=seed,
                               alf_remaining_fraction=alf_remaining_fraction,
                               workers=workers, executor=executor,
                               profile=profile, stream=stream, cache=cache)
    costs = {report.method: report.cost for report in sweep.reports}
    amc, fpgm, alf = costs["amc"], costs["fpgm"], costs["alf"]

    result = Table2Result()
    if profile:
        # Compressed rows ship their inference profile with the sweep
        # report; the vanilla rows are measured here on the same builds
        # the analytical cost columns used.
        result.profiles["Plain-20"] = profile_inference(plain_model, CIFAR_INPUT)
        result.profiles["ResNet-20"] = profile_inference(resnet_model, CIFAR_INPUT)
        for label, method in (("AMC", "amc"), ("FPGM", "fpgm"), ("ALF", "alf")):
            report = sweep.by_method(method)
            if report.profile is not None and report.profile.eval is not None:
                result.profiles[label] = report.profile.eval

    accuracies = measure_accuracies(scale=scale, seed=seed) if measure_accuracy else None

    paper = TABLE2_CIFAR
    result.rows.append(TableRow(
        "Plain-20", "—", plain_profile.total_params(conv_only=True),
        plain_profile.total_ops(conv_only=True),
        accuracies.plain if accuracies else None,
        paper["Plain-20"]["params_m"], paper["Plain-20"]["ops_m"], paper["Plain-20"]["accuracy"],
    ))
    result.rows.append(TableRow(
        "ResNet-20", "—", resnet_profile.total_params(conv_only=True),
        resnet_profile.total_ops(conv_only=True),
        accuracies.resnet if accuracies else None,
        paper["ResNet-20"]["params_m"], paper["ResNet-20"]["ops_m"], paper["ResNet-20"]["accuracy"],
    ))
    result.rows.append(TableRow(
        "AMC", "RL-Agent", amc["params"], amc["ops"],
        accuracies.amc if accuracies else None,
        paper["AMC"]["params_m"], paper["AMC"]["ops_m"], paper["AMC"]["accuracy"],
    ))
    result.rows.append(TableRow(
        "FPGM", "Handcrafted", fpgm["params"], fpgm["ops"],
        accuracies.fpgm if accuracies else None,
        paper["FPGM"]["params_m"], paper["FPGM"]["ops_m"], paper["FPGM"]["accuracy"],
    ))
    result.rows.append(TableRow(
        "ALF", "Automatic", alf["params"], alf["ops"],
        accuracies.alf if accuracies else None,
        paper["ALF"]["params_m"], paper["ALF"]["ops_m"], paper["ALF"]["accuracy"],
    ))
    for row in result.rows:
        if row.method in result.profiles:
            row.measured_seconds = result.profiles[row.method].total_seconds
    return result


def headline_reductions(result: Table2Result) -> Dict[str, float]:
    """Params / OPs reduction of ALF vs the ResNet-20 baseline (abstract claim)."""
    baseline = result.by_method("ResNet-20")
    alf = result.by_method("ALF")
    return {
        "params_reduction": 1.0 - alf.params / baseline.params,
        "ops_reduction": 1.0 - alf.ops / baseline.ops,
    }
