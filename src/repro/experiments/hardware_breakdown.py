"""Experiment E6 — Fig. 3: per-layer energy breakdown and latency on Eyeriss.

The paper runs the Timeloop/Eyeriss model on the vanilla and ALF-compressed
Plain-20 / ResNet-20 configurations with batch 16 and reports, per
convolution (CONV1 ... CONV432):

* the energy split between register files, the global buffer and DRAM, and
* the normalized latency,

with the headline result of 29% lower energy and 41% lower latency overall.
This module regenerates both series with the analytical hardware model of
``repro.hardware``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..api import ALFSpec, CompressionSpec, SweepSession, print_progress
from ..api.cache import CacheArg
from ..hardware import EyerissSpec, EYERISS_PAPER, NetworkReport
from ..metrics.tables import render_table
from ..models import build_model
from ..models.plain import plain_layer_names
from ..nn.profiler import OpProfile, layer_op_seconds, profile_inference
from .paper_values import HEADLINE_CLAIMS

CIFAR_INPUT = (3, 32, 32)


@dataclass
class LayerEnergyRow:
    """Energy / latency of one named convolution for vanilla and ALF models.

    ``vanilla_seconds`` / ``alf_seconds`` carry the *measured* per-layer
    conv wall-clock of a profiled inference (``run(..., profile=True)``)
    next to the modeled Eyeriss numbers; ``None`` when not profiled.
    """

    name: str
    vanilla_register_file: float
    vanilla_global_buffer: float
    vanilla_dram: float
    vanilla_latency: float
    alf_register_file: float
    alf_global_buffer: float
    alf_dram: float
    alf_latency: float
    vanilla_seconds: Optional[float] = None
    alf_seconds: Optional[float] = None

    @property
    def vanilla_total_energy(self) -> float:
        return self.vanilla_register_file + self.vanilla_global_buffer + self.vanilla_dram

    @property
    def alf_total_energy(self) -> float:
        return self.alf_register_file + self.alf_global_buffer + self.alf_dram


@dataclass
class Fig3Result:
    """Per-layer rows plus network-level summaries for one architecture."""

    architecture: str
    rows: List[LayerEnergyRow] = field(default_factory=list)
    energy_reduction: float = 0.0
    latency_reduction: float = 0.0
    vanilla_report: Optional[NetworkReport] = None
    alf_report: Optional[NetworkReport] = None
    #: Measured op profiles of one inference batch per execution
    #: (``run(..., profile=True)``); the per-conv seconds land on the rows.
    vanilla_profile: Optional[OpProfile] = None
    alf_profile: Optional[OpProfile] = None

    def anomalous_layers(self) -> List[str]:
        """Layers where the ALF-compressed execution is *slower* than vanilla.

        The paper highlights conv312 of ALF-Plain-20 as such an anomaly
        caused by reduced parallelism under the row-stationary dataflow.
        """
        return [row.name for row in self.rows if row.alf_latency > row.vanilla_latency]

    def render(self) -> str:
        headers = ["Layer", "RF (van)", "GB (van)", "DRAM (van)", "Lat (van)",
                   "RF (ALF)", "GB (ALF)", "DRAM (ALF)", "Lat (ALF)"]
        measured = any(r.vanilla_seconds is not None or r.alf_seconds is not None
                       for r in self.rows)
        if measured:
            headers += ["t (van) [s]", "t (ALF) [s]"]
        rows = []
        for r in self.rows:
            cells = [
                r.name,
                f"{r.vanilla_register_file:.2e}", f"{r.vanilla_global_buffer:.2e}",
                f"{r.vanilla_dram:.2e}", f"{r.vanilla_latency:.2e}",
                f"{r.alf_register_file:.2e}", f"{r.alf_global_buffer:.2e}",
                f"{r.alf_dram:.2e}", f"{r.alf_latency:.2e}",
            ]
            if measured:
                cells += [
                    f"{r.vanilla_seconds:.2e}" if r.vanilla_seconds is not None else "-",
                    f"{r.alf_seconds:.2e}" if r.alf_seconds is not None else "-",
                ]
            rows.append(cells)
        return render_table(headers, rows,
                            title=f"Fig. 3 — {self.architecture}: energy breakdown and latency")


def _conv_seconds(profile: Optional[OpProfile],
                  names: Sequence[str]) -> Dict[str, float]:
    """Map measured per-layer ``conv2d`` seconds onto the paper's CONV names.

    Both the profile's layer dict and ``names`` walk the network's
    convolutions in forward order, so a positional zip aligns them.
    ResNet variants execute extra 1x1 shortcut convolutions the paper's
    naming does not cover — those (``.shortcut.`` paths) are dropped before
    aligning.  An alignment that still disagrees in length yields ``{}``
    rather than mislabelled numbers.
    """
    if profile is None:
        return {}
    per_layer = layer_op_seconds(profile, "conv2d")
    paths = [path for path in per_layer if ".shortcut." not in path]
    if len(paths) != len(names):
        return {}
    return {name: per_layer[path] for name, path in zip(names, paths)}


def run(architecture: str = "plain20", batch: int = 16,
        remaining_fraction: float = 0.386,
        per_layer_fractions: Optional[Dict[str, float]] = None,
        spec: Optional[EyerissSpec] = None, seed: int = 0,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        profile: bool = False,
        stream: bool = False,
        cache: CacheArg = None) -> Fig3Result:
    """Evaluate vanilla vs. ALF-compressed execution on the Eyeriss model.

    One single-spec sweep session supplies both sides: the session's dense
    stage evaluates the vanilla network and the shard's hardware stage
    evaluates the ALF-compressed execution — so the evaluation honours the
    sweep executor selection (``workers`` / ``executor`` arguments or
    ``REPRO_SWEEP_EXECUTOR``), and ``stream=True`` prints the session's
    scheduling milestones as they happen.  Layer labels follow the paper's
    CONV1..CONV432 naming; CONV1 (the stem) keeps a dense convolution, so
    the forced per-layer fractions apply from CONV211 on.

    ``profile=True`` additionally measures one inference batch of each
    execution with the layer-scoped op profiler: the per-conv wall-clock
    lands on the rows (``vanilla_seconds`` / ``alf_seconds``, rendered as
    two extra columns) next to the modeled Eyeriss numbers, and the full
    profiles are kept on ``vanilla_profile`` / ``alf_profile``.

    ``cache`` selects the session's result-cache policy (see
    :func:`repro.api.run_sweep`); with a populated store the ALF
    evaluation replays instead of recomputing.  Profiled runs measure
    fresh wall-clock and are not cached bit-identically, so combine
    ``profile=True`` with ``cache`` only when stale timings are fine.
    """
    names = plain_layer_names()
    if architecture not in ("plain20", "resnet20"):
        raise KeyError(f"unknown architecture '{architecture}'")
    config = ALFSpec(
        remaining_fraction=remaining_fraction,
        layer_fractions=per_layer_fractions,
        layer_labels=names[1:],  # skip CONV1 (the stem keeps a dense conv)
        deploy=False,
    )
    alf_spec = CompressionSpec(method="alf", config=config,
                               hardware_batch=batch, layer_names=names,
                               seed=seed, profile=profile,
                               label=f"ALF-{architecture}")
    with SweepSession(model=architecture, hardware=spec or EYERISS_PAPER,
                      input_shape=CIFAR_INPUT, seed=seed,
                      executor=executor, max_workers=workers,
                      cache=cache) as session:
        if stream:
            session.add_progress_callback(print_progress("fig3", total=1))
        session.submit(alf_spec)
        sweep = session.result()
    report = sweep.reports[0]
    vanilla_report = report.dense_hardware
    alf_report = report.compressed_hardware

    alf_profile = report.profile.eval if report.profile is not None else None
    vanilla_profile = None
    if profile:
        # The sweep's dense stage is shared bookkeeping, not a profiled
        # forward — measure the vanilla execution here, on the same build.
        vanilla_profile = profile_inference(
            build_model(architecture, rng=np.random.default_rng(seed)),
            CIFAR_INPUT, batch=batch)
    vanilla_seconds = _conv_seconds(vanilla_profile, names)
    alf_seconds = _conv_seconds(alf_profile, names)

    vanilla_energy = {r.layer.name: r.energy for r in vanilla_report.layers}
    vanilla_latency = {r.layer.name: r.latency.total_cycles for r in vanilla_report.layers}
    alf_energy = alf_report.grouped_energy()
    alf_latency = alf_report.grouped_latency()

    result = Fig3Result(architecture=architecture)
    for name in names:
        van_e = vanilla_energy[name]
        alf_e = alf_energy.get(name, van_e)
        result.rows.append(LayerEnergyRow(
            name=name,
            vanilla_register_file=van_e.register_file,
            vanilla_global_buffer=van_e.global_buffer,
            vanilla_dram=van_e.dram,
            vanilla_latency=vanilla_latency[name],
            alf_register_file=alf_e.register_file,
            alf_global_buffer=alf_e.global_buffer,
            alf_dram=alf_e.dram,
            alf_latency=alf_latency.get(name, vanilla_latency[name]),
            vanilla_seconds=vanilla_seconds.get(name),
            alf_seconds=alf_seconds.get(name),
        ))
    result.energy_reduction = report.energy_reduction
    result.latency_reduction = report.latency_reduction
    result.vanilla_report = vanilla_report
    result.alf_report = alf_report
    result.vanilla_profile = vanilla_profile
    result.alf_profile = alf_profile
    return result


def summary_vs_paper(result: Fig3Result) -> Dict[str, float]:
    """Measured energy / latency reductions next to the paper's headline claims."""
    return {
        "measured_energy_reduction": result.energy_reduction,
        "paper_energy_reduction": HEADLINE_CLAIMS["energy_reduction"],
        "measured_latency_reduction": result.latency_reduction,
        "paper_latency_reduction": HEADLINE_CLAIMS["latency_reduction"],
    }
