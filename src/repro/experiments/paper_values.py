"""Reference values reported in the paper, used for paper-vs-measured reporting.

Every benchmark prints the corresponding numbers from this module next to
the values measured on the reproduction substrate, so EXPERIMENTS.md can be
regenerated directly from the benchmark output.
"""

from __future__ import annotations

from typing import Dict, Optional

# ----------------------------------------------------------------------- #
# Table I — taxonomy of model compression methods
# ----------------------------------------------------------------------- #
# Columns: no pre-trained model needed / learning-based policy / no extensive
# model exploration required.
TABLE1_TAXONOMY = {
    "Low-Rank Decomposition": {"policy": "Rule-based", "no_pretrained": False,
                               "learning_policy": False, "no_exploration": False},
    "Prune (Handcrafted)": {"policy": "Rule-based", "no_pretrained": False,
                            "learning_policy": False, "no_exploration": False},
    "Prune (RL-Agent)": {"policy": "Learning-based", "no_pretrained": False,
                         "learning_policy": True, "no_exploration": False},
    "NAS": {"policy": "Learning-based", "no_pretrained": True,
            "learning_policy": True, "no_exploration": False},
    "Prune (Automatic)": {"policy": "Learning-based", "no_pretrained": True,
                          "learning_policy": True, "no_exploration": True},
    "ALF": {"policy": "Learning-based", "no_pretrained": True,
            "learning_policy": True, "no_exploration": True},
}

# ----------------------------------------------------------------------- #
# Table II — CIFAR-10 comparison (convolutional layers only)
# ----------------------------------------------------------------------- #
# params in millions, ops in millions (1 MAC = 2 OPs), accuracy in percent.
TABLE2_CIFAR: Dict[str, Dict[str, Optional[float]]] = {
    "Plain-20": {"policy": "—", "params_m": 0.27, "ops_m": 81.1, "accuracy": 90.5},
    "ResNet-20": {"policy": "—", "params_m": 0.27, "ops_m": 81.1, "accuracy": 91.3},
    "AMC": {"policy": "RL-Agent", "params_m": 0.12, "ops_m": 39.4, "accuracy": 90.2},
    "FPGM": {"policy": "Handcrafted", "params_m": None, "ops_m": 36.2, "accuracy": 90.6},
    "ALF": {"policy": "Automatic", "params_m": 0.07, "ops_m": 31.5, "accuracy": 89.4},
}

# ----------------------------------------------------------------------- #
# Table III — ImageNet comparison
# ----------------------------------------------------------------------- #
TABLE3_IMAGENET: Dict[str, Dict[str, Optional[float]]] = {
    "SqueezeNet": {"policy": "—", "params_m": 1.23, "ops_m": 1722, "accuracy": 57.2},
    "GoogleNet": {"policy": "—", "params_m": 6.80, "ops_m": 3004, "accuracy": 66.8},
    "ResNet-18": {"policy": "—", "params_m": 11.83, "ops_m": 3743, "accuracy": 69.8},
    "LCNN": {"policy": "Automatic", "params_m": None, "ops_m": 749, "accuracy": 62.2},
    "FPGM": {"policy": "Handcrafted", "params_m": None, "ops_m": 2178, "accuracy": 67.8},
    "AMC": {"policy": "RL-Agent", "params_m": 8.9, "ops_m": 1874, "accuracy": 67.7},
    "ALF": {"policy": "Automatic", "params_m": 4.24, "ops_m": 1239, "accuracy": 64.3},
}

# ----------------------------------------------------------------------- #
# Headline claims (abstract / Sec. IV-B)
# ----------------------------------------------------------------------- #
HEADLINE_CLAIMS = {
    "params_reduction": 0.70,
    "ops_reduction": 0.61,
    "latency_reduction": 0.41,
    "energy_reduction": 0.29,
    "cifar_accuracy_drop": 1.9,          # percentage points vs ResNet-20
}

# ----------------------------------------------------------------------- #
# Fig. 2c — remaining non-zero filters for the explored (lr_ae, t) variants
# ----------------------------------------------------------------------- #
FIG2C_REMAINING_FILTERS = {
    ("1e-3", "5e-5"): 40.17,
    ("1e-3", "1e-4"): 38.60,
    ("1e-3", "5e-4"): 35.71,
}

# Chosen operating point after the design-space exploration (Sec. IV-A).
CHOSEN_CONFIG = {
    "wexp_init": "xavier",
    "wae_init": "xavier",
    "sigma_ae": "tanh",
    "sigma_inter": None,
    "threshold": 1e-4,
    "lr_autoencoder": 1e-3,
    "slope": 8,
    "pr_max": 0.85,
}

# Plain-20 uncompressed accuracy quoted alongside Fig. 2c.
PLAIN20_BASELINE_ACCURACY = 90.5
