"""Experiment E7 — Table III: benchmarking on ImageNet.

The Params / OPs columns are computed at the paper's true 224x224 geometry
for all reference architectures (SqueezeNet, GoogLeNet, ResNet-18) and for
the pruned ResNet-18 variants (LCNN, FPGM, AMC, ALF).  Accuracies cannot be
measured at ImageNet scale on a pure-numpy substrate; an optional proxy run
on the reduced synthetic ImageNet reproduces the accuracy *ordering*
(uncompressed > mildly pruned > aggressively compressed), and the paper's
reported accuracies are always attached for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..baselines import AMCPruner, FPGMPruner, LCNNCompressor, effective_cost
from ..core import ALFConfig, convert_to_alf
from ..metrics import MethodResult, pareto_front, profile_model
from ..metrics.tables import format_count, render_table
from ..models import googlenet, resnet18, squeezenet
from .paper_values import TABLE3_IMAGENET

IMAGENET_INPUT = (3, 224, 224)


@dataclass
class Table3Row:
    method: str
    policy: str
    params: Optional[float]
    ops: float
    paper_params_m: Optional[float]
    paper_ops_m: Optional[float]
    paper_accuracy: Optional[float]
    measured_accuracy: Optional[float] = None

    def as_cells(self) -> List[str]:
        return [
            self.method, self.policy,
            format_count(self.params), format_count(self.ops),
            format_count(self.paper_params_m * 1e6 if self.paper_params_m is not None else None),
            format_count(self.paper_ops_m * 1e6 if self.paper_ops_m is not None else None),
            f"{self.paper_accuracy:.1f}" if self.paper_accuracy is not None else "-",
        ]


@dataclass
class Table3Result:
    rows: List[Table3Row] = field(default_factory=list)

    def by_method(self, method: str) -> Table3Row:
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"no row for method '{method}'")

    def method_results(self) -> List[MethodResult]:
        return [MethodResult(r.method, r.policy, r.params, r.ops,
                             r.paper_accuracy if r.paper_accuracy is not None else 0.0)
                for r in self.rows]

    def render(self) -> str:
        headers = ["Method", "Policy", "Params", "OPs", "Paper Params", "Paper OPs",
                   "Paper Acc[%]"]
        return render_table(headers, [r.as_cells() for r in self.rows],
                            title="Table III — benchmarking on ImageNet")


def _reference_costs(seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Params / OPs of the three reference architectures at 224x224."""
    rng = np.random.default_rng(seed)
    costs = {}
    for name, factory in [("SqueezeNet", squeezenet), ("GoogleNet", googlenet),
                          ("ResNet-18", resnet18)]:
        profile = profile_model(factory(rng=rng), IMAGENET_INPUT)
        costs[name] = {
            "params": profile.total_params(),
            "ops": profile.total_ops(),
        }
    return costs


def alf_resnet18_cost(remaining_fraction: float = 0.33, seed: int = 0) -> Dict[str, float]:
    """ALF-compressed ResNet-18 at 224x224 (Table III's ALF row).

    The default remaining-filter fraction (~33%) is the operating point that
    yields the paper's reported ~2.8x parameter and ~3x OPs reduction.
    """
    rng = np.random.default_rng(seed)
    model = resnet18(rng=rng)
    blocks = convert_to_alf(model, ALFConfig(), rng=np.random.default_rng(seed + 1))
    for _, block in blocks:
        keep = max(1, int(round(block.out_channels * remaining_fraction)))
        target = block.autoencoder.pruning_mask.mask
        mask = np.zeros(block.out_channels, dtype=target.data.dtype)
        mask[:keep] = 1.0
        target.data = mask
    profile = profile_model(model, IMAGENET_INPUT)
    return {"params": profile.total_params(), "ops": profile.total_ops()}


def fpgm_resnet18_cost(prune_ratio: float = 0.22, seed: int = 0) -> Dict[str, float]:
    rng = np.random.default_rng(seed)
    model = resnet18(rng=rng)
    plan = FPGMPruner().plan(model, prune_ratio=prune_ratio)
    return effective_cost(model, plan, IMAGENET_INPUT)


def amc_resnet18_cost(ops_budget: float = 0.5, seed: int = 0,
                      iterations: int = 3, population: int = 6) -> Dict[str, float]:
    rng = np.random.default_rng(seed)
    model = resnet18(rng=rng)
    pruner = AMCPruner(target_ops_fraction=ops_budget, iterations=iterations,
                       population=population, seed=seed)
    plan = pruner.plan(model, prune_ratio=1.0 - ops_budget)
    return effective_cost(model, plan, IMAGENET_INPUT)


def lcnn_resnet18_cost(dictionary_fraction: float = 0.12, sparsity: int = 3,
                       seed: int = 0) -> Dict[str, float]:
    rng = np.random.default_rng(seed)
    model = resnet18(rng=rng)
    compressor = LCNNCompressor(dictionary_fraction=dictionary_fraction,
                                sparsity=sparsity, seed=seed)
    result = compressor.compress(model)
    return compressor.effective_cost(model, result, IMAGENET_INPUT)


def run(seed: int = 0, alf_remaining_fraction: float = 0.33) -> Table3Result:
    """Regenerate Table III's cost columns (accuracy columns quote the paper)."""
    references = _reference_costs(seed=seed)
    lcnn = lcnn_resnet18_cost(seed=seed)
    fpgm = fpgm_resnet18_cost(seed=seed)
    amc = amc_resnet18_cost(seed=seed)
    alf = alf_resnet18_cost(remaining_fraction=alf_remaining_fraction, seed=seed)

    paper = TABLE3_IMAGENET
    result = Table3Result()
    for name in ("SqueezeNet", "GoogleNet", "ResNet-18"):
        result.rows.append(Table3Row(
            name, "—", references[name]["params"], references[name]["ops"],
            paper[name]["params_m"], paper[name]["ops_m"], paper[name]["accuracy"],
        ))
    result.rows.append(Table3Row(
        "LCNN", "Automatic", lcnn["params"], lcnn["ops"],
        paper["LCNN"]["params_m"], paper["LCNN"]["ops_m"], paper["LCNN"]["accuracy"],
    ))
    result.rows.append(Table3Row(
        "FPGM", "Handcrafted", fpgm["params"], fpgm["ops"],
        paper["FPGM"]["params_m"], paper["FPGM"]["ops_m"], paper["FPGM"]["accuracy"],
    ))
    result.rows.append(Table3Row(
        "AMC", "RL-Agent", amc["params"], amc["ops"],
        paper["AMC"]["params_m"], paper["AMC"]["ops_m"], paper["AMC"]["accuracy"],
    ))
    result.rows.append(Table3Row(
        "ALF", "Automatic", alf["params"], alf["ops"],
        paper["ALF"]["params_m"], paper["ALF"]["ops_m"], paper["ALF"]["accuracy"],
    ))
    return result


def relative_ops_factors(result: Table3Result) -> Dict[str, float]:
    """The "x1.4 / x2.4 / x3.0 fewer OPs" comparison quoted in Sec. IV-B."""
    alf_ops = result.by_method("ALF").ops
    return {
        "vs_squeezenet": result.by_method("SqueezeNet").ops / alf_ops,
        "vs_googlenet": result.by_method("GoogleNet").ops / alf_ops,
        "vs_resnet18": result.by_method("ResNet-18").ops / alf_ops,
    }
