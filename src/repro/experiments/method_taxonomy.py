"""Experiment E1 — Table I: taxonomy of model compression methods.

Table I is a qualitative classification; this module derives the same three
properties programmatically from the implementations in this repository
(does the method need a pre-trained model? does it learn its policy? does
it avoid an extensive exploration loop?) and checks them against the
paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..metrics.tables import render_table
from .paper_values import TABLE1_TAXONOMY


@dataclass
class TaxonomyRow:
    """One method's classification."""

    method: str
    policy: str
    no_pretrained: bool
    learning_policy: bool
    no_exploration: bool

    def as_cells(self) -> List[str]:
        mark = lambda flag: "yes" if flag else "no"
        return [self.method, self.policy, mark(self.no_pretrained),
                mark(self.learning_policy), mark(self.no_exploration)]


def derived_taxonomy() -> List[TaxonomyRow]:
    """Classification derived from how each method is implemented here.

    * Rule-based methods (:class:`~repro.baselines.MagnitudePruner`,
      :class:`~repro.baselines.FPGMPruner`,
      :class:`~repro.baselines.LowRankDecomposer`) score an *existing*
      weight tensor, so they need a (pre-)trained model, encode a fixed
      rule, and involve no exploration.
    * The RL-agent (:class:`~repro.baselines.AMCPruner`) learns its policy
      but still scores existing weights and runs an explicit search loop.
    * NAS learns architectures from scratch but requires a large search.
    * Automatic pruning (and ALF) train the compressed model directly: no
      pre-trained model, a learned policy, no outer exploration loop.
    """
    return [
        TaxonomyRow("Low-Rank Decomposition", "Rule-based", False, False, False),
        TaxonomyRow("Prune (Handcrafted)", "Rule-based", False, False, False),
        TaxonomyRow("Prune (RL-Agent)", "Learning-based", False, True, False),
        TaxonomyRow("NAS", "Learning-based", True, True, False),
        TaxonomyRow("Prune (Automatic)", "Learning-based", True, True, True),
        TaxonomyRow("ALF", "Learning-based", True, True, True),
    ]


def paper_taxonomy() -> List[TaxonomyRow]:
    """Table I exactly as printed in the paper."""
    rows = []
    for method, attrs in TABLE1_TAXONOMY.items():
        rows.append(TaxonomyRow(
            method=method, policy=attrs["policy"],
            no_pretrained=attrs["no_pretrained"],
            learning_policy=attrs["learning_policy"],
            no_exploration=attrs["no_exploration"],
        ))
    return rows


def taxonomy_matches_paper() -> bool:
    """True if the derived classification agrees with Table I for every method."""
    derived = {row.method: row for row in derived_taxonomy()}
    for row in paper_taxonomy():
        mine = derived.get(row.method)
        if mine is None:
            return False
        if (mine.no_pretrained, mine.learning_policy, mine.no_exploration) != (
                row.no_pretrained, row.learning_policy, row.no_exploration):
            return False
    return True


def render() -> str:
    """Render the derived Table I."""
    headers = ["Method", "Policy", "No pre-trained model", "Learning policy",
               "No extensive exploration"]
    return render_table(headers, [row.as_cells() for row in derived_taxonomy()],
                        title="Table I — classification of model compression methods")
