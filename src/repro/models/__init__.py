"""``repro.models`` — CNN architectures used in the ALF paper's evaluation."""

from .googlenet import GoogLeNet, InceptionModule, googlenet
from .lenet import LeNet, lenet
from .plain import ConvBNReLU, PlainNet, plain8, plain20, plain_layer_names
from .registry import (
    available_models,
    bench_input_shape,
    build_model,
    default_input_shape,
)
from .resnet import (
    BasicBlock,
    ResNetCIFAR,
    ResNetImageNet,
    resnet8,
    resnet18,
    resnet20,
    resnet34,
)
from .squeezenet import FireModule, SqueezeNet, squeezenet

__all__ = [
    "PlainNet", "ConvBNReLU", "plain20", "plain8", "plain_layer_names",
    "ResNetCIFAR", "ResNetImageNet", "BasicBlock",
    "resnet20", "resnet8", "resnet18", "resnet34",
    "SqueezeNet", "FireModule", "squeezenet",
    "GoogLeNet", "InceptionModule", "googlenet",
    "LeNet", "lenet",
    "build_model", "available_models", "default_input_shape",
    "bench_input_shape",
]
