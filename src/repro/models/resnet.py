"""Residual networks: ResNet-20 (CIFAR) and ResNet-18 (ImageNet).

ResNet-20 is the full-precision baseline of Table II; ResNet-18 is the
backbone pruned by ALF, AMC, FPGM and LCNN in Table III.  Both follow
He et al. [4]: basic blocks with two 3x3 convolutions and identity
shortcuts, 1x1 projection shortcuts where the shape changes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from ..nn.module import Module, Sequential


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual connection."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x):
        identity = x if self.shortcut is None else self.shortcut(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + identity)


class ResNetCIFAR(Module):
    """CIFAR-style ResNet with ``6n + 2`` layers (ResNet-20 for ``n = 3``)."""

    def __init__(self, num_blocks_per_stage: int = 3, num_classes: int = 10,
                 in_channels: int = 3, base_width: int = 16,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_blocks_per_stage = num_blocks_per_stage
        widths = [base_width, base_width * 2, base_width * 4]
        self.stem_conv = Conv2d(in_channels, widths[0], 3, stride=1, padding=1,
                                bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(widths[0])
        self.relu = ReLU()

        blocks: List[Module] = []
        current = widths[0]
        for stage_index, width in enumerate(widths):
            for block_index in range(num_blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(current, width, stride=stride, rng=rng))
                current = width
        self.layers = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(widths[-1], num_classes, rng=rng)

    @property
    def depth(self) -> int:
        return 6 * self.num_blocks_per_stage + 2

    def forward(self, x):
        x = self.relu(self.stem_bn(self.stem_conv(x)))
        x = self.layers(x)
        x = self.pool(x)
        return self.classifier(x)


class ResNetImageNet(Module):
    """ImageNet-style ResNet built from basic blocks (ResNet-18 / ResNet-34)."""

    def __init__(self, stage_blocks: Sequence[int] = (2, 2, 2, 2), num_classes: int = 1000,
                 in_channels: int = 3, rng: Optional[np.random.Generator] = None):
        super().__init__()
        widths = [64, 128, 256, 512]
        self.stem_conv = Conv2d(in_channels, 64, 7, stride=2, padding=3, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(64)
        self.relu = ReLU()
        self.maxpool = MaxPool2d(3, stride=2)

        blocks: List[Module] = []
        current = 64
        for stage_index, (width, count) in enumerate(zip(widths, stage_blocks)):
            for block_index in range(count):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(current, width, stride=stride, rng=rng))
                current = width
        self.layers = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(widths[-1], num_classes, rng=rng)

    def forward(self, x):
        x = self.relu(self.stem_bn(self.stem_conv(x)))
        x = self.maxpool(x)
        x = self.layers(x)
        x = self.pool(x)
        return self.classifier(x)


def resnet20(num_classes: int = 10, rng: Optional[np.random.Generator] = None,
             base_width: int = 16, in_channels: int = 3) -> ResNetCIFAR:
    """ResNet-20: the full-precision CIFAR baseline of Table II."""
    return ResNetCIFAR(num_blocks_per_stage=3, num_classes=num_classes,
                       base_width=base_width, in_channels=in_channels, rng=rng)


def resnet8(num_classes: int = 10, rng: Optional[np.random.Generator] = None,
            base_width: int = 8, in_channels: int = 3) -> ResNetCIFAR:
    """A shallow ResNet-8 used for fast integration tests."""
    return ResNetCIFAR(num_blocks_per_stage=1, num_classes=num_classes,
                       base_width=base_width, in_channels=in_channels, rng=rng)


def resnet18(num_classes: int = 1000, rng: Optional[np.random.Generator] = None,
             in_channels: int = 3) -> ResNetImageNet:
    """ResNet-18: the ImageNet backbone of Table III."""
    return ResNetImageNet(stage_blocks=(2, 2, 2, 2), num_classes=num_classes,
                          in_channels=in_channels, rng=rng)


def resnet34(num_classes: int = 1000, rng: Optional[np.random.Generator] = None,
             in_channels: int = 3) -> ResNetImageNet:
    """ResNet-34 (provided for completeness of the model zoo)."""
    return ResNetImageNet(stage_blocks=(3, 4, 6, 3), num_classes=num_classes,
                          in_channels=in_channels, rng=rng)
