"""Small LeNet-style CNN used for fast unit / integration tests.

Not part of the paper's evaluation, but a convenient smallest-possible
network to exercise the full ALF pipeline (convert -> train -> compress)
within seconds in the test-suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.layers import Conv2d, Flatten, GlobalAvgPool2d, Linear, MaxPool2d, ReLU
from ..nn.module import Module


class LeNet(Module):
    """Two convolutions, one pooling step and a linear classifier."""

    def __init__(self, num_classes: int = 10, in_channels: int = 1, width: int = 8,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, width, 3, padding=1, rng=rng)
        self.relu1 = ReLU()
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(width, width * 2, 3, padding=1, rng=rng)
        self.relu2 = ReLU()
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(width * 2, num_classes, rng=rng)

    def forward(self, x):
        x = self.pool1(self.relu1(self.conv1(x)))
        x = self.relu2(self.conv2(x))
        x = self.pool(x)
        return self.classifier(x)


def lenet(num_classes: int = 10, in_channels: int = 1, width: int = 8,
          rng: Optional[np.random.Generator] = None) -> LeNet:
    return LeNet(num_classes=num_classes, in_channels=in_channels, width=width, rng=rng)
