"""Plain-N CNNs (ResNets without shortcuts) for CIFAR-style inputs.

Plain-20 is the network used for the paper's design-space exploration
(Fig. 2) and for the hardware study (Fig. 3).  Following He et al. [4], a
Plain-N network for CIFAR consists of an initial 3x3 convolution with 16
filters, three stages of ``2n`` 3x3 convolutions with 16/32/64 filters
(``N = 6n + 2``), a global average pool and a linear classifier.  The
paper's Fig. 3 labels the convolutions CONV1, CONV211 ... CONV432; the same
names are exposed here via :func:`plain_layer_names`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.layers import BatchNorm2d, Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU
from ..nn.module import Module, ModuleList, Sequential


class ConvBNReLU(Module):
    """3x3 convolution followed by batch normalization and ReLU."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 kernel_size: int = 3, use_bn: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        padding = kernel_size // 2
        self.conv = Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                           padding=padding, bias=not use_bn, rng=rng)
        self.bn = BatchNorm2d(out_channels) if use_bn else None
        self.relu = ReLU()

    def forward(self, x):
        x = self.conv(x)
        if self.bn is not None:
            x = self.bn(x)
        return self.relu(x)


class PlainNet(Module):
    """Plain (shortcut-free) CIFAR CNN with ``6n + 2`` layers."""

    def __init__(self, num_blocks_per_stage: int = 3, num_classes: int = 10,
                 in_channels: int = 3, base_width: int = 16, use_bn: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_blocks_per_stage = num_blocks_per_stage
        self.num_classes = num_classes
        self.base_width = base_width
        widths = [base_width, base_width * 2, base_width * 4]

        self.stem = ConvBNReLU(in_channels, widths[0], stride=1, use_bn=use_bn, rng=rng)
        layers: List[Module] = []
        current = widths[0]
        for stage_index, width in enumerate(widths):
            for block_index in range(num_blocks_per_stage):
                # Two convolutions per "block" (matching the ResNet basic block
                # structure that the CONVxyz naming of Fig. 3 refers to).
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                layers.append(ConvBNReLU(current, width, stride=stride, use_bn=use_bn, rng=rng))
                layers.append(ConvBNReLU(width, width, stride=1, use_bn=use_bn, rng=rng))
                current = width
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(widths[-1], num_classes, rng=rng)

    @property
    def depth(self) -> int:
        """Number of weighted layers (convolutions + final linear)."""
        return 6 * self.num_blocks_per_stage + 2

    def forward(self, x):
        x = self.stem(x)
        x = self.features(x)
        x = self.pool(x)
        return self.classifier(x)


def plain20(num_classes: int = 10, rng: Optional[np.random.Generator] = None,
            base_width: int = 16, in_channels: int = 3) -> PlainNet:
    """The Plain-20 network of He et al. used throughout the paper."""
    return PlainNet(num_blocks_per_stage=3, num_classes=num_classes, base_width=base_width,
                    in_channels=in_channels, rng=rng)


def plain8(num_classes: int = 10, rng: Optional[np.random.Generator] = None,
           base_width: int = 8, in_channels: int = 3) -> PlainNet:
    """A shallow Plain-8 variant used to keep CI-scale experiments fast."""
    return PlainNet(num_blocks_per_stage=1, num_classes=num_classes, base_width=base_width,
                    in_channels=in_channels, rng=rng)


def plain_layer_names(num_blocks_per_stage: int = 3) -> List[str]:
    """Paper-style convolution names: CONV1, CONV211, CONV212, ..., CONV432.

    The first digit is the stage (2-4 for the three CIFAR stages), the
    second the block within the stage, the third the convolution within the
    block.
    """
    names = ["CONV1"]
    for stage in range(2, 5):
        for block in range(1, num_blocks_per_stage + 1):
            for conv in (1, 2):
                names.append(f"CONV{stage}{block}{conv}")
    return names
