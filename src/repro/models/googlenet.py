"""GoogLeNet / Inception-v1 (Szegedy et al., 2015).

GoogLeNet is the second reference architecture of Table III.  The network
is built from Inception modules with four parallel branches (1x1, 1x1-3x3,
1x1-5x5, pool-1x1); auxiliary classifiers are omitted because they only
matter for training regularization, not for the parameter / OPs accounting
used in the paper's comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import concatenate
from ..nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from ..nn.module import Module


class ConvRelu(Module):
    """Convolution + ReLU as used inside Inception branches."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv = Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                           padding=padding, rng=rng)
        self.relu = ReLU()

    def forward(self, x):
        return self.relu(self.conv(x))


class InceptionModule(Module):
    """Four-branch Inception block (1x1 / 3x3 / 5x5 / pool-proj)."""

    def __init__(self, in_channels: int, b1: int, b3_reduce: int, b3: int,
                 b5_reduce: int, b5: int, pool_proj: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.branch1 = ConvRelu(in_channels, b1, 1, rng=rng)
        self.branch3_reduce = ConvRelu(in_channels, b3_reduce, 1, rng=rng)
        self.branch3 = ConvRelu(b3_reduce, b3, 3, padding=1, rng=rng)
        self.branch5_reduce = ConvRelu(in_channels, b5_reduce, 1, rng=rng)
        self.branch5 = ConvRelu(b5_reduce, b5, 5, padding=2, rng=rng)
        self.pool = MaxPool2d(3, stride=1)
        self.pool_proj = ConvRelu(in_channels, pool_proj, 1, rng=rng)
        self.out_channels = b1 + b3 + b5 + pool_proj

    def forward(self, x):
        out1 = self.branch1(x)
        out3 = self.branch3(self.branch3_reduce(x))
        out5 = self.branch5(self.branch5_reduce(x))
        # The 3x3/stride-1 max pool shrinks the map by 2 pixels; pad the input
        # so all branches keep the same spatial size.
        pooled = self.pool(x.pad2d(1))
        out_pool = self.pool_proj(pooled)
        return concatenate([out1, out3, out5, out_pool], axis=1)


# Standard GoogLeNet inception configuration:
# (b1, b3_reduce, b3, b5_reduce, b5, pool_proj)
_INCEPTION_CONFIG = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


class GoogLeNet(Module):
    """Inception-v1 without auxiliary heads."""

    def __init__(self, num_classes: int = 1000, in_channels: int = 3,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = ConvRelu(in_channels, 64, 7, stride=2, padding=3, rng=rng)
        self.pool1 = MaxPool2d(3, stride=2)
        self.conv2_reduce = ConvRelu(64, 64, 1, rng=rng)
        self.conv2 = ConvRelu(64, 192, 3, padding=1, rng=rng)
        self.pool2 = MaxPool2d(3, stride=2)

        cfg = _INCEPTION_CONFIG
        self.inception3a = InceptionModule(192, *cfg["3a"], rng=rng)
        self.inception3b = InceptionModule(256, *cfg["3b"], rng=rng)
        self.pool3 = MaxPool2d(3, stride=2)
        self.inception4a = InceptionModule(480, *cfg["4a"], rng=rng)
        self.inception4b = InceptionModule(512, *cfg["4b"], rng=rng)
        self.inception4c = InceptionModule(512, *cfg["4c"], rng=rng)
        self.inception4d = InceptionModule(512, *cfg["4d"], rng=rng)
        self.inception4e = InceptionModule(528, *cfg["4e"], rng=rng)
        self.pool4 = MaxPool2d(3, stride=2)
        self.inception5a = InceptionModule(832, *cfg["5a"], rng=rng)
        self.inception5b = InceptionModule(832, *cfg["5b"], rng=rng)
        self.global_pool = GlobalAvgPool2d()
        self.dropout = Dropout(0.4)
        self.classifier = Linear(1024, num_classes, rng=rng)

    def forward(self, x):
        x = self.pool1(self.conv1(x))
        x = self.pool2(self.conv2(self.conv2_reduce(x)))
        x = self.inception3b(self.inception3a(x))
        x = self.pool3(x)
        x = self.inception4a(x)
        x = self.inception4b(x)
        x = self.inception4c(x)
        x = self.inception4d(x)
        x = self.inception4e(x)
        x = self.pool4(x)
        x = self.inception5b(self.inception5a(x))
        x = self.global_pool(x)
        return self.classifier(x)


def googlenet(num_classes: int = 1000, rng: Optional[np.random.Generator] = None,
              in_channels: int = 3) -> GoogLeNet:
    """GoogLeNet (Inception-v1) as referenced in Table III."""
    return GoogLeNet(num_classes=num_classes, in_channels=in_channels, rng=rng)
