"""Model registry: build any architecture used in the paper by name."""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..nn.module import Module
from .googlenet import googlenet
from .lenet import lenet
from .plain import plain8, plain20
from .resnet import resnet8, resnet18, resnet20, resnet34
from .squeezenet import squeezenet

_REGISTRY: Dict[str, Callable[..., Module]] = {
    "plain20": plain20,
    "plain8": plain8,
    "resnet20": resnet20,
    "resnet8": resnet8,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "squeezenet": squeezenet,
    "googlenet": googlenet,
    "lenet": lenet,
}

# Default image geometry associated with each architecture (channels, H, W);
# used by the metrics and hardware modules when no explicit input is given.
DEFAULT_INPUT_SHAPES: Dict[str, tuple] = {
    "plain20": (3, 32, 32),
    "plain8": (3, 32, 32),
    "resnet20": (3, 32, 32),
    "resnet8": (3, 32, 32),
    "resnet18": (3, 224, 224),
    "resnet34": (3, 224, 224),
    "squeezenet": (3, 224, 224),
    "googlenet": (3, 224, 224),
    "lenet": (1, 16, 16),
}


def available_models() -> list:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


def build_model(name: str, num_classes: Optional[int] = None,
                rng: Optional[np.random.Generator] = None, **kwargs) -> Module:
    """Instantiate a model by registry name.

    ``num_classes`` defaults to each architecture's native setting (10 for
    the CIFAR models, 1000 for the ImageNet models).
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model '{name}'; available: {available_models()}")
    factory = _REGISTRY[key]
    if num_classes is not None:
        kwargs["num_classes"] = num_classes
    return factory(rng=rng, **kwargs)


def default_input_shape(name: str) -> tuple:
    """The (C, H, W) input geometry the architecture was designed for."""
    key = name.lower()
    if key not in DEFAULT_INPUT_SHAPES:
        raise KeyError(f"unknown model '{name}'")
    return DEFAULT_INPUT_SHAPES[key]


def bench_input_shape(name: str, max_hw: int = 64) -> tuple:
    """A tractable (C, H, W) geometry for tests and benchmarks.

    Same as :func:`default_input_shape` but with the spatial extent capped
    at ``max_hw`` — the ImageNet architectures are fully convolutional down
    to their global pooling, so they run unchanged on smaller images while
    keeping whole-zoo sweeps fast.
    """
    c, h, w = default_input_shape(name)
    return (c, min(h, max_hw), min(w, max_hw))
