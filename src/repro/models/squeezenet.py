"""SqueezeNet v1.0 (Iandola et al., 2016).

SqueezeNet appears in Table III as a compact reference architecture.  It is
built from "Fire" modules: a 1x1 squeeze convolution followed by parallel
1x1 and 3x3 expand convolutions whose outputs are concatenated.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import concatenate
from ..nn.layers import AvgPool2d, Conv2d, Dropout, GlobalAvgPool2d, MaxPool2d, ReLU
from ..nn.module import Module, Sequential


class FireModule(Module):
    """Squeeze (1x1) followed by parallel 1x1 / 3x3 expand convolutions."""

    def __init__(self, in_channels: int, squeeze: int, expand1x1: int, expand3x3: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.squeeze = Conv2d(in_channels, squeeze, 1, rng=rng)
        self.expand1x1 = Conv2d(squeeze, expand1x1, 1, rng=rng)
        self.expand3x3 = Conv2d(squeeze, expand3x3, 3, padding=1, rng=rng)
        self.relu = ReLU()
        self.out_channels = expand1x1 + expand3x3

    def forward(self, x):
        squeezed = self.relu(self.squeeze(x))
        left = self.relu(self.expand1x1(squeezed))
        right = self.relu(self.expand3x3(squeezed))
        return concatenate([left, right], axis=1)


class SqueezeNet(Module):
    """SqueezeNet v1.0 with the standard Fire module configuration."""

    def __init__(self, num_classes: int = 1000, in_channels: int = 3,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, 96, 7, stride=2, padding=3, rng=rng)
        self.relu = ReLU()
        self.pool1 = MaxPool2d(3, stride=2)
        self.fire2 = FireModule(96, 16, 64, 64, rng=rng)
        self.fire3 = FireModule(128, 16, 64, 64, rng=rng)
        self.fire4 = FireModule(128, 32, 128, 128, rng=rng)
        self.pool4 = MaxPool2d(3, stride=2)
        self.fire5 = FireModule(256, 32, 128, 128, rng=rng)
        self.fire6 = FireModule(256, 48, 192, 192, rng=rng)
        self.fire7 = FireModule(384, 48, 192, 192, rng=rng)
        self.fire8 = FireModule(384, 64, 256, 256, rng=rng)
        self.pool8 = MaxPool2d(3, stride=2)
        self.fire9 = FireModule(512, 64, 256, 256, rng=rng)
        self.dropout = Dropout(0.5)
        # The classifier is a 1x1 convolution, as in the original network.
        self.conv10 = Conv2d(512, num_classes, 1, rng=rng)
        self.global_pool = GlobalAvgPool2d()

    def forward(self, x):
        x = self.pool1(self.relu(self.conv1(x)))
        x = self.fire2(x)
        x = self.fire3(x)
        x = self.fire4(x)
        x = self.pool4(x)
        x = self.fire5(x)
        x = self.fire6(x)
        x = self.fire7(x)
        x = self.fire8(x)
        x = self.pool8(x)
        x = self.fire9(x)
        x = self.dropout(x)
        x = self.relu(self.conv10(x))
        return self.global_pool(x)


def squeezenet(num_classes: int = 1000, rng: Optional[np.random.Generator] = None,
               in_channels: int = 3) -> SqueezeNet:
    """SqueezeNet v1.0 as referenced in Table III."""
    return SqueezeNet(num_classes=num_classes, in_channels=in_channels, rng=rng)
