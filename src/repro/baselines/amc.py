"""AMC-style learning-based pruning (He et al., ECCV 2018).

AMC exposes layer-wise pruning ratios as a continuous action space and
trains a DDPG agent whose reward combines accuracy and resource usage.
This reimplementation keeps the essential structure — an agent that
observes per-layer features, proposes per-layer sparsities, evaluates the
resulting compressed model, and improves its policy from the reward — while
replacing the DDPG machinery with a derivative-free cross-entropy-method
(CEM) policy search, which is far better suited to the small numbers of
evaluations affordable on a pure-numpy substrate.  The RL-agent
characteristics the paper contrasts with ALF (needs a cost function, needs
model exploration, layer statistics as the state) are all preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.layers import Conv2d
from ..nn.module import Module
from .common import FilterPruner, LayerPruningDecision, PruningPlan, keep_top_filters, prunable_convolutions
from .magnitude import MagnitudePruner


@dataclass
class LayerState:
    """The per-layer observation vector the agent conditions on (as in AMC)."""

    index: int
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    params: int

    def as_vector(self) -> np.ndarray:
        return np.array([
            self.index,
            self.in_channels,
            self.out_channels,
            self.kernel_size,
            self.stride,
            self.params,
        ], dtype=float)


@dataclass
class AMCResult:
    """Outcome of an agent search."""

    plan: PruningPlan
    per_layer_ratios: Dict[str, float]
    reward: float
    reward_history: List[float] = field(default_factory=list)


def default_reward(accuracy: float, ops_fraction: float, target_ops_fraction: float) -> float:
    """Accuracy-driven reward with a hard penalty for missing the OPs budget.

    ``ops_fraction`` is the compressed model's OPs divided by the original
    OPs; the agent must push it below ``target_ops_fraction``.
    """
    budget_violation = max(0.0, ops_fraction - target_ops_fraction)
    return accuracy - 2.0 * budget_violation


class AMCPruner(FilterPruner):
    """Learning-based pruner: searches per-layer ratios to maximize a reward."""

    method_name = "AMC"
    policy = "RL-Agent"

    def __init__(self, evaluate: Optional[Callable[[Module, PruningPlan], float]] = None,
                 target_ops_fraction: float = 0.5, iterations: int = 5,
                 population: int = 8, elite_fraction: float = 0.25,
                 max_ratio: float = 0.8, seed: int = 0):
        """
        Parameters
        ----------
        evaluate:
            Callback returning the accuracy of ``model`` under ``plan``
            (typically: apply masks to a copy, run validation).  When
            ``None`` a proxy based on preserved weight magnitude is used,
            which keeps the search self-contained for cost-only studies.
        target_ops_fraction:
            OPs budget relative to the unpruned model (AMC's constraint).
        iterations, population, elite_fraction:
            Cross-entropy policy-search schedule.
        max_ratio:
            Upper bound on any layer's pruning ratio.
        """
        self.evaluate = evaluate
        self.target_ops_fraction = target_ops_fraction
        self.iterations = iterations
        self.population = population
        self.elite_fraction = elite_fraction
        self.max_ratio = max_ratio
        self.rng = np.random.default_rng(seed)
        self._scorer = MagnitudePruner()
        self.last_result: Optional[AMCResult] = None

    # ------------------------------------------------------------------ #
    # FilterPruner interface
    # ------------------------------------------------------------------ #
    def score_filters(self, name: str, conv: Conv2d) -> np.ndarray:
        # Within a layer the agent only chooses *how many* filters to drop;
        # the selection of which filters follows magnitude ranking (as AMC
        # does for fine-grained selection).
        return self._scorer.score_filters(name, conv)

    def plan(self, model: Module, prune_ratio: float, min_kernel: int = 2) -> PruningPlan:
        """Run the agent search; ``prune_ratio`` sets the OPs budget.

        The overall ``prune_ratio`` argument is interpreted as the fraction
        of operations to remove (AMC's resource constraint), and the agent
        distributes per-layer ratios to meet it.
        """
        result = self.search(model, ops_budget=1.0 - prune_ratio, min_kernel=min_kernel)
        self.last_result = result
        return result.plan

    # ------------------------------------------------------------------ #
    # Agent search
    # ------------------------------------------------------------------ #
    def layer_states(self, model: Module, min_kernel: int = 2) -> List[Tuple[str, LayerState]]:
        states = []
        for index, (name, conv) in enumerate(prunable_convolutions(model, min_kernel)):
            states.append((name, LayerState(
                index=index,
                in_channels=conv.in_channels,
                out_channels=conv.out_channels,
                kernel_size=conv.kernel_size[0],
                stride=conv.stride[0],
                params=conv.weight.size,
            )))
        return states

    def _plan_from_ratios(self, model: Module, ratios: np.ndarray,
                          min_kernel: int = 2) -> PruningPlan:
        plan = PruningPlan(method=self.method_name)
        for ratio, (name, conv) in zip(ratios, prunable_convolutions(model, min_kernel)):
            keep_count = max(1, int(round(conv.out_channels * (1.0 - ratio))))
            scores = self.score_filters(name, conv)
            plan.decisions.append(LayerPruningDecision(
                name=name, total_filters=conv.out_channels,
                kept_filters=keep_top_filters(scores, keep_count),
            ))
        return plan

    def _proxy_accuracy(self, model: Module, plan: PruningPlan) -> float:
        """Fraction of total weight magnitude preserved by the plan (cheap proxy)."""
        modules = dict(model.named_modules())
        kept = 0.0
        total = 0.0
        for decision in plan.decisions:
            conv = modules[decision.name]
            magnitudes = np.abs(conv.weight.data).reshape(conv.out_channels, -1).sum(axis=1)
            total += magnitudes.sum()
            kept += magnitudes[decision.kept_filters].sum()
        return kept / max(total, 1e-12)

    def _ops_fraction(self, model: Module, ratios: np.ndarray, min_kernel: int = 2) -> float:
        """Approximate OPs of the pruned model relative to the original.

        Uses the product of consecutive survival fractions (output filters of
        layer i are the input channels of layer i+1), the same first-order
        model AMC uses while searching.
        """
        convs = prunable_convolutions(model, min_kernel)
        original = 0.0
        pruned = 0.0
        previous_survival = 1.0
        for ratio, (name, conv) in zip(ratios, convs):
            survival = 1.0 - ratio
            cost = conv.weight.size
            original += cost
            pruned += cost * survival * previous_survival
            previous_survival = survival
        return pruned / max(original, 1e-12)

    def search(self, model: Module, ops_budget: float = 0.5,
               min_kernel: int = 2) -> AMCResult:
        """Cross-entropy search over per-layer pruning ratios."""
        states = self.layer_states(model, min_kernel)
        num_layers = len(states)
        if num_layers == 0:
            raise ValueError("model has no prunable convolutions")

        mean = np.full(num_layers, 0.3)
        std = np.full(num_layers, 0.2)
        best_reward = -np.inf
        best_ratios = mean.copy()
        history: List[float] = []
        elite_count = max(1, int(self.population * self.elite_fraction))

        for _ in range(self.iterations):
            candidates = np.clip(
                self.rng.normal(mean, std, size=(self.population, num_layers)),
                0.0, self.max_ratio,
            )
            rewards = np.empty(self.population)
            for row in range(self.population):
                ratios = candidates[row]
                plan = self._plan_from_ratios(model, ratios, min_kernel)
                accuracy = (self.evaluate(model, plan) if self.evaluate is not None
                            else self._proxy_accuracy(model, plan))
                ops_fraction = self._ops_fraction(model, ratios, min_kernel)
                rewards[row] = default_reward(accuracy, ops_fraction, ops_budget)
            order = np.argsort(-rewards)
            elite = candidates[order[:elite_count]]
            mean = elite.mean(axis=0)
            std = elite.std(axis=0) + 1e-3
            if rewards[order[0]] > best_reward:
                best_reward = float(rewards[order[0]])
                best_ratios = candidates[order[0]].copy()
            history.append(float(rewards[order[0]]))

        plan = self._plan_from_ratios(model, best_ratios, min_kernel)
        ratios_by_name = {name: float(r) for (name, _), r in zip(states, best_ratios)}
        return AMCResult(plan=plan, per_layer_ratios=ratios_by_name,
                         reward=best_reward, reward_history=history)
