"""LCNN-style lookup / dictionary-sharing convolution (Bagherinezhad et al.).

LCNN learns a small dictionary of shared filter components per layer; every
filter is expressed as a sparse combination of dictionary atoms, so
inference convolves the input with the dictionary once and reassembles the
layer outputs with cheap lookups.  The paper identifies LCNN as the closest
prior work to ALF (both share filters), so this baseline implements the
same cost structure: a per-layer dictionary of ``D`` atoms and ``S``-sparse
combination weights.  Dictionaries are obtained by a numpy k-means over the
layer's filters, which captures the weight-sharing behaviour without
requiring end-to-end retraining on this substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..metrics.ops import OPS_PER_MAC, profile_model
from ..nn.layers import Conv2d
from ..nn.module import Module
from .common import prunable_convolutions


@dataclass
class LayerDictionary:
    """Shared-filter dictionary of one convolution layer."""

    name: str
    atoms: np.ndarray          # (D, Ci*K*K)
    assignments: np.ndarray    # (Co, S) atom indices per filter
    coefficients: np.ndarray   # (Co, S) combination weights
    kernel_size: int
    in_channels: int
    out_channels: int

    @property
    def dictionary_size(self) -> int:
        return self.atoms.shape[0]

    @property
    def sparsity(self) -> int:
        return self.assignments.shape[1]

    def reconstruct_filters(self) -> np.ndarray:
        """Approximate the original filters from the dictionary."""
        flat = np.zeros((self.out_channels, self.atoms.shape[1]))
        for filter_index in range(self.out_channels):
            atoms = self.atoms[self.assignments[filter_index]]
            flat[filter_index] = self.coefficients[filter_index] @ atoms
        return flat.reshape(self.out_channels, self.in_channels,
                            self.kernel_size, self.kernel_size)

    def macs(self, output_hw: Tuple[int, int]) -> int:
        """Inference cost: dictionary convolution + sparse recombination."""
        oh, ow = output_hw
        dictionary_conv = (self.dictionary_size * self.in_channels
                           * self.kernel_size ** 2 * oh * ow)
        recombination = self.out_channels * self.sparsity * oh * ow
        return dictionary_conv + recombination

    def params(self) -> int:
        return int(self.atoms.size + self.coefficients.size)


def _kmeans(points: np.ndarray, clusters: int, iterations: int,
            rng: np.random.Generator) -> np.ndarray:
    """Plain Lloyd's k-means returning the cluster centroids."""
    clusters = min(clusters, len(points))
    centroids = points[rng.choice(len(points), size=clusters, replace=False)].copy()
    for _ in range(iterations):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        for cluster in range(clusters):
            members = points[labels == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return centroids


@dataclass
class LCNNCompressionResult:
    """Dictionary compression of a whole model."""

    dictionaries: List[LayerDictionary] = field(default_factory=list)

    def total_params(self) -> int:
        return sum(d.params() for d in self.dictionaries)


class LCNNCompressor:
    """Learn per-layer filter dictionaries and report LCNN-style costs."""

    method_name = "LCNN"
    policy = "Automatic"

    def __init__(self, dictionary_fraction: float = 0.25, sparsity: int = 3,
                 kmeans_iterations: int = 10, seed: int = 0):
        if not 0.0 < dictionary_fraction <= 1.0:
            raise ValueError("dictionary_fraction must lie in (0, 1]")
        if sparsity < 1:
            raise ValueError("sparsity must be at least 1")
        self.dictionary_fraction = dictionary_fraction
        self.sparsity = sparsity
        self.kmeans_iterations = kmeans_iterations
        self.rng = np.random.default_rng(seed)

    def compress_layer(self, name: str, conv: Conv2d) -> LayerDictionary:
        filters = conv.weight.data.reshape(conv.out_channels, -1)
        dictionary_size = max(1, int(round(conv.out_channels * self.dictionary_fraction)))
        atoms = _kmeans(filters, dictionary_size, self.kmeans_iterations, self.rng)
        sparsity = min(self.sparsity, len(atoms))

        assignments = np.zeros((conv.out_channels, sparsity), dtype=int)
        coefficients = np.zeros((conv.out_channels, sparsity))
        # Greedy matching-pursuit style assignment of atoms to each filter.
        for filter_index, target in enumerate(filters):
            residual = target.copy()
            for slot in range(sparsity):
                projections = atoms @ residual
                norms = (atoms ** 2).sum(axis=1) + 1e-12
                scores = projections ** 2 / norms
                best = int(np.argmax(scores))
                coefficient = projections[best] / norms[best]
                assignments[filter_index, slot] = best
                coefficients[filter_index, slot] = coefficient
                residual = residual - coefficient * atoms[best]
        return LayerDictionary(
            name=name, atoms=atoms, assignments=assignments, coefficients=coefficients,
            kernel_size=conv.kernel_size[0], in_channels=conv.in_channels,
            out_channels=conv.out_channels,
        )

    def compress(self, model: Module, min_kernel: int = 2,
                 apply: bool = False) -> LCNNCompressionResult:
        """Build dictionaries for every eligible convolution.

        With ``apply=True`` the convolution weights are replaced by their
        dictionary reconstruction (useful to measure the accuracy impact).
        """
        result = LCNNCompressionResult()
        for name, conv in prunable_convolutions(model, min_kernel=min_kernel):
            dictionary = self.compress_layer(name, conv)
            if apply:
                conv.weight.data = dictionary.reconstruct_filters()
            result.dictionaries.append(dictionary)
        return result

    def effective_cost(self, model: Module, result: LCNNCompressionResult,
                       input_shape: Tuple[int, int, int],
                       conv_only: bool = False) -> Dict[str, float]:
        """Params / MACs / OPs of the model with LCNN-style inference."""
        profile = profile_model(model, input_shape)
        dictionaries = {d.name: d for d in result.dictionaries}
        params = 0.0
        macs = 0.0
        for layer in profile.layers:
            if conv_only and layer.kind == "linear":
                continue
            if layer.name in dictionaries:
                dictionary = dictionaries[layer.name]
                params += dictionary.params()
                macs += dictionary.macs(tuple(layer.output_shape[1:]))
            else:
                params += layer.params
                macs += layer.macs
        return {"params": params, "macs": macs, "ops": macs * OPS_PER_MAC}
