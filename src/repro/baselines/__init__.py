"""``repro.baselines`` — compression methods ALF is compared against.

* :class:`MagnitudePruner` — rule-based magnitude filter pruning (Han et al. style).
* :class:`FPGMPruner` — filter pruning via geometric median (He et al., CVPR'19).
* :class:`AMCPruner` — learning-based agent searching per-layer ratios (He et al., ECCV'18).
* :class:`LCNNCompressor` — lookup/dictionary filter sharing (Bagherinezhad et al.).
* :class:`LowRankDecomposer` — SVD low-rank factorization (rule-based).
"""

from .amc import AMCPruner, AMCResult, LayerState, default_reward
from .common import (
    FilterPruner,
    LayerPruningDecision,
    PruningPlan,
    apply_filter_masks,
    effective_cost,
    keep_top_filters,
    prunable_convolutions,
)
from .fpgm import FPGMPruner, geometric_median
from .lcnn import LayerDictionary, LCNNCompressionResult, LCNNCompressor
from .lowrank import LayerFactorization, LowRankDecomposer, LowRankResult
from .magnitude import MagnitudePruner

__all__ = [
    "FilterPruner", "PruningPlan", "LayerPruningDecision",
    "prunable_convolutions", "apply_filter_masks", "effective_cost", "keep_top_filters",
    "MagnitudePruner",
    "FPGMPruner", "geometric_median",
    "AMCPruner", "AMCResult", "LayerState", "default_reward",
    "LCNNCompressor", "LCNNCompressionResult", "LayerDictionary",
    "LowRankDecomposer", "LowRankResult", "LayerFactorization",
    "MagnitudeMethod", "FPGMMethod", "AMCMethod", "LCNNMethod", "LowRankMethod",
    "MagnitudeSpec", "FPGMSpec", "AMCSpec", "LCNNSpec", "LowRankSpec",
]

# Unified-pipeline adapters for every baseline live in ``repro.api``;
# re-export them lazily so old ``repro.baselines`` imports keep working
# alongside the new protocol-based surface.
from .._compat import lazy_reexport

__getattr__ = lazy_reexport(__name__, {
    **{name: "repro.api.adapters" for name in (
        "MagnitudeMethod", "FPGMMethod", "AMCMethod", "LCNNMethod",
        "LowRankMethod")},
    **{name: "repro.api.spec" for name in (
        "MagnitudeSpec", "FPGMSpec", "AMCSpec", "LCNNSpec", "LowRankSpec")},
})
