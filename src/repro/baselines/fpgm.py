"""FPGM: Filter Pruning via Geometric Median (He et al., CVPR 2019).

FPGM removes the filters closest to the geometric median of all filters in
a layer — the intuition being that such filters are the most "replaceable"
by the remaining ones.  It is the handcrafted-policy baseline of Tables II
and III.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Conv2d
from .common import FilterPruner


def geometric_median(points: np.ndarray, iterations: int = 50, eps: float = 1e-8) -> np.ndarray:
    """Weiszfeld's algorithm for the geometric median of row vectors."""
    median = points.mean(axis=0)
    for _ in range(iterations):
        distances = np.linalg.norm(points - median, axis=1)
        distances = np.maximum(distances, eps)
        weights = 1.0 / distances
        updated = (points * weights[:, None]).sum(axis=0) / weights.sum()
        if np.linalg.norm(updated - median) < eps:
            median = updated
            break
        median = updated
    return median


class FPGMPruner(FilterPruner):
    """Prune filters nearest to the layer's geometric median.

    The returned score is each filter's distance to the geometric median, so
    the *farthest* (most distinctive) filters are kept.
    """

    method_name = "FPGM"
    policy = "Handcrafted"

    def __init__(self, iterations: int = 50):
        self.iterations = iterations

    def score_filters(self, name: str, conv: Conv2d) -> np.ndarray:
        filters = conv.weight.data.reshape(conv.out_channels, -1)
        median = geometric_median(filters, iterations=self.iterations)
        return np.linalg.norm(filters - median, axis=1)
