"""Magnitude-based filter pruning (rule-based baseline, Han et al. style).

Han et al. [3] rank weights by magnitude; applied at filter granularity
this becomes the simplest structured baseline: a filter's saliency is the
L1 norm of its weights, and the lowest-norm filters are removed.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Conv2d
from .common import FilterPruner


class MagnitudePruner(FilterPruner):
    """Rank filters by the L1 (or L2) norm of their weights."""

    method_name = "Magnitude"
    policy = "Handcrafted"

    def __init__(self, norm: str = "l1"):
        if norm not in ("l1", "l2"):
            raise ValueError("norm must be 'l1' or 'l2'")
        self.norm = norm

    def score_filters(self, name: str, conv: Conv2d) -> np.ndarray:
        weights = conv.weight.data.reshape(conv.out_channels, -1)
        if self.norm == "l1":
            return np.abs(weights).sum(axis=1)
        return np.sqrt((weights ** 2).sum(axis=1))
