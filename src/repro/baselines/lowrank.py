"""Low-rank decomposition baseline (rule-based compression).

Classic low-rank methods (Zhang et al. TPAMI'16, Tucker/CP variants)
factorize a convolution's ``(Co, Ci*K*K)`` weight matrix into two thin
matrices of rank ``r``; at inference the layer becomes a ``K x K``
convolution with ``r`` output channels followed by a 1x1 convolution with
``Co`` outputs — structurally identical to the deployed ALF block, which is
why the paper groups the two under "low-rank" techniques.  Here the rank is
chosen either explicitly or from an energy (singular-value mass) threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..metrics.ops import OPS_PER_MAC, profile_model
from ..nn.layers import Conv2d
from ..nn.module import Module
from .common import prunable_convolutions


@dataclass
class LayerFactorization:
    """SVD factorization of one convolution layer."""

    name: str
    rank: int
    code_weight: np.ndarray       # (rank, Ci, K, K)
    expansion_weight: np.ndarray  # (Co, rank, 1, 1)
    in_channels: int
    out_channels: int
    kernel_size: int
    approximation_error: float

    def params(self) -> int:
        return int(self.code_weight.size + self.expansion_weight.size)

    def macs(self, output_hw: Tuple[int, int]) -> int:
        oh, ow = output_hw
        code = self.in_channels * self.rank * self.kernel_size ** 2 * oh * ow
        expansion = self.rank * self.out_channels * oh * ow
        return code + expansion

    def reconstruct(self) -> np.ndarray:
        """Reassemble the dense filter bank from the two factors."""
        code = self.code_weight.reshape(self.rank, -1)                 # (r, Ci*K*K)
        expansion = self.expansion_weight.reshape(self.out_channels, self.rank)
        return (expansion @ code).reshape(
            self.out_channels, self.in_channels, self.kernel_size, self.kernel_size)


@dataclass
class LowRankResult:
    factorizations: List[LayerFactorization] = field(default_factory=list)

    def by_name(self, name: str) -> LayerFactorization:
        for factorization in self.factorizations:
            if factorization.name == name:
                return factorization
        raise KeyError(f"no factorization for layer '{name}'")


class LowRankDecomposer:
    """Factorize convolutions with a truncated SVD over the output channels."""

    method_name = "Low-Rank"
    policy = "Handcrafted"

    def __init__(self, rank_fraction: Optional[float] = 0.5,
                 energy_threshold: Optional[float] = None):
        """Choose the rank as ``rank_fraction * Co`` or from an energy threshold.

        Exactly one of the two selection modes must be provided.
        """
        if (rank_fraction is None) == (energy_threshold is None):
            raise ValueError("provide exactly one of rank_fraction / energy_threshold")
        if rank_fraction is not None and not 0.0 < rank_fraction <= 1.0:
            raise ValueError("rank_fraction must lie in (0, 1]")
        if energy_threshold is not None and not 0.0 < energy_threshold <= 1.0:
            raise ValueError("energy_threshold must lie in (0, 1]")
        self.rank_fraction = rank_fraction
        self.energy_threshold = energy_threshold

    def _select_rank(self, singular_values: np.ndarray, out_channels: int) -> int:
        if self.rank_fraction is not None:
            return max(1, int(round(out_channels * self.rank_fraction)))
        energy = np.cumsum(singular_values ** 2)
        energy /= energy[-1]
        return int(np.searchsorted(energy, self.energy_threshold) + 1)

    def decompose_layer(self, name: str, conv: Conv2d) -> LayerFactorization:
        weights = conv.weight.data.reshape(conv.out_channels, -1)     # (Co, Ci*K*K)
        u, s, vt = np.linalg.svd(weights, full_matrices=False)
        rank = min(self._select_rank(s, conv.out_channels), len(s))
        code = (np.diag(s[:rank]) @ vt[:rank]).reshape(
            rank, conv.in_channels, conv.kernel_size[0], conv.kernel_size[1])
        expansion = u[:, :rank].reshape(conv.out_channels, rank, 1, 1)
        approx = (u[:, :rank] * s[:rank]) @ vt[:rank]
        error = float(np.linalg.norm(weights - approx) / (np.linalg.norm(weights) + 1e-12))
        return LayerFactorization(
            name=name, rank=rank, code_weight=code, expansion_weight=expansion,
            in_channels=conv.in_channels, out_channels=conv.out_channels,
            kernel_size=conv.kernel_size[0], approximation_error=error,
        )

    def decompose(self, model: Module, min_kernel: int = 2,
                  apply: bool = False) -> LowRankResult:
        """Factorize every eligible convolution; optionally write back the low-rank weights."""
        result = LowRankResult()
        for name, conv in prunable_convolutions(model, min_kernel=min_kernel):
            factorization = self.decompose_layer(name, conv)
            if apply:
                conv.weight.data = factorization.reconstruct()
            result.factorizations.append(factorization)
        return result

    def effective_cost(self, model: Module, result: LowRankResult,
                       input_shape: Tuple[int, int, int],
                       conv_only: bool = False) -> Dict[str, float]:
        """Params / MACs / OPs of the model when run in factorized form."""
        profile = profile_model(model, input_shape)
        factorizations = {f.name: f for f in result.factorizations}
        params = 0.0
        macs = 0.0
        for layer in profile.layers:
            if conv_only and layer.kind == "linear":
                continue
            if layer.name in factorizations:
                factorization = factorizations[layer.name]
                params += factorization.params()
                macs += factorization.macs(tuple(layer.output_shape[1:]))
            else:
                params += layer.params
                macs += layer.macs
        return {"params": params, "macs": macs, "ops": macs * OPS_PER_MAC}
