"""Shared infrastructure for the baseline compression methods.

Every baseline (magnitude pruning, FPGM, AMC-style RL agent, LCNN, low-rank
decomposition) implements the :class:`FilterPruner` interface: given a
model it decides, per convolution, which output filters to keep, applies
structured masks, and can report the resulting Params / OPs so the
comparison tables (Tables II and III) can be regenerated on the same
substrate as ALF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.ops import OPS_PER_MAC, profile_model
from ..nn.layers import Conv2d
from ..nn.module import Module


@dataclass
class LayerPruningDecision:
    """Which output filters of one convolution survive pruning."""

    name: str
    total_filters: int
    kept_filters: np.ndarray  # indices of kept filters

    @property
    def num_kept(self) -> int:
        return int(len(self.kept_filters))

    @property
    def prune_ratio(self) -> float:
        return 1.0 - self.num_kept / self.total_filters


@dataclass
class PruningPlan:
    """Complete structured-pruning decision over a model."""

    method: str
    decisions: List[LayerPruningDecision] = field(default_factory=list)

    def decision_for(self, name: str) -> LayerPruningDecision:
        for decision in self.decisions:
            if decision.name == name:
                return decision
        raise KeyError(f"no pruning decision recorded for layer '{name}'")

    @property
    def overall_filter_reduction(self) -> float:
        total = sum(d.total_filters for d in self.decisions)
        kept = sum(d.num_kept for d in self.decisions)
        return 1.0 - kept / max(1, total)


def prunable_convolutions(model: Module, min_kernel: int = 2) -> List[Tuple[str, Conv2d]]:
    """Named convolutions eligible for structured filter pruning.

    1x1 projection shortcuts are excluded by default (``min_kernel=2``),
    mirroring the convention used when converting a model to ALF form.
    """
    layers: List[Tuple[str, Conv2d]] = []
    for name, module in model.named_modules():
        if isinstance(module, Conv2d) and module.kernel_size[0] >= min_kernel:
            layers.append((name, module))
    return layers


def apply_filter_masks(model: Module, plan: PruningPlan) -> None:
    """Zero the weights of pruned filters in place (structured sparsity).

    The filters are not physically removed (removal would require rewiring
    the next layer's input channels); zeroing is sufficient both for
    accuracy evaluation and for the *effective* Params / OPs accounting in
    :func:`effective_cost`, which is how the compared papers report their
    numbers.
    """
    modules = dict(model.named_modules())
    for decision in plan.decisions:
        module = modules[decision.name]
        keep = np.zeros(decision.total_filters, dtype=bool)
        keep[decision.kept_filters] = True
        module.weight.data[~keep] = 0.0
        if module.bias is not None:
            module.bias.data[~keep] = 0.0


def effective_cost(model: Module, plan: PruningPlan,
                   input_shape: Tuple[int, int, int],
                   conv_only: bool = False, profile=None) -> Dict[str, float]:
    """Params / MACs / OPs of the model with pruned filters removed.

    Structured filter pruning removes entire output filters; the following
    convolution loses the corresponding input channels.  This function
    re-computes costs layer by layer, propagating the channel reductions the
    same way the compared methods do in their papers.  ``profile`` accepts a
    precomputed :func:`profile_model` result for the same model/geometry.
    """
    if profile is None:
        profile = profile_model(model, input_shape)
    decisions = {d.name: d for d in plan.decisions}
    modules = dict(model.named_modules())

    params = 0.0
    macs = 0.0
    # Fraction of surviving output channels per layer name (used to shrink the
    # *input* side of the consumer layer).
    survival: Dict[str, float] = {
        name: decisions[name].num_kept / decisions[name].total_filters
        for name in decisions
    }
    previous_survival = 1.0
    for layer in profile.layers:
        if conv_only and layer.kind == "linear":
            continue
        module = modules.get(layer.name)
        out_fraction = survival.get(layer.name, 1.0)
        if isinstance(module, Conv2d):
            in_fraction = previous_survival
            params += layer.params * out_fraction * in_fraction
            macs += layer.macs * out_fraction * in_fraction
            previous_survival = out_fraction
        else:
            params += layer.params * previous_survival
            macs += layer.macs * previous_survival
            previous_survival = 1.0
    return {"params": params, "macs": macs, "ops": macs * OPS_PER_MAC}


def keep_top_filters(scores: np.ndarray, keep_count: int) -> np.ndarray:
    """Indices of the ``keep_count`` highest-scoring filters (stable order)."""
    keep_count = int(np.clip(keep_count, 1, len(scores)))
    order = np.argsort(-scores, kind="stable")
    return np.sort(order[:keep_count])


class FilterPruner:
    """Interface implemented by every baseline pruning method."""

    method_name = "base"
    policy = "—"

    def score_filters(self, name: str, conv: Conv2d) -> np.ndarray:
        """Per-filter saliency scores (higher = more important)."""
        raise NotImplementedError

    def plan(self, model: Module, prune_ratio: float,
             min_kernel: int = 2) -> PruningPlan:
        """Decide which filters to keep so that ``prune_ratio`` of them are removed."""
        if not 0.0 <= prune_ratio < 1.0:
            raise ValueError("prune_ratio must lie in [0, 1)")
        plan = PruningPlan(method=self.method_name)
        for name, conv in prunable_convolutions(model, min_kernel=min_kernel):
            scores = self.score_filters(name, conv)
            keep_count = max(1, int(round(conv.out_channels * (1.0 - prune_ratio))))
            plan.decisions.append(LayerPruningDecision(
                name=name,
                total_filters=conv.out_channels,
                kept_filters=keep_top_filters(scores, keep_count),
            ))
        return plan

    def prune(self, model: Module, prune_ratio: float,
              min_kernel: int = 2) -> PruningPlan:
        """Plan and immediately apply structured masks to the model."""
        plan = self.plan(model, prune_ratio, min_kernel=min_kernel)
        apply_filter_masks(model, plan)
        return plan
