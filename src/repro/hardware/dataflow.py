"""Row-stationary dataflow model (Eyeriss-style spatial mapping).

In the row-stationary (RS) dataflow, each PE computes 1D row convolutions:
a logical *PE set* of ``K`` rows by ``Ho`` columns produces the partial
sums of one (input-channel, output-channel) plane.  Logical sets are
replicated across the physical 16x16 array over the output-channel,
input-channel and batch dimensions, and folded temporally when they do not
fit.  The key quantities derived here are

* the number of physically occupied PEs (array utilization), and
* the number of temporal passes needed to cover the whole layer.

Heavily pruned layers (few output channels) limit the replication factor
and can leave most of the array idle — this is exactly the conv312 anomaly
the paper highlights in Fig. 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from .layer import ConvLayerShape
from .spec import EyerissSpec


@dataclass(frozen=True)
class SpatialMapping:
    """Result of mapping one layer's logical PE sets onto the physical array."""

    set_rows: int           # rows of one logical PE set (= kernel height, capped)
    set_cols: int           # cols of one logical PE set (= output rows, capped)
    sets_vertical: int      # logical sets stacked vertically on the array
    sets_horizontal: int    # logical sets stacked horizontally on the array
    replication: int        # total logical sets mapped simultaneously
    used_pes: int           # physically busy PEs
    spatial_folds: int      # temporal folds needed because Ho exceeds the array width
    temporal_passes: int    # total passes over the array to finish the layer

    @property
    def utilization(self) -> float:
        """Fraction of the physical array doing useful work (0, 1]."""
        return self.used_pes / (self.sets_available_pes if self.sets_available_pes else 1)

    # populated by the factory below; kept as a plain attribute for frozen dataclass
    sets_available_pes: int = 256


def map_row_stationary(layer: ConvLayerShape, spec: EyerissSpec) -> SpatialMapping:
    """Map a convolution onto the PE array under the row-stationary dataflow."""
    array_rows, array_cols = spec.pe_rows, spec.pe_cols
    output_rows = layer.output_hw[0]

    # One logical PE set: kernel_size rows x output_rows columns.
    set_rows = min(layer.kernel_size, array_rows)
    set_cols = min(output_rows, array_cols)
    spatial_folds = math.ceil(output_rows / array_cols)

    # Replication of logical sets across the array.  Vertically, different
    # output channels share the same input rows; horizontally, different
    # input channels accumulate into the same output row.  Replication is
    # limited both by the array geometry and by how many channels exist.
    max_vertical = max(1, array_rows // set_rows)
    max_horizontal = max(1, array_cols // set_cols)
    sets_vertical = min(max_vertical, layer.out_channels)
    sets_horizontal = min(max_horizontal, layer.in_channels)
    replication = sets_vertical * sets_horizontal

    used_pes = set_rows * set_cols * replication
    used_pes = min(used_pes, spec.num_pes)

    # Temporal passes: every (ci, co, n, spatial fold) combination must be
    # scheduled; ``replication`` of them run concurrently.
    total_sets = layer.in_channels * layer.out_channels * layer.batch * spatial_folds
    temporal_passes = math.ceil(total_sets / replication)

    return SpatialMapping(
        set_rows=set_rows,
        set_cols=set_cols,
        sets_vertical=sets_vertical,
        sets_horizontal=sets_horizontal,
        replication=replication,
        used_pes=used_pes,
        spatial_folds=spatial_folds,
        temporal_passes=temporal_passes,
        sets_available_pes=spec.num_pes,
    )
