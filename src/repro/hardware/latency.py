"""Latency model: compute-bound vs. memory-bound execution time per layer.

Latency is reported in cycles, with the off-chip traffic normalized to a
register bandwidth of 2 bytes/cycle as in the paper.  A layer's execution
time is the maximum of its compute time (MACs divided by the number of
*usefully occupied* PEs) and its DRAM streaming time — low array
utilization therefore directly translates into longer latency, which is how
the conv312 anomaly of Fig. 3 arises for heavily pruned layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapper import Mapping
from .spec import EyerissSpec


@dataclass
class LatencyEstimate:
    """Cycle counts for one layer."""

    name: str
    compute_cycles: float
    dram_cycles: float
    utilization: float

    @property
    def total_cycles(self) -> float:
        """Overall latency assuming compute and DRAM streaming overlap."""
        return max(self.compute_cycles, self.dram_cycles)

    @property
    def bound(self) -> str:
        return "compute" if self.compute_cycles >= self.dram_cycles else "memory"


def latency_estimate(mapping: Mapping, spec: EyerissSpec) -> LatencyEstimate:
    """Latency of one mapped layer."""
    layer = mapping.layer
    used_pes = max(1, mapping.spatial.used_pes)
    compute_cycles = layer.macs / used_pes
    dram_bytes = mapping.accesses.dram * spec.word_bytes
    dram_cycles = dram_bytes / spec.dram_bytes_per_cycle
    return LatencyEstimate(
        name=layer.name,
        compute_cycles=compute_cycles,
        dram_cycles=dram_cycles,
        utilization=mapping.utilization,
    )
