"""Accelerator specification: the Eyeriss configuration used in the paper.

Sec. IV-B of the paper models an Eyeriss-like accelerator in Timeloop with:

* a 16x16 array of processing elements (PEs),
* three register files (RFs) per PE — one per datatype (inputs, weights,
  outputs) — totalling 220 16-bit words per PE,
* a 128 KB global buffer holding inputs and outputs (weights bypass the
  global buffer and stream directly into the weight RFs),
* energy normalized to the cost of a single RF read and latency normalized
  to a register bandwidth of 2 bytes/cycle.

The per-access energy ratios follow the Eyeriss ISCA'16 paper (RF : buffer
: DRAM roughly 1 : 6 : 200).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyTable:
    """Per-access energy, normalized to one register-file read = 1.0."""

    register_file: float = 1.0
    array_noc: float = 2.0
    global_buffer: float = 6.0
    dram: float = 200.0


@dataclass(frozen=True)
class EyerissSpec:
    """Geometry and memory hierarchy of the modelled accelerator."""

    pe_rows: int = 16
    pe_cols: int = 16
    #: Combined RF capacity per PE in words (inputs + weights + psums).
    rf_words_per_pe: int = 220
    #: Split of the per-PE register file between the three datatypes.
    rf_weight_words: int = 192
    rf_input_words: int = 12
    rf_output_words: int = 16
    #: Global buffer capacity in bytes (holds inputs and outputs only).
    global_buffer_bytes: int = 128 * 1024
    #: Word width of every datatype, in bits.
    word_bits: int = 16
    #: Register bandwidth used to normalize latency (bytes per cycle), as in the paper.
    bytes_per_cycle: float = 2.0
    #: Sustained off-chip (DRAM) bandwidth in bytes per cycle; determines when a
    #: layer becomes memory-bound instead of compute-bound.
    dram_bytes_per_cycle: float = 16.0
    energy: EnergyTable = field(default_factory=EnergyTable)

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def word_bytes(self) -> int:
        return self.word_bits // 8

    @property
    def global_buffer_words(self) -> int:
        return self.global_buffer_bytes // self.word_bytes

    def validate(self) -> "EyerissSpec":
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            raise ValueError("PE array dimensions must be positive")
        if self.rf_weight_words + self.rf_input_words + self.rf_output_words > self.rf_words_per_pe:
            raise ValueError("per-datatype RF split exceeds the per-PE RF capacity")
        if self.word_bits % 8 != 0:
            raise ValueError("word width must be a whole number of bytes")
        if self.bytes_per_cycle <= 0 or self.dram_bytes_per_cycle <= 0:
            raise ValueError("bandwidths must be positive")
        return self


#: The exact configuration described in Sec. IV-B of the paper.
EYERISS_PAPER = EyerissSpec().validate()
