"""Network-level hardware evaluation: the Fig. 3 style per-layer report.

:func:`evaluate_layers` runs the mapper on every convolutional workload of
a network and returns per-layer energy breakdowns (register file / global
buffer / DRAM) and latency estimates; :func:`evaluate_model` extracts the
workloads from a model first.  :func:`compare_networks` aggregates two such
reports into the relative energy / latency improvements the paper quotes
(29% energy, 41% latency for ALF-compressed Plain-20/ResNet-20).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..nn.module import Module
from .energy import EnergyBreakdown, energy_breakdown
from .latency import LatencyEstimate, latency_estimate
from .layer import ConvLayerShape, conv_shapes_from_model
from .mapper import Mapping, search_mapping
from .spec import EYERISS_PAPER, EyerissSpec


@dataclass
class LayerReport:
    """Hardware evaluation of one convolutional workload."""

    layer: ConvLayerShape
    energy: EnergyBreakdown
    latency: LatencyEstimate
    #: The winning dataflow mapping.  ``None`` on reports rebuilt from the
    #: wire form: the tiling search internals do not travel, only their
    #: energy / latency outcome does.
    mapping: Optional[Mapping] = None

    # -- wire format ---------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form: workload geometry + energy + latency breakdowns."""
        return {
            "layer": {**asdict(self.layer), "input_hw": list(self.layer.input_hw)},
            "energy": {
                "name": self.energy.name,
                "register_file": float(self.energy.register_file),
                "global_buffer": float(self.energy.global_buffer),
                "dram": float(self.energy.dram),
            },
            "latency": {
                "name": self.latency.name,
                "compute_cycles": float(self.latency.compute_cycles),
                "dram_cycles": float(self.latency.dram_cycles),
                "utilization": float(self.latency.utilization),
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LayerReport":
        shape = payload["layer"]
        return cls(
            layer=ConvLayerShape(**{**shape, "input_hw": tuple(shape["input_hw"])}),
            energy=EnergyBreakdown(**payload["energy"]),
            latency=LatencyEstimate(**payload["latency"]),
        )


@dataclass
class NetworkReport:
    """Hardware evaluation of a whole network (one report per conv workload)."""

    name: str
    layers: List[LayerReport] = field(default_factory=list)

    @property
    def total_energy(self) -> float:
        return sum(report.energy.total for report in self.layers)

    @property
    def total_latency(self) -> float:
        return sum(report.latency.total_cycles for report in self.layers)

    def energy_by_level(self) -> Dict[str, float]:
        totals = {"register_file": 0.0, "global_buffer": 0.0, "dram": 0.0}
        for report in self.layers:
            totals["register_file"] += report.energy.register_file
            totals["global_buffer"] += report.energy.global_buffer
            totals["dram"] += report.energy.dram
        return totals

    def layer_names(self) -> List[str]:
        return [report.layer.name for report in self.layers]

    def grouped_by_base_name(self) -> Dict[str, List[LayerReport]]:
        """Group expansion layers ("<name>_exp") with their code convolution."""
        groups: Dict[str, List[LayerReport]] = {}
        for report in self.layers:
            base = report.layer.name[:-4] if report.layer.name.endswith("_exp") else report.layer.name
            groups.setdefault(base, []).append(report)
        return groups

    def grouped_energy(self) -> Dict[str, EnergyBreakdown]:
        """Per-base-layer energy with code + expansion contributions merged."""
        merged: Dict[str, EnergyBreakdown] = {}
        for base, reports in self.grouped_by_base_name().items():
            total = reports[0].energy
            for extra in reports[1:]:
                total = total + extra.energy
            merged[base] = EnergyBreakdown(
                name=base,
                register_file=total.register_file,
                global_buffer=total.global_buffer,
                dram=total.dram,
            )
        return merged

    def grouped_latency(self) -> Dict[str, float]:
        return {
            base: sum(r.latency.total_cycles for r in reports)
            for base, reports in self.grouped_by_base_name().items()
        }

    # -- wire format ---------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form carrying the full per-layer breakdown."""
        return {
            "name": self.name,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "NetworkReport":
        return cls(
            name=payload.get("name", "network"),
            layers=[LayerReport.from_dict(entry)
                    for entry in payload.get("layers", [])],
        )


def evaluate_layers(layers: Sequence[ConvLayerShape], spec: Optional[EyerissSpec] = None,
                    name: str = "network") -> NetworkReport:
    """Run the mapper + energy + latency models on each workload."""
    spec = (spec or EYERISS_PAPER).validate()
    report = NetworkReport(name=name)
    for layer in layers:
        mapping = search_mapping(layer, spec)
        report.layers.append(LayerReport(
            layer=layer,
            mapping=mapping,
            energy=energy_breakdown(mapping, spec),
            latency=latency_estimate(mapping, spec),
        ))
    return report


def evaluate_model(model: Module, input_shape: Tuple[int, int, int], batch: int = 1,
                   spec: Optional[EyerissSpec] = None, name: str = "network",
                   layer_names: Optional[Sequence[str]] = None) -> NetworkReport:
    """Extract conv workloads from a model and evaluate them on the accelerator."""
    shapes = conv_shapes_from_model(model, input_shape, batch=batch, names=layer_names)
    return evaluate_layers(shapes, spec=spec, name=name)


@dataclass
class HardwareComparison:
    """Relative improvement of a compressed network over its vanilla baseline."""

    baseline: NetworkReport
    compressed: NetworkReport

    @property
    def energy_reduction(self) -> float:
        return 1.0 - self.compressed.total_energy / self.baseline.total_energy

    @property
    def latency_reduction(self) -> float:
        return 1.0 - self.compressed.total_latency / self.baseline.total_latency

    def summary(self) -> Dict[str, float]:
        return {
            "baseline_energy": self.baseline.total_energy,
            "compressed_energy": self.compressed.total_energy,
            "energy_reduction": self.energy_reduction,
            "baseline_latency": self.baseline.total_latency,
            "compressed_latency": self.compressed.total_latency,
            "latency_reduction": self.latency_reduction,
        }


def compare_networks(baseline: NetworkReport, compressed: NetworkReport) -> HardwareComparison:
    """Pair a vanilla and a compressed network report for relative metrics."""
    return HardwareComparison(baseline=baseline, compressed=compressed)
