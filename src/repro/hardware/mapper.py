"""Tiling search ("mapper") for the analytical Eyeriss model.

Timeloop explores loop-nest mappings exhaustively; this module performs the
analogous search over a compact, deterministic space: the number of input
channels, output channels and image rows processed per global-buffer tile.
Every candidate is checked against the buffer capacity constraints and the
cheapest feasible mapping (by total energy) is returned, mirroring the
paper's "exhaustive mapper with a victory condition" setup in spirit while
remaining fully reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .dataflow import SpatialMapping, map_row_stationary
from .layer import ConvLayerShape
from .spec import EyerissSpec


@dataclass(frozen=True)
class Tiling:
    """Channels / rows held on-chip (global buffer) per temporal tile."""

    in_channels_per_tile: int
    out_channels_per_tile: int
    output_rows_per_tile: int

    def input_tile_words(self, layer: ConvLayerShape) -> int:
        # Input rows needed to produce the tile's output rows.
        rows = min(
            layer.input_hw[0],
            (self.output_rows_per_tile - 1) * layer.stride + layer.kernel_size,
        )
        return layer.batch * self.in_channels_per_tile * rows * layer.input_hw[1]

    def output_tile_words(self, layer: ConvLayerShape) -> int:
        return (layer.batch * self.out_channels_per_tile
                * self.output_rows_per_tile * layer.output_hw[1])

    def num_tiles(self, layer: ConvLayerShape) -> Tuple[int, int, int]:
        """(input-channel tiles, output-channel tiles, row tiles)."""
        return (
            math.ceil(layer.in_channels / self.in_channels_per_tile),
            math.ceil(layer.out_channels / self.out_channels_per_tile),
            math.ceil(layer.output_hw[0] / self.output_rows_per_tile),
        )


@dataclass
class AccessCounts:
    """Word-granularity access counts per memory level for one layer."""

    register_file: int
    global_buffer: int
    dram: int

    def scaled(self, factor: float) -> "AccessCounts":
        return AccessCounts(
            register_file=int(self.register_file * factor),
            global_buffer=int(self.global_buffer * factor),
            dram=int(self.dram * factor),
        )


@dataclass
class Mapping:
    """A fully evaluated mapping: spatial + temporal tiling + access counts."""

    layer: ConvLayerShape
    spatial: SpatialMapping
    tiling: Tiling
    accesses: AccessCounts
    energy: float

    @property
    def utilization(self) -> float:
        return self.spatial.utilization


def _divisor_candidates(limit: int) -> List[int]:
    """Candidate tile sizes: powers of two plus the full extent."""
    values = {1, limit}
    power = 1
    while power < limit:
        values.add(power)
        power *= 2
    return sorted(v for v in values if v >= 1)


def _count_accesses(layer: ConvLayerShape, tiling: Tiling, spec: EyerissSpec) -> Optional[AccessCounts]:
    """Access counts for one candidate tiling, or ``None`` if it does not fit."""
    input_tile = tiling.input_tile_words(layer)
    output_tile = tiling.output_tile_words(layer)
    # Inputs and outputs share the global buffer (weights bypass it).
    if input_tile + output_tile > spec.global_buffer_words:
        return None
    # The weight working set per PE must fit in the weight RF: one filter row
    # per (ci, co) pair held at a time; kernel_size words per row.
    if layer.kernel_size > spec.rf_weight_words:
        return None

    ci_tiles, co_tiles, row_tiles = tiling.num_tiles(layer)
    macs = layer.macs

    # Register file: each MAC reads a weight, reads an input and updates a
    # partial sum (read + write) from/to the local RFs.
    rf_accesses = 4 * macs

    # Global buffer: every input element of a tile is read once per
    # output-channel tile it contributes to; every output element is written
    # once and read back (ci_tiles - 1) times for partial-sum accumulation.
    gb_input_reads = layer.input_words * co_tiles
    gb_output_traffic = layer.output_words * (2 * ci_tiles - 1)
    gb_accesses = gb_input_reads + gb_output_traffic

    # DRAM: inputs enter the chip once per output-channel tile (they cannot
    # all be resident), outputs leave once; weights bypass the global buffer
    # and are re-streamed from DRAM for every (row tile) pass.
    dram_inputs = layer.input_words * co_tiles
    dram_outputs = layer.output_words
    dram_weights = layer.weight_words * row_tiles
    dram_accesses = dram_inputs + dram_outputs + dram_weights

    return AccessCounts(register_file=int(rf_accesses), global_buffer=int(gb_accesses),
                        dram=int(dram_accesses))


def _energy(accesses: AccessCounts, spec: EyerissSpec) -> float:
    table = spec.energy
    return (accesses.register_file * table.register_file
            + accesses.global_buffer * table.global_buffer
            + accesses.dram * table.dram)


def search_mapping(layer: ConvLayerShape, spec: EyerissSpec,
                   max_candidates: int = 100_000) -> Mapping:
    """Exhaustively search the tiling space and return the lowest-energy mapping.

    Raises ``RuntimeError`` if no feasible mapping exists (which for the
    modelled buffer sizes only happens for degenerate layers).
    """
    spatial = map_row_stationary(layer, spec)
    best: Optional[Mapping] = None
    evaluated = 0
    for ci_tile in _divisor_candidates(layer.in_channels):
        for co_tile in _divisor_candidates(layer.out_channels):
            for row_tile in _divisor_candidates(layer.output_hw[0]):
                evaluated += 1
                if evaluated > max_candidates:
                    break
                tiling = Tiling(ci_tile, co_tile, row_tile)
                accesses = _count_accesses(layer, tiling, spec)
                if accesses is None:
                    continue
                energy = _energy(accesses, spec)
                if best is None or energy < best.energy:
                    best = Mapping(layer=layer, spatial=spatial, tiling=tiling,
                                   accesses=accesses, energy=energy)
    if best is None:
        raise RuntimeError(f"no feasible mapping found for layer '{layer.name}'")
    return best
