"""Energy accounting on top of the mapper's access counts.

Energy is reported in normalized units where one register-file read costs
1.0, matching the normalization used in the paper's Fig. 3 ("energy values
are normalized against the energy cost of a single register file read").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .mapper import Mapping
from .spec import EyerissSpec


@dataclass
class EnergyBreakdown:
    """Per-memory-level energy of one layer, in normalized RF-read units."""

    name: str
    register_file: float
    global_buffer: float
    dram: float

    @property
    def total(self) -> float:
        return self.register_file + self.global_buffer + self.dram

    def as_dict(self) -> Dict[str, float]:
        return {
            "register_file": self.register_file,
            "global_buffer": self.global_buffer,
            "dram": self.dram,
            "total": self.total,
        }

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            name=f"{self.name}+{other.name}",
            register_file=self.register_file + other.register_file,
            global_buffer=self.global_buffer + other.global_buffer,
            dram=self.dram + other.dram,
        )


def energy_breakdown(mapping: Mapping, spec: EyerissSpec) -> EnergyBreakdown:
    """Split a mapping's energy into register-file / buffer / DRAM shares."""
    table = spec.energy
    accesses = mapping.accesses
    return EnergyBreakdown(
        name=mapping.layer.name,
        register_file=accesses.register_file * table.register_file,
        global_buffer=accesses.global_buffer * table.global_buffer,
        dram=accesses.dram * table.dram,
    )
