"""Convolutional layer workloads for the hardware model.

A :class:`ConvLayerShape` captures exactly the geometry the analytical
Eyeriss model needs: channel counts, kernel size, stride and the spatial
extent of inputs/outputs, plus a batch size.  Helpers extract these shapes
from ``repro`` models so that vanilla and ALF-compressed networks can be
fed to the same hardware evaluation (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.alf_block import ALFConv2d
from ..core.deploy import CompressedConv2d
from ..metrics.ops import profile_model
from ..nn.layers import Conv2d
from ..nn.module import Module


@dataclass(frozen=True)
class ConvLayerShape:
    """Geometry of one convolutional workload."""

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    input_hw: Tuple[int, int]
    stride: int = 1
    padding: int = 0
    batch: int = 1

    @property
    def output_hw(self) -> Tuple[int, int]:
        h = (self.input_hw[0] + 2 * self.padding - self.kernel_size) // self.stride + 1
        w = (self.input_hw[1] + 2 * self.padding - self.kernel_size) // self.stride + 1
        return (h, w)

    @property
    def macs(self) -> int:
        """Multiply-accumulates for the whole batch."""
        oh, ow = self.output_hw
        return (self.batch * self.in_channels * self.out_channels
                * self.kernel_size ** 2 * oh * ow)

    @property
    def weight_words(self) -> int:
        return self.in_channels * self.out_channels * self.kernel_size ** 2

    @property
    def input_words(self) -> int:
        return self.batch * self.in_channels * self.input_hw[0] * self.input_hw[1]

    @property
    def output_words(self) -> int:
        oh, ow = self.output_hw
        return self.batch * self.out_channels * oh * ow

    def with_batch(self, batch: int) -> "ConvLayerShape":
        return replace(self, batch=batch)

    def validate(self) -> "ConvLayerShape":
        if min(self.in_channels, self.out_channels, self.kernel_size, self.stride) <= 0:
            raise ValueError("layer dimensions must be positive")
        if self.output_hw[0] <= 0 or self.output_hw[1] <= 0:
            raise ValueError(f"layer '{self.name}' has a non-positive output size")
        return self


def conv_shapes_from_model(model: Module, input_shape: Tuple[int, int, int],
                           batch: int = 1, names: Optional[Sequence[str]] = None,
                           profile=None) -> List[ConvLayerShape]:
    """Extract per-convolution workloads from a model via shape profiling.

    Standard convolutions map to one :class:`ConvLayerShape`.  ALF blocks
    and their deployed :class:`CompressedConv2d` form map to **two** shapes
    (the reduced code convolution and the 1x1 expansion layer), which is how
    the paper accounts for the expansion overhead in Fig. 3.

    ``names`` optionally overrides the generated layer names (matched by
    order of the underlying convolution modules, expansion layers get an
    ``_exp`` suffix).  ``profile`` accepts a precomputed
    :class:`repro.metrics.ModelProfile` of the same model/geometry so
    callers that already profiled for cost accounting skip the second
    forward pass.
    """
    if profile is None:
        profile = profile_model(model, input_shape, batch_size=1)
    module_by_name = dict(model.named_modules())
    shapes: List[ConvLayerShape] = []
    conv_index = 0
    for layer in profile.layers:
        module = module_by_name.get(layer.name)
        if isinstance(module, Conv2d):
            label = (names[conv_index] if names and conv_index < len(names)
                     else layer.name)
            shapes.append(ConvLayerShape(
                name=label,
                in_channels=module.in_channels,
                out_channels=module.out_channels,
                kernel_size=module.kernel_size[0],
                input_hw=tuple(layer.input_shape[1:]),
                stride=module.stride[0],
                padding=module.padding[0],
                batch=batch,
            ).validate())
            conv_index += 1
        elif isinstance(module, (ALFConv2d, CompressedConv2d)):
            label = (names[conv_index] if names and conv_index < len(names)
                     else layer.name)
            if isinstance(module, ALFConv2d):
                code_channels = max(1, module.active_filters())
                kernel = module.kernel_size
                stride = module.stride
                padding = module.padding
                out_channels = module.out_channels
                in_channels = module.in_channels
            else:
                code_channels = module.code_channels
                kernel = module.kernel_size
                stride = module.stride
                padding = module.padding
                out_channels = module.out_channels
                in_channels = module.in_channels
            input_hw = tuple(layer.input_shape[1:])
            code_shape = ConvLayerShape(
                name=label,
                in_channels=in_channels,
                out_channels=code_channels,
                kernel_size=kernel,
                input_hw=input_hw,
                stride=stride,
                padding=padding,
                batch=batch,
            ).validate()
            expansion_shape = ConvLayerShape(
                name=f"{label}_exp",
                in_channels=code_channels,
                out_channels=out_channels,
                kernel_size=1,
                input_hw=code_shape.output_hw,
                stride=1,
                padding=0,
                batch=batch,
            ).validate()
            shapes.extend([code_shape, expansion_shape])
            conv_index += 1
    return shapes
