"""``repro.hardware`` — analytical Eyeriss / Timeloop-style accelerator model.

The model reproduces the hardware study of Sec. IV-B: a 16x16 PE array with
per-PE register files, a 128 KB global buffer and DRAM, scheduled under the
row-stationary dataflow.  A deterministic tiling search ("mapper") selects
the cheapest feasible mapping per layer; energy is reported per memory
level in normalized RF-read units and latency in cycles.
"""

from .dataflow import SpatialMapping, map_row_stationary
from .energy import EnergyBreakdown, energy_breakdown
from .latency import LatencyEstimate, latency_estimate
from .layer import ConvLayerShape, conv_shapes_from_model
from .mapper import AccessCounts, Mapping, Tiling, search_mapping
from .report import (
    HardwareComparison,
    LayerReport,
    NetworkReport,
    compare_networks,
    evaluate_layers,
    evaluate_model,
)
from .spec import EYERISS_PAPER, EnergyTable, EyerissSpec

__all__ = [
    "EyerissSpec", "EnergyTable", "EYERISS_PAPER",
    "ConvLayerShape", "conv_shapes_from_model",
    "SpatialMapping", "map_row_stationary",
    "Tiling", "AccessCounts", "Mapping", "search_mapping",
    "EnergyBreakdown", "energy_breakdown",
    "LatencyEstimate", "latency_estimate",
    "LayerReport", "NetworkReport", "evaluate_layers", "evaluate_model",
    "HardwareComparison", "compare_networks",
]
