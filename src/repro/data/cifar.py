"""Synthetic CIFAR-10 stand-in.

The real CIFAR-10 (50k train / 10k test, 32x32x3, 10 classes) cannot be
downloaded in this offline environment, so :func:`synthetic_cifar10`
produces a class-structured synthetic dataset with exactly the same tensor
geometry and label cardinality.  The OPs / parameter numbers of Table II
depend only on this geometry and therefore match the paper exactly; the
accuracy column is reproduced in *shape* (relative ordering and drops).
"""

from __future__ import annotations

from typing import Tuple

from .synthetic import SyntheticImageDataset, make_synthetic_dataset

CIFAR10_IMAGE_SHAPE: Tuple[int, int, int] = (3, 32, 32)
CIFAR10_NUM_CLASSES = 10
CIFAR10_TRAIN_SIZE = 50_000
CIFAR10_TEST_SIZE = 10_000


def synthetic_cifar10(train_size: int = 2_000, test_size: int = 500,
                      image_shape: Tuple[int, int, int] = CIFAR10_IMAGE_SHAPE,
                      num_classes: int = CIFAR10_NUM_CLASSES,
                      seed: int = 0) -> Tuple[SyntheticImageDataset, SyntheticImageDataset]:
    """Return ``(train, test)`` synthetic CIFAR-10-like datasets.

    The default sizes are intentionally smaller than the real dataset so
    that pure-numpy training remains tractable; pass
    ``train_size=CIFAR10_TRAIN_SIZE`` to generate the full-size equivalent.
    Train and test share the same class prototypes (same generator seed) but
    contain disjoint samples.
    """
    total = make_synthetic_dataset(
        num_samples=train_size + test_size, num_classes=num_classes,
        image_shape=image_shape, seed=seed, name="synthetic-cifar10",
    )
    train = SyntheticImageDataset(
        images=total.images[:train_size], labels=total.labels[:train_size],
        num_classes=num_classes, name="synthetic-cifar10-train",
    )
    test = SyntheticImageDataset(
        images=total.images[train_size:], labels=total.labels[train_size:],
        num_classes=num_classes, name="synthetic-cifar10-test",
    )
    return train, test
