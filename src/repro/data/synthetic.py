"""Synthetic, class-structured image datasets.

The evaluation environment has no network access, so CIFAR-10 and ImageNet
cannot be downloaded.  This module provides a deterministic generator that
produces *learnable* classification problems with the same tensor geometry:
each class is defined by a set of smooth spatial prototype patterns; an
image is a randomly-weighted mixture of its class prototypes plus additive
noise and a random global shift.  A small CNN reaches high accuracy on this
task while a randomly-guessing model does not, so relative accuracy drops
caused by compression remain meaningful (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class SyntheticImageDataset:
    """In-memory dataset of class-conditional synthetic images.

    Attributes
    ----------
    images:
        Array of shape ``(N, C, H, W)`` with values roughly in ``[-1, 1]``.
    labels:
        Integer class indices of shape ``(N,)``.
    num_classes:
        Number of distinct classes.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "synthetic"

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    def subset(self, count: int) -> "SyntheticImageDataset":
        """First ``count`` samples (deterministic, keeps class balance roughly)."""
        count = min(count, len(self))
        return SyntheticImageDataset(
            images=self.images[:count], labels=self.labels[:count],
            num_classes=self.num_classes, name=f"{self.name}[:{count}]",
        )

    def split(self, fraction: float) -> Tuple["SyntheticImageDataset", "SyntheticImageDataset"]:
        """Split into (first, second) parts with ``fraction`` going to the first."""
        cut = int(len(self) * fraction)
        first = SyntheticImageDataset(self.images[:cut], self.labels[:cut],
                                      self.num_classes, name=f"{self.name}-a")
        second = SyntheticImageDataset(self.images[cut:], self.labels[cut:],
                                       self.num_classes, name=f"{self.name}-b")
        return first, second


def _smooth_prototype(rng: np.random.Generator, channels: int, height: int,
                      width: int, smoothness: int = 4) -> np.ndarray:
    """A smooth random pattern created by upsampling low-resolution noise."""
    low_h = max(2, height // smoothness)
    low_w = max(2, width // smoothness)
    base = rng.standard_normal((channels, low_h, low_w))
    # Bilinear-ish upsampling via repeated nearest + box blur keeps this
    # dependency-free and deterministic.
    up = np.repeat(np.repeat(base, height // low_h + 1, axis=1), width // low_w + 1, axis=2)
    up = up[:, :height, :width]
    from scipy.ndimage import uniform_filter
    blurred = uniform_filter(up, size=(1, 3, 3), mode="nearest")
    scale = np.max(np.abs(blurred)) or 1.0
    return blurred / scale


def make_synthetic_dataset(num_samples: int, num_classes: int = 10,
                           image_shape: Tuple[int, int, int] = (3, 32, 32),
                           prototypes_per_class: int = 3, noise_std: float = 0.25,
                           max_shift: int = 2, seed: int = 0,
                           name: str = "synthetic") -> SyntheticImageDataset:
    """Generate a deterministic, learnable synthetic image classification set.

    Parameters
    ----------
    num_samples:
        Number of images to generate (classes are balanced round-robin).
    num_classes:
        Number of classes.
    image_shape:
        ``(C, H, W)`` of each image.
    prototypes_per_class:
        How many prototype patterns define each class; each image mixes them
        with random positive weights.
    noise_std:
        Standard deviation of the additive Gaussian noise.
    max_shift:
        Maximum absolute circular shift (pixels) applied per image.
    seed:
        RNG seed; the same seed always produces the same dataset.
    """
    channels, height, width = image_shape
    rng = np.random.default_rng(seed)
    prototypes = np.stack([
        np.stack([
            _smooth_prototype(rng, channels, height, width)
            for _ in range(prototypes_per_class)
        ])
        for _ in range(num_classes)
    ])  # (classes, prototypes, C, H, W)

    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    images = np.empty((num_samples, channels, height, width))
    for index, label in enumerate(labels):
        weights = rng.uniform(0.5, 1.5, size=prototypes_per_class)
        weights /= weights.sum()
        image = np.tensordot(weights, prototypes[label], axes=(0, 0))
        if max_shift > 0:
            shift_h = int(rng.integers(-max_shift, max_shift + 1))
            shift_w = int(rng.integers(-max_shift, max_shift + 1))
            image = np.roll(image, (shift_h, shift_w), axis=(1, 2))
        image = image + rng.normal(0.0, noise_std, size=image.shape)
        images[index] = image

    return SyntheticImageDataset(
        images=images.astype(np.float64), labels=labels.astype(np.int64),
        num_classes=num_classes, name=name,
    )
