"""Lightweight data augmentation matching the standard CIFAR recipe.

The CIFAR baselines in the paper use random horizontal flips and padded
random crops; both are provided here as pure numpy transforms that plug
into :class:`repro.data.DataLoader`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def random_horizontal_flip(images: np.ndarray, rng: np.random.Generator,
                           probability: float = 0.5) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    flipped = images.copy()
    flips = rng.random(images.shape[0]) < probability
    flipped[flips] = flipped[flips, :, :, ::-1]
    return flipped


def random_crop(images: np.ndarray, rng: np.random.Generator, padding: int = 2) -> np.ndarray:
    """Pad spatially then crop back to the original size at a random offset."""
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.empty_like(images)
    offsets_h = rng.integers(0, 2 * padding + 1, size=n)
    offsets_w = rng.integers(0, 2 * padding + 1, size=n)
    for index in range(n):
        oh, ow = offsets_h[index], offsets_w[index]
        out[index] = padded[index, :, oh:oh + h, ow:ow + w]
    return out


def gaussian_noise(images: np.ndarray, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Additive Gaussian noise."""
    return images + rng.normal(0.0, std, size=images.shape)


def compose(*transforms: Callable) -> Callable:
    """Chain several augmentation functions into one loader-compatible callable."""
    def apply(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in transforms:
            images = transform(images, rng)
        return images
    return apply


def standard_cifar_augmentation(padding: int = 2) -> Callable:
    """Random crop + horizontal flip, the recipe used by the CIFAR baselines."""
    return compose(
        lambda images, rng: random_crop(images, rng, padding=padding),
        random_horizontal_flip,
    )
