"""Synthetic ImageNet stand-in.

ImageNet (1.28M training images, 1000 classes, 224x224 crops) is far beyond
what pure-numpy training can digest and is unavailable offline, so the
experiments that need ImageNet *accuracy* use a reduced synthetic
equivalent (fewer classes / smaller resolution by default) while the
experiments that need ImageNet *geometry* (the Params / OPs columns of
Table III) compute those analytically at the true 224x224 resolution via
``repro.metrics``.
"""

from __future__ import annotations

from typing import Tuple

from .synthetic import SyntheticImageDataset, make_synthetic_dataset

IMAGENET_IMAGE_SHAPE: Tuple[int, int, int] = (3, 224, 224)
IMAGENET_NUM_CLASSES = 1000
IMAGENET_TRAIN_SIZE = 1_281_167
IMAGENET_VAL_SIZE = 50_000


def synthetic_imagenet(train_size: int = 1_000, val_size: int = 200,
                       image_shape: Tuple[int, int, int] = (3, 64, 64),
                       num_classes: int = 20,
                       seed: int = 1) -> Tuple[SyntheticImageDataset, SyntheticImageDataset]:
    """Return ``(train, val)`` reduced synthetic ImageNet-like datasets.

    Defaults are deliberately small (20 classes at 64x64) so integration
    tests finish quickly; pass ``image_shape=IMAGENET_IMAGE_SHAPE`` and
    ``num_classes=IMAGENET_NUM_CLASSES`` for a full-geometry dataset.
    """
    total = make_synthetic_dataset(
        num_samples=train_size + val_size, num_classes=num_classes,
        image_shape=image_shape, seed=seed, name="synthetic-imagenet",
    )
    train = SyntheticImageDataset(
        images=total.images[:train_size], labels=total.labels[:train_size],
        num_classes=num_classes, name="synthetic-imagenet-train",
    )
    val = SyntheticImageDataset(
        images=total.images[train_size:], labels=total.labels[train_size:],
        num_classes=num_classes, name="synthetic-imagenet-val",
    )
    return train, val
