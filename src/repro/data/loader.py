"""Minibatch loading with optional shuffling and augmentation."""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from ..nn.backend import get_default_dtype
from .synthetic import SyntheticImageDataset


class DataLoader:
    """Iterate a :class:`SyntheticImageDataset` in minibatches.

    Each iteration over the loader yields ``(images, labels)`` numpy pairs.
    Shuffling is re-drawn on every epoch from the loader's own RNG so runs
    are reproducible given the seed.

    Batches are emitted in the execution engine's dtype — ``dtype`` if
    given, else the active backend's default at iteration time — so a
    float32 run never pays for a float64→float32 cast (or double-width
    batches) inside the training loop.
    """

    def __init__(self, dataset: SyntheticImageDataset, batch_size: int = 32,
                 shuffle: bool = False, drop_last: bool = False,
                 augment: Optional[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
                 seed: int = 0, dtype=None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.augment = augment
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self._rng = np.random.default_rng(seed)

    def _cast(self, images: np.ndarray) -> np.ndarray:
        dtype = self.dtype if self.dtype is not None else get_default_dtype()
        return images.astype(dtype, copy=False)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            images = self.dataset.images[batch]
            labels = self.dataset.labels[batch]
            if self.augment is not None:
                images = self.augment(images, self._rng)
            yield self._cast(images), labels

    def full_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """The entire dataset as a single batch (useful for evaluation)."""
        return self._cast(self.dataset.images), self.dataset.labels
