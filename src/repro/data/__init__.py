"""``repro.data`` — synthetic datasets and loading utilities."""

from .augment import (
    compose,
    gaussian_noise,
    random_crop,
    random_horizontal_flip,
    standard_cifar_augmentation,
)
from .cifar import (
    CIFAR10_IMAGE_SHAPE,
    CIFAR10_NUM_CLASSES,
    CIFAR10_TEST_SIZE,
    CIFAR10_TRAIN_SIZE,
    synthetic_cifar10,
)
from .imagenet import (
    IMAGENET_IMAGE_SHAPE,
    IMAGENET_NUM_CLASSES,
    IMAGENET_TRAIN_SIZE,
    IMAGENET_VAL_SIZE,
    synthetic_imagenet,
)
from .loader import DataLoader
from .synthetic import SyntheticImageDataset, make_synthetic_dataset

__all__ = [
    "SyntheticImageDataset", "make_synthetic_dataset", "DataLoader",
    "synthetic_cifar10", "synthetic_imagenet",
    "CIFAR10_IMAGE_SHAPE", "CIFAR10_NUM_CLASSES", "CIFAR10_TRAIN_SIZE", "CIFAR10_TEST_SIZE",
    "IMAGENET_IMAGE_SHAPE", "IMAGENET_NUM_CLASSES", "IMAGENET_TRAIN_SIZE", "IMAGENET_VAL_SIZE",
    "random_horizontal_flip", "random_crop", "gaussian_noise", "compose",
    "standard_cifar_augmentation",
]
