"""Shim for legacy editable installs (``python setup.py develop``).

All package metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working on minimal environments whose
setuptools predates self-contained PEP 660 editable wheels (i.e. lacks the
``wheel`` package).
"""

from setuptools import setup

setup()
