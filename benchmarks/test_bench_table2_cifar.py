"""Benchmark E5 — Table II: pruned CNNs on CIFAR-10 (conv layers only).

Cost columns (Params / OPs) are exact at 32x32; the accuracy column comes
from proxy-scale training on the synthetic CIFAR stand-in (see DESIGN.md).
"""

import pytest

from repro.experiments import cifar_comparison
from repro.experiments.paper_values import HEADLINE_CLAIMS
from repro.metrics import pareto_front


def test_bench_table2_costs(benchmark, once):
    """Cost columns only (fast, fully analytical)."""
    result = once(benchmark, cifar_comparison.run, measure_accuracy=False)
    print()
    print(result.render())
    reductions = cifar_comparison.headline_reductions(result)
    print(f"ALF vs ResNet-20:  params -{reductions['params_reduction'] * 100:.0f}% "
          f"(paper -{HEADLINE_CLAIMS['params_reduction'] * 100:.0f}%), "
          f"ops -{reductions['ops_reduction'] * 100:.0f}% "
          f"(paper -{HEADLINE_CLAIMS['ops_reduction'] * 100:.0f}%)")
    assert reductions["params_reduction"] == pytest.approx(0.70, abs=0.08)
    assert reductions["ops_reduction"] == pytest.approx(0.61, abs=0.10)


def test_bench_table2_with_accuracy(benchmark, once):
    """Full table including proxy-training accuracies (ci scale)."""
    result = once(benchmark, cifar_comparison.run, scale="ci", measure_accuracy=True)
    print()
    print(result.render())
    # ALF stays on the pareto front of (params, ops, accuracy).
    front = {r.method for r in pareto_front(result.method_results())}
    print(f"Pareto front: {sorted(front)}")
    assert "ALF" in front
