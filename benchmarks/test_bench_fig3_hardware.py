"""Benchmark E6 — Fig. 3: per-layer energy breakdown and latency on the Eyeriss model."""

import pytest

from repro.experiments import hardware_breakdown
from repro.experiments.paper_values import HEADLINE_CLAIMS


def test_bench_fig3_plain20(benchmark, once):
    result = once(benchmark, hardware_breakdown.run, architecture="plain20", batch=16)
    print()
    print(result.render())
    summary = hardware_breakdown.summary_vs_paper(result)
    print(f"energy reduction: {summary['measured_energy_reduction'] * 100:.1f}% "
          f"(paper {HEADLINE_CLAIMS['energy_reduction'] * 100:.0f}%), "
          f"latency reduction: {summary['measured_latency_reduction'] * 100:.1f}% "
          f"(paper {HEADLINE_CLAIMS['latency_reduction'] * 100:.0f}%)")
    print(f"layers where ALF is slower than vanilla (anomalies): {result.anomalous_layers()}")
    assert summary["measured_energy_reduction"] == pytest.approx(
        HEADLINE_CLAIMS["energy_reduction"], abs=0.10)
    assert summary["measured_latency_reduction"] == pytest.approx(
        HEADLINE_CLAIMS["latency_reduction"], abs=0.10)


def test_bench_fig3_resnet20(benchmark, once):
    result = once(benchmark, hardware_breakdown.run, architecture="resnet20", batch=16)
    print()
    summary = hardware_breakdown.summary_vs_paper(result)
    print(f"ResNet-20: energy reduction {summary['measured_energy_reduction'] * 100:.1f}%, "
          f"latency reduction {summary['measured_latency_reduction'] * 100:.1f}%")
    assert result.energy_reduction > 0.15
    assert result.latency_reduction > 0.25
