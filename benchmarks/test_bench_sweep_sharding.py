"""Benchmark — sharded ``run_sweep()``: serial vs. parallel wall-clock.

Measures what the sweep executor layer is for: overlapping per-spec work
that does not saturate the interpreter.  The workload is a registered
benchmark-only method whose ``fit`` stalls for a fixed interval before a
real magnitude-pruning pass — the profile of production sweeps whose specs
block on data loading / IO — so the measured speedup reflects the
executor's ability to overlap shards (and its scheduling + pickling
overhead) independent of how many cores the CI host happens to expose
(this container exposes a single core, where purely CPU-bound shards
cannot speed up no matter the executor).

Recorded into ``BENCH_engine.json``:

* ``serial_seconds`` / ``thread_seconds_4workers`` /
  ``process_seconds_4workers`` — wall-clock of the identical sweep under
  each strategy;
* ``speedup_4workers`` — serial / process, asserted ≥ 1.5x;
* ``merge_overhead_seconds`` — the parent-side cost of transporting and
  merging all shard reports (pickle round-trip + dense-baseline rebind);
* ``host_cpus`` — for interpreting the numbers across machines.
"""

from __future__ import annotations

import copy
import os
import pickle
import time
from dataclasses import dataclass

import numpy as np

import repro.api as api
from repro.api.adapters import MagnitudeMethod
from repro.api.spec import MagnitudeSpec
from repro.models import lenet

from conftest import record_metric, run_once

NUM_SPECS = 8
STALL_SECONDS = 0.3
WORKERS = 4
INPUT_SHAPE = (1, 12, 12)


@dataclass
class StallConfig(MagnitudeSpec):
    """Magnitude pruning with a fixed fit-time stall (benchmark only)."""

    stall_seconds: float = STALL_SECONDS


def _register_stall_method() -> str:
    @api.register_method("bench-stall", StallConfig, policy="—",
                         summary="magnitude pruning behind a data-stall "
                                 "(benchmark only)")
    class StallMethod(MagnitudeMethod):
        def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
            time.sleep(self.config.stall_seconds)
            return super().fit(train_loader, val_loader, epochs)

    return "bench-stall"


def _table(sweep: api.SweepResult):
    return [(r.spec.display_label, r.cost["params"], r.cost["ops"])
            for r in sweep.reports]


def _timed_sweep(model, specs, executor: str, max_workers=None):
    start = time.perf_counter()
    sweep = api.run_sweep(specs, model=model, hardware=None,
                          input_shape=INPUT_SHAPE, executor=executor,
                          max_workers=max_workers)
    return sweep, time.perf_counter() - start


def _merge_overhead(sweep: api.SweepResult) -> float:
    """Parent-side transport + merge cost for all shard reports."""
    start = time.perf_counter()
    payload = [pickle.loads(pickle.dumps(report)) for report in sweep.reports]
    for report in payload:
        report.dense = sweep.dense
        report.dense_hardware = sweep.dense.hardware
    return time.perf_counter() - start


def test_bench_sweep_sharding(benchmark):
    method = _register_stall_method()
    try:
        model = lenet(num_classes=4, in_channels=1, width=8,
                      rng=np.random.default_rng(0))
        specs = [api.CompressionSpec(method=method, config=StallConfig(),
                                     label=f"stall-{index}")
                 for index in range(NUM_SPECS)]

        serial, serial_seconds = _timed_sweep(model, specs, "serial")
        thread, thread_seconds = _timed_sweep(model, specs, "thread", WORKERS)

        # The process run carries the pedantic benchmark timing so the
        # JSON wall_clock_seconds entry is the sharded sweep itself.
        process = run_once(
            benchmark,
            lambda: api.run_sweep(specs, model=copy.deepcopy(model),
                                  hardware=None, input_shape=INPUT_SHAPE,
                                  executor="process", max_workers=WORKERS))
        _, process_seconds = _timed_sweep(model, specs, "process", WORKERS)

        speedup = serial_seconds / process_seconds
        merge_overhead = _merge_overhead(serial)

        record_metric("host_cpus", os.cpu_count())
        record_metric("num_specs", NUM_SPECS)
        record_metric("stall_seconds_per_spec", STALL_SECONDS)
        record_metric("serial_seconds", round(serial_seconds, 4))
        record_metric("thread_seconds_4workers", round(thread_seconds, 4))
        record_metric("process_seconds_4workers", round(process_seconds, 4))
        record_metric("speedup_4workers", round(speedup, 3))
        record_metric("merge_overhead_seconds", round(merge_overhead, 4))

        print(f"\nsweep sharding ({NUM_SPECS} specs, "
              f"{STALL_SECONDS}s stall each, {WORKERS} workers):")
        print(f"  serial : {serial_seconds:.3f}s")
        print(f"  thread : {thread_seconds:.3f}s")
        print(f"  process: {process_seconds:.3f}s  "
              f"({speedup:.2f}x vs serial)")
        print(f"  merge overhead: {merge_overhead * 1e3:.1f}ms")

        # The parallel strategies must reproduce the serial tables exactly.
        assert _table(serial) == _table(thread) == _table(process)
        assert speedup >= 1.5, (
            f"process executor with {WORKERS} workers only reached "
            f"{speedup:.2f}x over serial")
    finally:
        api.unregister_method(method)
