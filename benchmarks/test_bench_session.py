"""Benchmark — ``SweepSession``: submission overhead and streaming payoff.

The session layer exists so sweeps can be *submitted and observed* instead
of awaited; this benchmark measures what that costs and what it buys:

* ``submit_seconds_per_spec`` — pure scheduler overhead: wall-clock of
  ``submit_all`` returning on a thread executor (shards run
  asynchronously, so the submit loop's own cost is what is measured),
  after the dense baseline already materialized;
* ``serial_seconds`` / ``session_thread_seconds_4workers`` — the identical
  stall-profile sweep (the same workload as the sharding benchmark:
  specs blocked on IO-like stalls, reflecting production sweeps) through
  the batch façade and through a streamed session;
* ``streaming_speedup_4workers`` — serial / session-thread, asserted
  ≥ 1.5x (the session must not give back the executor layer's win);
* ``first_result_seconds`` — time until ``as_completed`` yields the first
  report: the latency a consumer of streamed results actually observes,
  compared to waiting for the whole serial batch.

All metrics land in ``BENCH_engine.json`` for trend tracking.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

import repro.api as api
from repro.api.adapters import MagnitudeMethod
from repro.api.spec import MagnitudeSpec
from repro.models import lenet

from conftest import record_metric, run_once

NUM_SPECS = 8
STALL_SECONDS = 0.3
WORKERS = 4
INPUT_SHAPE = (1, 12, 12)


@dataclass
class SessionStallConfig(MagnitudeSpec):
    """Magnitude pruning with a fixed fit-time stall (benchmark only)."""

    stall_seconds: float = STALL_SECONDS


def _register_stall_method() -> str:
    @api.register_method("bench-session-stall", SessionStallConfig, policy="—",
                         summary="magnitude pruning behind a data-stall "
                                 "(session benchmark only)")
    class StallMethod(MagnitudeMethod):
        def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
            time.sleep(self.config.stall_seconds)
            return super().fit(train_loader, val_loader, epochs)

    return "bench-session-stall"


def _table(sweep: api.SweepResult):
    return [(r.spec.display_label, r.cost["params"], r.cost["ops"])
            for r in sweep.reports]


def _stall_specs(method: str):
    return [api.CompressionSpec(method=method, config=SessionStallConfig(),
                                label=f"stall-{index}")
            for index in range(NUM_SPECS)]


def _session_sweep(model, specs):
    """One streamed session run: total wall plus time-to-first-result."""
    with api.SweepSession(model=model, hardware=None,
                          input_shape=INPUT_SHAPE, executor="thread",
                          max_workers=WORKERS) as session:
        start = time.perf_counter()
        futures = session.submit_all(specs)
        first_result = None
        for future in session.as_completed(futures):
            if first_result is None:
                first_result = time.perf_counter() - start
        sweep = session.result()
        total = time.perf_counter() - start
    return sweep, total, first_result


def _submission_overhead(model, specs) -> float:
    """Per-spec cost of the submit machinery itself (thread executor)."""
    with api.SweepSession(model=model, hardware=None,
                          input_shape=INPUT_SHAPE, executor="thread",
                          max_workers=WORKERS) as session:
        # The first submit materializes the dense baseline; the measured
        # batch then exercises only the scheduler (shards run async).
        session.submit(specs[0])
        start = time.perf_counter()
        session.submit_all(specs[1:])
        submit_seconds = time.perf_counter() - start
        session.result()
    return submit_seconds / max(1, len(specs) - 1)


def test_bench_session_streaming(benchmark):
    method = _register_stall_method()
    try:
        model = lenet(num_classes=4, in_channels=1, width=8,
                      rng=np.random.default_rng(0))
        specs = _stall_specs(method)

        start = time.perf_counter()
        serial = api.run_sweep(specs, model=model, hardware=None,
                               input_shape=INPUT_SHAPE, executor="serial")
        serial_seconds = time.perf_counter() - start

        # The streamed session carries the pedantic benchmark timing so the
        # JSON wall_clock_seconds entry is the session run itself.
        run_once(benchmark, lambda: _session_sweep(model, specs))
        session_sweep, session_seconds, first_result = _session_sweep(
            model, specs)

        submit_per_spec = _submission_overhead(model, specs)
        speedup = serial_seconds / session_seconds

        record_metric("host_cpus", os.cpu_count())
        record_metric("num_specs", NUM_SPECS)
        record_metric("stall_seconds_per_spec", STALL_SECONDS)
        record_metric("serial_seconds", round(serial_seconds, 4))
        record_metric("session_thread_seconds_4workers",
                      round(session_seconds, 4))
        record_metric("streaming_speedup_4workers", round(speedup, 3))
        record_metric("first_result_seconds", round(first_result, 4))
        record_metric("submit_seconds_per_spec", round(submit_per_spec, 6))

        print(f"\nsweep session ({NUM_SPECS} specs, {STALL_SECONDS}s stall "
              f"each, {WORKERS} workers):")
        print(f"  serial batch    : {serial_seconds:.3f}s")
        print(f"  session (thread): {session_seconds:.3f}s  "
              f"({speedup:.2f}x vs serial)")
        print(f"  first streamed result after {first_result:.3f}s "
              f"(vs {serial_seconds:.3f}s for the whole serial batch)")
        print(f"  submission overhead: {submit_per_spec * 1e3:.2f}ms/spec")

        # Streaming must not perturb the result, give back the executor
        # layer's win, or delay the first report past the serial batch.
        assert _table(session_sweep) == _table(serial)
        assert speedup >= 1.5, (
            f"session over thread executor with {WORKERS} workers only "
            f"reached {speedup:.2f}x over serial")
        assert first_result < serial_seconds
    finally:
        api.unregister_method(method)
