"""Benchmark E7 — Table III: ImageNet comparison (costs at true 224x224 geometry)."""

import pytest

from repro.experiments import imagenet_comparison
from repro.metrics import pareto_front


def test_bench_table3_imagenet(benchmark, once):
    result = once(benchmark, imagenet_comparison.run, seed=0)
    print()
    print(result.render())
    factors = imagenet_comparison.relative_ops_factors(result)
    print("ALF OPs advantage: x%.1f vs SqueezeNet (paper x1.4), "
          "x%.1f vs GoogLeNet (paper x2.4), x%.1f vs ResNet-18 (paper x3.0)" % (
              factors["vs_squeezenet"], factors["vs_googlenet"], factors["vs_resnet18"]))

    resnet = result.by_method("ResNet-18")
    assert resnet.params / 1e6 == pytest.approx(11.83, rel=0.05)
    assert resnet.ops / 1e6 == pytest.approx(3743, rel=0.05)
    assert factors["vs_resnet18"] == pytest.approx(3.0, abs=0.7)
    front = {r.method for r in pareto_front(result.method_results())}
    print(f"Pareto front: {sorted(front)}")
    assert "ALF" in front
