"""Benchmark E8 — ablation: the Ccode,max efficiency bound of Eq. 2."""

from repro.experiments import ablations


def test_bench_ablation_ccode_max(benchmark, once):
    points = once(benchmark, ablations.sweep_ccode_max)
    print()
    print(ablations.render_ccode_max(points))
    # The bound always guarantees the ALF block is no more expensive than the
    # convolution it replaces.
    for point in points:
        ratio = ablations.alf_block_cost_ratio(
            point.in_channels, point.out_channels, point.kernel_size, point.bound)
        assert ratio <= 1.0 + 1e-9
    # For 3x3 convolutions the bound sits near 0.9 * Co (Eq. 2 with Ci = Co).
    three_by_three = [p for p in points if p.kernel_size == 3]
    assert all(0.8 <= p.bound_fraction <= 0.95 for p in three_by_three)
