"""Microbenchmark: layer-scoped op profiling of a ResNet-20 inference.

Records the per-op wall-clock split of one no-grad CIFAR-batch forward into
``BENCH_engine.json`` — ``op_<name>_seconds`` / ``op_<name>_calls`` for the
top ops plus the hottest layer — so the trend tracker sees *op-level*
regressions, not just the end-to-end wall-clock the other benchmarks
report.  Also measures the hook-machinery overhead itself: the same
forward with profiling off must stay within noise of an unprofiled run
(the no-hook fast path is a single truthiness check).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.models import build_model
from repro.nn.profiler import collect_profile
from repro.nn.tensor import Tensor, installed_op_hooks, no_grad

BATCH = 16
INPUT_SHAPE = (3, 32, 32)
ROUNDS = 3
TOP_K = 5


def _median_seconds(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def _profiler_benchmark():
    rng = np.random.default_rng(0)
    model = build_model("resnet20", rng=rng)
    model.eval()
    x = Tensor(rng.standard_normal((BATCH,) + INPUT_SHAPE))

    # Reference: the unprofiled forward (hook fast path).
    with no_grad():
        plain_seconds = _median_seconds(lambda: model(x))
    assert not installed_op_hooks()

    # Profiled forward: same execution, observed per op and per layer.
    def profiled_forward():
        with collect_profile() as profile, no_grad():
            model(x)
        return profile

    profiled_seconds = _median_seconds(profiled_forward)
    profile = profiled_forward()

    return {
        "plain_forward_seconds": plain_seconds,
        "profiled_forward_seconds": profiled_seconds,
        "hook_overhead_ratio": profiled_seconds / plain_seconds,
        "profile": profile,
    }


@pytest.mark.benchmark(group="engine")
def test_bench_profiler(benchmark, once, metric):
    result = once(benchmark, _profiler_benchmark)
    profile = result["profile"]

    print("\nResNet-20 profiled forward, batch %d %s" % (BATCH, (INPUT_SHAPE,)))
    print(f"  plain forward     : {result['plain_forward_seconds'] * 1e3:9.1f} ms")
    print(f"  profiled forward  : {result['profiled_forward_seconds'] * 1e3:9.1f} ms "
          f"({result['hook_overhead_ratio']:.2f}x)")
    print(profile.render_top(TOP_K, title="  top ops / layers"))

    for key in ("plain_forward_seconds", "profiled_forward_seconds",
                "hook_overhead_ratio"):
        metric(key, result[key])
    for op, stat in profile.top_ops(TOP_K):
        metric(f"op_{op}_seconds", stat.seconds)
        metric(f"op_{op}_calls", stat.calls)
    top_layer, top_layer_seconds = profile.top_layers(1)[0]
    metric("top_layer", top_layer)
    metric("top_layer_seconds", top_layer_seconds)

    # The profiled execution observed real work in named layers…
    assert profile.total_calls > 0
    assert top_layer.startswith("ResNetCIFAR.")
    assert profile.ops["conv2d"].calls == 21  # 19 paper convs + 2 shortcuts
    # …and the hook machinery leaves nothing installed behind it.
    assert not installed_op_hooks()
