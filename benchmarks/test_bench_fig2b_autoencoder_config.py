"""Benchmark E3 — Fig. 2b: autoencoder init / activation sweep, pruning mask disabled."""

from repro.experiments import config_space


def test_bench_fig2b_autoencoder_config(benchmark, once):
    results = once(benchmark, config_space.run_fig2b, scale="ci", seeds=(0,), epochs=6)
    print()
    print(config_space.render_config_results(
        results, "Fig. 2b — autoencoder configuration [Wae init | sigma_ae] (mask off)"))
    assert len(results) == 9
    labels = [r.label for r in results]
    assert "xavier|tanh" in labels
    assert all(0.0 <= r.mean_accuracy <= 1.0 for r in results)
