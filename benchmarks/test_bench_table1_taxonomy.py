"""Benchmark E1 — Table I: taxonomy of model compression methods."""

from repro.experiments import method_taxonomy


def test_bench_table1_taxonomy(benchmark, once):
    rows = once(benchmark, method_taxonomy.derived_taxonomy)
    print()
    print(method_taxonomy.render())
    assert method_taxonomy.taxonomy_matches_paper()
    assert len(rows) == 6
