"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints the
measured rows next to the paper's reported values (so EXPERIMENTS.md can be
refreshed from the output), and records its wall-clock time via
pytest-benchmark.  Training-backed benchmarks run exactly once per session
(``rounds=1``) — they are experiments, not micro-benchmarks.

On top of the interactive pytest-benchmark output, the harness writes a
machine-readable ``BENCH_engine.json`` at the repository root: one
wall-clock entry per benchmark (plus any extra metrics a benchmark reports
via :func:`record_metric`), so the performance trajectory of the repo can
be tracked across commits without parsing pytest output.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: test name -> wall-clock seconds of the benchmarked callable.
_TIMINGS = {}
#: test name -> {metric: value} side-channel for benchmark-specific numbers.
_METRICS = {}


def _current_test_name() -> str:
    current = os.environ.get("PYTEST_CURRENT_TEST", "unknown")
    # "benchmarks/test_x.py::test_y (call)" -> "test_y"
    return current.split("::")[-1].split(" ")[0]


def record_metric(name: str, value) -> None:
    """Attach an extra metric to the current benchmark's JSON entry."""
    _METRICS.setdefault(_current_test_name(), {})[name] = value


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    test_name = _current_test_name()

    def timed(*inner_args, **inner_kwargs):
        start = time.perf_counter()
        result = fn(*inner_args, **inner_kwargs)
        _TIMINGS[test_name] = time.perf_counter() - start
        return result

    return benchmark.pedantic(timed, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once


@pytest.fixture
def metric():
    return record_metric


def pytest_sessionfinish(session, exitstatus):
    """Persist per-benchmark wall-clock (and extra metrics) as JSON.

    Entries merge into the existing file so a partial benchmark run (e.g.
    a single ``pytest benchmarks/test_bench_engine_forward.py``) refreshes
    only the benchmarks that actually ran.
    """
    if not _TIMINGS and not _METRICS:
        return
    entries = {}
    if _BENCH_JSON.exists():
        try:
            entries = json.loads(_BENCH_JSON.read_text()).get("benchmarks", {})
        except (json.JSONDecodeError, OSError):
            entries = {}
    for name in sorted(set(_TIMINGS) | set(_METRICS)):
        entry = {}
        if name in _TIMINGS:
            entry["wall_clock_seconds"] = round(_TIMINGS[name], 6)
        entry.update(_METRICS.get(name, {}))
        entries[name] = entry
    payload = {
        "schema": "repro-bench/1",
        "default_dtype": os.environ.get("REPRO_DEFAULT_DTYPE") or "float64",
        "benchmarks": entries,
    }
    _BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
