"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints the
measured rows next to the paper's reported values (so EXPERIMENTS.md can be
refreshed from the output), and records its wall-clock time via
pytest-benchmark.  Training-backed benchmarks run exactly once per session
(``rounds=1``) — they are experiments, not micro-benchmarks.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
