"""Benchmark E9 — ablations: STE bridge and nu_prune schedule (proxy scale)."""

from repro.experiments import ablations


def test_bench_ablation_ste(benchmark, once):
    runs = once(benchmark, ablations.run_ste_ablation, scale="ci", epochs=6)
    print()
    print(ablations.render_ablation(runs, "STE ablation (Eq. 5)"))
    assert {r.label for r in runs} == {"STE (paper)", "no STE (naive gradient)"}
    assert all(0.0 <= r.accuracy <= 1.0 for r in runs)


def test_bench_ablation_schedule(benchmark, once):
    runs = once(benchmark, ablations.run_schedule_ablation, scale="ci", epochs=6)
    print()
    print(ablations.render_ablation(runs, "nu_prune schedule ablation (Sec. III-B)"))
    by_label = {r.label: r for r in runs}
    constant = by_label["constant regularization"]
    scheduled = by_label["nu_prune schedule (paper)"]
    # Without the decaying schedule the regularizer keeps pruning.
    assert constant.remaining_filters <= scheduled.remaining_filters + 0.15
    curve = ablations.schedule_curve()
    print(f"nu_prune(0)={curve[0][1]:.3f}, nu_prune(pr_max)={min(v for _, v in curve):.3f}")
