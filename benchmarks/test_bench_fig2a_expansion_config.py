"""Benchmark E2 — Fig. 2a: expansion-layer configuration sweep (proxy scale)."""

from repro.experiments import config_space


def test_bench_fig2a_expansion_config(benchmark, once):
    results = once(benchmark, config_space.run_fig2a, scale="ci", seeds=(0, 1), epochs=6)
    print()
    print(config_space.render_config_results(
        results, "Fig. 2a — expansion layer configuration [Wexp init | sigma_inter | BN]"))
    assert len(results) == 6
    assert all(len(r.accuracies) == 2 for r in results)
    assert all(0.0 <= r.mean_accuracy <= 1.0 for r in results)
