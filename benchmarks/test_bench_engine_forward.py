"""Microbenchmark: train-mode forward vs tape-free no-grad forward.

The engine refactor's acceptance criterion: a ``no_grad()`` forward of a
ResNet-20 CIFAR batch must allocate **zero** tape nodes and be measurably
faster than the grad-mode forward (which records one tape node per op and
keeps every im2col context alive).  Also compares the float32 fast path
against the float64 default.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.models import build_model
from repro.nn.backend import use_backend
from repro.nn.tensor import Tensor, no_grad, tape_nodes_created

BATCH = 16
INPUT_SHAPE = (3, 32, 32)
ROUNDS = 3


def _median_seconds(fn, rounds: int = ROUNDS) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def _forward_benchmark():
    rng = np.random.default_rng(0)
    model = build_model("resnet20", rng=rng)
    images = rng.standard_normal((BATCH,) + INPUT_SHAPE)
    x = Tensor(images)

    # Grad-mode forward: training mode, tape recorded for every op.
    model.train()
    grad_seconds = _median_seconds(lambda: model(x))

    # Inference forward: eval mode runs under no_grad automatically; assert
    # the graph-free guarantee explicitly before timing.
    model.eval()
    before = tape_nodes_created()
    with no_grad():
        logits = model(x)
    tape_nodes = tape_nodes_created() - before
    nograd_seconds = _median_seconds(lambda: model(x))

    # The float32 fast path: same architecture, half-width arrays.
    with use_backend("numpy32"):
        model32 = build_model("resnet20", rng=np.random.default_rng(0))
        model32.eval()
        x32 = Tensor(images.astype(np.float32))
        float32_seconds = _median_seconds(lambda: model32(x32))

    return {
        "tape_nodes_nograd": int(tape_nodes),
        "grad_forward_seconds": grad_seconds,
        "nograd_forward_seconds": nograd_seconds,
        "float32_forward_seconds": float32_seconds,
        "speedup_nograd_vs_grad": grad_seconds / nograd_seconds,
        "speedup_float32_vs_float64": nograd_seconds / float32_seconds,
        "logits_shape": tuple(logits.shape),
    }


@pytest.mark.benchmark(group="engine")
def test_bench_engine_forward(benchmark, once, metric):
    result = once(benchmark, _forward_benchmark)

    print("\nResNet-20 forward, batch %d %s" % (BATCH, (INPUT_SHAPE,)))
    print(f"  grad-mode forward     : {result['grad_forward_seconds'] * 1e3:9.1f} ms")
    print(f"  no-grad forward       : {result['nograd_forward_seconds'] * 1e3:9.1f} ms "
          f"({result['speedup_nograd_vs_grad']:.2f}x)")
    print(f"  float32 no-grad       : {result['float32_forward_seconds'] * 1e3:9.1f} ms "
          f"({result['speedup_float32_vs_float64']:.2f}x vs float64)")
    print(f"  tape nodes under no_grad: {result['tape_nodes_nograd']}")

    for key in ("grad_forward_seconds", "nograd_forward_seconds",
                "float32_forward_seconds", "speedup_nograd_vs_grad",
                "speedup_float32_vs_float64", "tape_nodes_nograd"):
        metric(key, result[key])

    assert result["logits_shape"] == (BATCH, 10)
    # Acceptance criteria: graph-free and measurably faster.
    assert result["tape_nodes_nograd"] == 0
    assert result["nograd_forward_seconds"] < result["grad_forward_seconds"]
