"""Benchmark — result cache: replay and warm-start payoff.

The cache exists to make repeated sweep submissions cheap; this benchmark
measures both layers of that claim:

* ``cache_hit_speedup`` — a three-method cost-only sweep run cold and then
  replayed from a populated :class:`FileReportCache`: the hit path skips
  every per-spec prune/finalize/hardware stage and pays only entry
  validation, so the replay must be decisively faster;
* ``warm_start_speedup`` — a trained near-miss spec (same method / model /
  data, different pruning ratio) run cold and then warm-started from the
  nearest cached checkpoint: the warm run skips the from-dense pre-train
  epochs and keeps only fine-tuning, so it must beat the cold run while
  producing a normally-shaped report.

Both speedups (plus the raw second counts and the store's content stats)
land in ``BENCH_engine.json`` for trend tracking.
"""

from __future__ import annotations

import time

import repro.api as api
from repro.data import make_synthetic_dataset

from conftest import record_metric, run_once

INPUT_SHAPE = (1, 16, 16)
HIT_METHODS = ["magnitude", "fpgm", "lowrank"]
PRETRAIN_EPOCHS = 4


def _hit_specs():
    return [api.CompressionSpec(method=method, input_shape=INPUT_SHAPE)
            for method in HIT_METHODS]


def _trained_spec(ratio: float) -> api.CompressionSpec:
    return api.CompressionSpec(
        method="magnitude", config=api.MagnitudeSpec(prune_ratio=ratio),
        epochs=PRETRAIN_EPOCHS, finetune_epochs=1, input_shape=INPUT_SHAPE)


def _timed_sweep(cache, **kwargs):
    start = time.perf_counter()
    sweep = api.run_sweep(cache=cache, **kwargs)
    return sweep, time.perf_counter() - start


def test_bench_cache_replay_and_warm_start(benchmark, tmp_path):
    store = api.FileReportCache(tmp_path / "cache")
    cost_kwargs = dict(specs=_hit_specs(), model="lenet",
                       hardware=api.EYERISS_PAPER, input_shape=INPUT_SHAPE)

    cold_sweep, cold_seconds = _timed_sweep(store, **cost_kwargs)
    # The replay carries the pedantic benchmark timing so the JSON
    # wall_clock_seconds entry is the cache-hit path itself.
    run_once(benchmark, lambda: api.run_sweep(cache=store, **cost_kwargs))
    hit_sweep, hit_seconds = _timed_sweep(store, **cost_kwargs)
    hit_speedup = cold_seconds / hit_seconds

    dataset = make_synthetic_dataset(80, num_classes=4,
                                     image_shape=INPUT_SHAPE, seed=0)
    train_kwargs = dict(model="lenet", data=dataset, hardware=None,
                        input_shape=INPUT_SHAPE)
    # Populate one trained entry (+ checkpoint), then compare the same
    # near-miss spec cold (no cache) vs warm-started from that checkpoint.
    api.run_sweep([_trained_spec(0.3)], cache=store, **train_kwargs)
    _, cold_near_seconds = _timed_sweep(None, specs=[_trained_spec(0.5)],
                                        **train_kwargs)
    warm_sweep, warm_seconds = _timed_sweep((store, "read"),
                                            specs=[_trained_spec(0.5)],
                                            **train_kwargs)
    warm_speedup = cold_near_seconds / warm_seconds

    stats = store.stats()
    record_metric("cold_seconds", round(cold_seconds, 4))
    record_metric("hit_seconds", round(hit_seconds, 4))
    record_metric("cache_hit_speedup", round(hit_speedup, 3))
    record_metric("cold_near_miss_seconds", round(cold_near_seconds, 4))
    record_metric("warm_start_seconds", round(warm_seconds, 4))
    record_metric("warm_start_speedup", round(warm_speedup, 3))
    record_metric("store_entries", stats.entries)
    record_metric("store_checkpoints", stats.checkpoints)
    record_metric("store_bytes", stats.total_bytes)

    print(f"\nresult cache ({len(HIT_METHODS)} cost-only specs):")
    print(f"  cold sweep : {cold_seconds:.3f}s")
    print(f"  cache hit  : {hit_seconds:.3f}s  ({hit_speedup:.1f}x)")
    print(f"warm start (magnitude, {PRETRAIN_EPOCHS} pre-train epochs "
          f"+ 1 fine-tune):")
    print(f"  cold near-miss : {cold_near_seconds:.3f}s")
    print(f"  warm-started   : {warm_seconds:.3f}s  ({warm_speedup:.2f}x)")
    print(f"store: {stats.entries} entries, {stats.checkpoints} checkpoints, "
          f"{stats.total_bytes / 1024:.0f} KiB")

    # The replay must be bit-identical and decisively faster; the warm
    # start must beat the cold path while still producing a full report.
    assert [r.to_dict() for r in hit_sweep.reports] == \
        [r.to_dict() for r in cold_sweep.reports]
    assert hit_speedup >= 1.5, (
        f"cache replay only reached {hit_speedup:.2f}x over recomputation")
    assert warm_speedup >= 1.1, (
        f"warm start only reached {warm_speedup:.2f}x over cold near-miss")
    assert warm_sweep.reports[0].accuracy is not None
