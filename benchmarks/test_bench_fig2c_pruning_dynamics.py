"""Benchmark E4 — Fig. 2c: pruning dynamics (remaining filters / accuracy vs epochs)."""

from repro.experiments import config_space
from repro.experiments.paper_values import FIG2C_REMAINING_FILTERS


def test_bench_fig2c_pruning_dynamics(benchmark, once):
    curves = once(benchmark, config_space.run_fig2c, scale="ci", seed=0)
    print()
    print(config_space.render_pruning_curves(curves))
    print("Paper (200-epoch Plain-20/CIFAR-10) remaining filters: "
          + ", ".join(f"lr={lr},t={t}: {value:.1f}%"
                      for (lr, t), value in FIG2C_REMAINING_FILTERS.items()))
    by_label = {c.label: c for c in curves}
    # Trend 1: a larger clipping threshold prunes at least as aggressively.
    assert (by_label["lr=1e-3,t=5e-4"].final_remaining_percent
            <= by_label["lr=1e-3,t=5e-5"].final_remaining_percent + 1e-9)
    # Trend 2: a slower autoencoder optimizer leaves more filters.
    assert (by_label["lr=1e-5,t=1e-4"].final_remaining_percent
            >= by_label["lr=1e-3,t=1e-4"].final_remaining_percent - 1e-9)
    # Every curve tracks the full training trajectory.
    assert all(len(c.epochs) == len(c.remaining_filters) for c in curves)
