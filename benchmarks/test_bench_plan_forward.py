"""Microbenchmark: compiled InferencePlan vs eager Module forward.

The deploy subsystem's acceptance criteria:

* ``plan_speedup`` — a compiled plan's steady-state forward must beat the
  eager ``no_grad()`` forward of the same model (no per-call allocation,
  constants frozen, activations fused).  CI asserts >= 1.0; the target
  for this benchmark is > 1.3x.
* ``streaming_peak_ratio`` — the row-banded convolution path under a
  ``memory_budget`` must shrink the arena's preallocated peak on a deep
  model (< 1.0 means smaller than the unbudgeted plan).
* ``load_vs_compile_speedup`` — deserializing a saved ``repro-plan/1``
  payload must be cheaper than re-tracing and re-compiling the model
  (that is the point of the plan store), and the loaded plan's forward
  must stay bit-identical to the original's.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.deploy import InferencePlan, compile as compile_plan
from repro.models import build_model
from repro.nn.tensor import Tensor, no_grad

ROUNDS = 7
WARMUP = 2

#: Model / batch where Python-dispatch and allocation overhead dominate the
#: GEMM work — the regime compiled plans are built for (deploy-time single
#: stream inference).
MODEL = "resnet20"
INPUT_SHAPE = (3, 32, 32)
BATCH = 1

#: Deep model used to demonstrate the streaming conv memory reduction.
STREAM_MODEL = "resnet20"
STREAM_BATCH = 4
STREAM_BUDGET = 200_000


def _median_seconds(fn, rounds: int = ROUNDS) -> float:
    for _ in range(WARMUP):
        fn()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def _plan_vs_module():
    rng = np.random.default_rng(0)
    model = build_model(MODEL, rng=rng)
    x = rng.standard_normal((BATCH,) + INPUT_SHAPE)

    plan = compile_plan(model, INPUT_SHAPE, batch=BATCH)
    xt = Tensor(x.astype(plan.input_dtype))
    xp = x.astype(plan.input_dtype)

    model.eval()
    with no_grad():
        ref = model(xt).data
    assert plan(xp).data.tobytes() == ref.tobytes()

    def eager():
        with no_grad():
            return model(xt)

    eager_seconds = _median_seconds(eager)
    plan_seconds = _median_seconds(lambda: plan(xp))

    # Streaming: same deep model, tight im2col budget.
    stream_model = build_model(STREAM_MODEL, rng=np.random.default_rng(0))
    full = compile_plan(stream_model, INPUT_SHAPE, batch=STREAM_BATCH)
    tight = compile_plan(stream_model, INPUT_SHAPE, batch=STREAM_BATCH,
                         memory_budget=STREAM_BUDGET)

    # Serialization: loading the wire form vs recompiling from the model.
    payload_text = json.dumps(plan.to_dict())
    loaded = InferencePlan.from_dict(json.loads(payload_text))
    assert loaded(xp).data.tobytes() == ref.tobytes(), (
        "loaded plan diverged from eager")
    compile_seconds = _median_seconds(
        lambda: compile_plan(model, INPUT_SHAPE, batch=BATCH), rounds=3)
    load_seconds = _median_seconds(
        lambda: InferencePlan.from_dict(json.loads(payload_text)), rounds=3)

    return {
        "compile_seconds": compile_seconds,
        "load_seconds": load_seconds,
        "load_vs_compile_speedup": compile_seconds / load_seconds,
        "plan_payload_bytes": len(payload_text),
        "eager_seconds": eager_seconds,
        "plan_seconds": plan_seconds,
        "plan_speedup": eager_seconds / plan_seconds,
        "plan_steps": plan.stats.steps,
        "fused_activations": plan.stats.fused_activations,
        "arena_reuse_ratio": plan.stats.arena.reuse_ratio,
        "peak_buffer_bytes": full.peak_buffer_bytes,
        "streaming_peak_buffer_bytes": tight.peak_buffer_bytes,
        "streaming_peak_ratio": tight.peak_buffer_bytes / full.peak_buffer_bytes,
        "streamed_convs": tight.stats.streamed_convs,
    }


def test_bench_plan_forward(benchmark, once, metric):
    result = once(benchmark, _plan_vs_module)

    print(f"\n{MODEL} batch={BATCH}: eager {result['eager_seconds'] * 1e3:.2f} ms"
          f" -> plan {result['plan_seconds'] * 1e3:.2f} ms"
          f" ({result['plan_speedup']:.2f}x, {result['plan_steps']} steps,"
          f" {result['fused_activations']} fused activations,"
          f" arena reuse {result['arena_reuse_ratio']:.2f}x)")
    print(f"streaming {STREAM_MODEL} batch={STREAM_BATCH}"
          f" budget={STREAM_BUDGET}: peak"
          f" {result['peak_buffer_bytes'] / 1e6:.2f} MB ->"
          f" {result['streaming_peak_buffer_bytes'] / 1e6:.2f} MB"
          f" ({result['streaming_peak_ratio']:.2f}x,"
          f" {result['streamed_convs']} streamed convs)")
    print(f"serialization: compile {result['compile_seconds'] * 1e3:.1f} ms"
          f" vs load {result['load_seconds'] * 1e3:.1f} ms"
          f" ({result['load_vs_compile_speedup']:.2f}x,"
          f" {result['plan_payload_bytes'] / 1e6:.2f} MB payload)")

    metric("plan_speedup", round(result["plan_speedup"], 3))
    metric("eager_seconds", round(result["eager_seconds"], 6))
    metric("plan_seconds", round(result["plan_seconds"], 6))
    metric("arena_reuse_ratio", round(result["arena_reuse_ratio"], 3))
    metric("peak_buffer_bytes", int(result["peak_buffer_bytes"]))
    metric("streaming_peak_buffer_bytes",
           int(result["streaming_peak_buffer_bytes"]))
    metric("streaming_peak_ratio", round(result["streaming_peak_ratio"], 3))
    metric("streamed_convs", int(result["streamed_convs"]))
    metric("compile_seconds", round(result["compile_seconds"], 6))
    metric("load_seconds", round(result["load_seconds"], 6))
    metric("load_vs_compile_speedup",
           round(result["load_vs_compile_speedup"], 3))
    metric("plan_payload_bytes", int(result["plan_payload_bytes"]))

    assert result["plan_speedup"] >= 1.0, (
        "compiled plan slower than eager forward")
    assert result["streaming_peak_ratio"] < 1.0, (
        "memory budget did not reduce preallocated peak")
