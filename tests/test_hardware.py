"""Tests for the analytical Eyeriss hardware model: spec, dataflow, mapper, energy, latency."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ALFConfig, convert_to_alf
from repro.hardware import (
    EYERISS_PAPER,
    ConvLayerShape,
    EnergyTable,
    EyerissSpec,
    compare_networks,
    conv_shapes_from_model,
    energy_breakdown,
    evaluate_layers,
    evaluate_model,
    latency_estimate,
    map_row_stationary,
    search_mapping,
)
from repro.models import plain8, plain20
from repro.models.plain import plain_layer_names


def make_layer(name="conv", ci=16, co=16, k=3, hw=(16, 16), stride=1, padding=1, batch=1):
    return ConvLayerShape(name=name, in_channels=ci, out_channels=co, kernel_size=k,
                          input_hw=hw, stride=stride, padding=padding, batch=batch)


class TestSpec:
    def test_paper_spec_values(self):
        spec = EYERISS_PAPER
        assert spec.num_pes == 256
        assert spec.rf_words_per_pe == 220
        assert spec.global_buffer_bytes == 128 * 1024
        assert spec.word_bits == 16
        assert spec.word_bytes == 2
        assert spec.global_buffer_words == 64 * 1024

    def test_energy_ordering(self):
        energy = EnergyTable()
        assert energy.register_file < energy.global_buffer < energy.dram

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            EyerissSpec(pe_rows=0).validate()
        with pytest.raises(ValueError):
            EyerissSpec(rf_weight_words=1000).validate()
        with pytest.raises(ValueError):
            EyerissSpec(word_bits=12).validate()
        with pytest.raises(ValueError):
            EyerissSpec(dram_bytes_per_cycle=0).validate()


class TestLayerShape:
    def test_output_geometry(self):
        layer = make_layer(hw=(32, 32), stride=2)
        assert layer.output_hw == (16, 16)

    def test_macs_formula(self):
        layer = make_layer(ci=4, co=8, k=3, hw=(8, 8), batch=2)
        assert layer.macs == 2 * 4 * 8 * 9 * 8 * 8

    def test_word_counts(self):
        layer = make_layer(ci=4, co=8, k=3, hw=(8, 8), batch=2)
        assert layer.weight_words == 4 * 8 * 9
        assert layer.input_words == 2 * 4 * 64
        assert layer.output_words == 2 * 8 * 64

    def test_validation(self):
        with pytest.raises(ValueError):
            make_layer(ci=0).validate()
        with pytest.raises(ValueError):
            ConvLayerShape("bad", 4, 4, 7, (3, 3), stride=1, padding=0).validate()

    def test_with_batch(self):
        layer = make_layer(batch=1)
        assert layer.with_batch(16).macs == 16 * layer.macs


class TestRowStationaryMapping:
    def test_utilization_bounded(self):
        mapping = map_row_stationary(make_layer(), EYERISS_PAPER)
        assert 0.0 < mapping.utilization <= 1.0
        assert mapping.used_pes <= EYERISS_PAPER.num_pes

    def test_small_layer_underutilizes_array(self):
        # Few output channels and a small map limit replication -> low utilization.
        small = map_row_stationary(make_layer(ci=1, co=2, hw=(8, 8)), EYERISS_PAPER)
        large = map_row_stationary(make_layer(ci=64, co=64, hw=(16, 16)), EYERISS_PAPER)
        assert small.utilization < large.utilization

    def test_spatial_folding_for_tall_outputs(self):
        mapping = map_row_stationary(make_layer(hw=(32, 32)), EYERISS_PAPER)
        assert mapping.spatial_folds == 2

    def test_temporal_passes_cover_all_work(self):
        layer = make_layer(ci=8, co=8, hw=(8, 8), batch=2)
        mapping = map_row_stationary(layer, EYERISS_PAPER)
        total_sets = layer.in_channels * layer.out_channels * layer.batch * mapping.spatial_folds
        assert mapping.temporal_passes >= total_sets / mapping.replication - 1

    def test_pruned_layer_loses_parallelism(self):
        """The conv312 anomaly: very few output channels -> idle PEs."""
        dense = map_row_stationary(make_layer(ci=32, co=32, hw=(16, 16)), EYERISS_PAPER)
        pruned = map_row_stationary(make_layer(ci=32, co=3, hw=(16, 16)), EYERISS_PAPER)
        assert pruned.used_pes < dense.used_pes


class TestMapperEnergyLatency:
    def test_mapping_found_for_typical_layers(self):
        for layer in [make_layer(), make_layer(ci=64, co=64, hw=(8, 8), batch=16),
                      make_layer(ci=3, co=16, hw=(32, 32), batch=16)]:
            mapping = search_mapping(layer, EYERISS_PAPER)
            assert mapping.energy > 0
            assert mapping.accesses.register_file == 4 * layer.macs

    def test_energy_breakdown_sums_to_total(self):
        mapping = search_mapping(make_layer(batch=4), EYERISS_PAPER)
        breakdown = energy_breakdown(mapping, EYERISS_PAPER)
        assert breakdown.total == pytest.approx(
            breakdown.register_file + breakdown.global_buffer + breakdown.dram)
        assert breakdown.total == pytest.approx(mapping.energy)

    def test_rf_energy_dominates_for_compute_heavy_layers(self):
        """Fig. 3 trend: the register files dominate energy for the deeper layers."""
        mapping = search_mapping(make_layer(ci=64, co=64, hw=(8, 8), batch=16), EYERISS_PAPER)
        breakdown = energy_breakdown(mapping, EYERISS_PAPER)
        assert breakdown.register_file > breakdown.dram
        assert breakdown.register_file > breakdown.global_buffer

    def test_energy_scales_with_macs(self):
        small = search_mapping(make_layer(ci=8, co=8), EYERISS_PAPER)
        large = search_mapping(make_layer(ci=32, co=32), EYERISS_PAPER)
        assert large.energy > small.energy

    def test_latency_positive_and_bound_reported(self):
        mapping = search_mapping(make_layer(batch=16), EYERISS_PAPER)
        latency = latency_estimate(mapping, EYERISS_PAPER)
        assert latency.total_cycles > 0
        assert latency.bound in ("compute", "memory")
        assert latency.total_cycles == pytest.approx(
            max(latency.compute_cycles, latency.dram_cycles))

    def test_lower_utilization_increases_latency(self):
        dense = search_mapping(make_layer(ci=32, co=32, hw=(16, 16), batch=16), EYERISS_PAPER)
        pruned = search_mapping(make_layer(ci=32, co=2, hw=(16, 16), batch=16), EYERISS_PAPER)
        dense_latency = latency_estimate(dense, EYERISS_PAPER)
        pruned_latency = latency_estimate(pruned, EYERISS_PAPER)
        # Per-MAC cost is higher when the array is underutilized.
        assert (pruned_latency.compute_cycles / pruned.layer.macs
                >= dense_latency.compute_cycles / dense.layer.macs)

    def test_infeasible_layer_raises(self):
        huge = ConvLayerShape("huge", 4, 4, 500, (600, 600), stride=1, padding=0)
        with pytest.raises(RuntimeError):
            search_mapping(huge, EYERISS_PAPER)


class TestNetworkReports:
    def test_evaluate_layers_totals(self):
        layers = [make_layer(name="a"), make_layer(name="b", ci=32, co=32, hw=(8, 8))]
        report = evaluate_layers(layers, name="net")
        assert len(report.layers) == 2
        assert report.total_energy == pytest.approx(sum(r.energy.total for r in report.layers))
        assert report.total_latency == pytest.approx(
            sum(r.latency.total_cycles for r in report.layers))
        levels = report.energy_by_level()
        assert set(levels) == {"register_file", "global_buffer", "dram"}

    def test_conv_shapes_from_vanilla_model(self, rng):
        model = plain8(rng=rng)
        shapes = conv_shapes_from_model(model, (3, 16, 16), batch=2)
        assert len(shapes) == 7   # 1 stem + 6 stage convs for plain-8
        assert all(s.batch == 2 for s in shapes)

    def test_conv_shapes_from_alf_model_include_expansion(self, rng):
        model = plain8(rng=rng)
        convert_to_alf(model, ALFConfig(), rng=rng)
        shapes = conv_shapes_from_model(model, (3, 16, 16))
        expansion = [s for s in shapes if s.name.endswith("_exp")]
        assert len(expansion) == 7
        assert all(s.kernel_size == 1 for s in expansion)

    def test_grouping_merges_expansion_layers(self, rng):
        model = plain8(rng=rng)
        convert_to_alf(model, ALFConfig(), rng=rng)
        report = evaluate_model(model, (3, 16, 16), batch=2)
        grouped = report.grouped_energy()
        assert len(grouped) == 7
        assert not any(name.endswith("_exp") for name in grouped)

    def test_layer_names_applied(self, rng):
        model = plain20(rng=rng)
        names = plain_layer_names()
        report = evaluate_model(model, (3, 32, 32), batch=1, layer_names=names)
        assert report.layer_names() == names

    def test_comparison_reductions(self, rng):
        baseline_layers = [make_layer(name="a", ci=32, co=32, batch=4)]
        compressed_layers = [make_layer(name="a", ci=32, co=12, batch=4),
                             make_layer(name="a_exp", ci=12, co=32, k=1, padding=0, batch=4)]
        baseline = evaluate_layers(baseline_layers, name="vanilla")
        compressed = evaluate_layers(compressed_layers, name="alf")
        comparison = compare_networks(baseline, compressed)
        assert comparison.energy_reduction == pytest.approx(
            1.0 - compressed.total_energy / baseline.total_energy)
        summary = comparison.summary()
        assert set(summary) >= {"energy_reduction", "latency_reduction"}


# --------------------------------------------------------------------------- #
# Property-based invariants of the hardware model
# --------------------------------------------------------------------------- #
@given(ci=st.integers(1, 64), co=st.integers(1, 64), hw=st.integers(4, 32),
       batch=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_mapper_access_counts_cover_minimum_traffic(ci, co, hw, batch):
    """Every input/output/weight word must cross DRAM at least once."""
    layer = ConvLayerShape("prop", ci, co, 3, (hw, hw), stride=1, padding=1, batch=batch)
    mapping = search_mapping(layer, EYERISS_PAPER)
    minimum = layer.input_words + layer.output_words + layer.weight_words
    assert mapping.accesses.dram >= minimum
    assert mapping.accesses.register_file >= layer.macs


@given(co_small=st.integers(1, 16), co_large=st.integers(32, 64))
@settings(max_examples=20, deadline=None)
def test_energy_monotone_in_output_channels(co_small, co_large):
    small = search_mapping(make_layer(co=co_small, batch=2), EYERISS_PAPER)
    large = search_mapping(make_layer(co=co_large, batch=2), EYERISS_PAPER)
    assert large.energy > small.energy
