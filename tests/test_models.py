"""Tests for the model zoo: shapes, depths, registry, paper cost numbers."""

import numpy as np
import pytest

from repro.metrics import profile_model
from repro.models import (
    available_models,
    build_model,
    default_input_shape,
    googlenet,
    lenet,
    plain8,
    plain20,
    plain_layer_names,
    resnet8,
    resnet18,
    resnet20,
    squeezenet,
)
from repro.nn import Tensor


class TestCIFARModels:
    def test_plain20_depth(self, rng):
        assert plain20(rng=rng).depth == 20

    def test_resnet20_depth(self, rng):
        assert resnet20(rng=rng).depth == 20

    def test_plain20_forward_shape(self, rng):
        model = plain8(rng=rng)
        out = model(Tensor(rng.standard_normal((2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_resnet_forward_shape(self, rng):
        model = resnet8(rng=rng)
        out = model(Tensor(rng.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_plain20_has_19_convolutions(self, rng):
        profile = profile_model(plain20(rng=rng), (3, 32, 32))
        conv_layers = [l for l in profile.layers if l.kind == "conv"]
        assert len(conv_layers) == 19

    def test_resnet20_spatial_downsampling(self, rng):
        model = resnet8(rng=rng)
        out = model(Tensor(rng.standard_normal((1, 3, 32, 32))))
        assert out.shape == (1, 10)

    def test_layer_names_match_paper_figure(self):
        names = plain_layer_names()
        assert names[0] == "CONV1"
        assert names[1] == "CONV211"
        assert names[-1] == "CONV432"
        assert len(names) == 19
        assert "CONV312" in names

    def test_num_classes_configurable(self, rng):
        model = plain8(num_classes=7, rng=rng)
        out = model(Tensor(rng.standard_normal((1, 3, 16, 16))))
        assert out.shape == (1, 7)


class TestPaperCostNumbers:
    """Params / OPs of the architectures must match the paper's Table II / III."""

    def test_plain20_cifar_costs(self, rng):
        profile = profile_model(plain20(rng=rng), (3, 32, 32))
        assert profile.total_params(conv_only=True) / 1e6 == pytest.approx(0.27, abs=0.01)
        assert profile.total_ops(conv_only=True) / 1e6 == pytest.approx(81.1, rel=0.02)

    def test_resnet20_cifar_costs(self, rng):
        profile = profile_model(resnet20(rng=rng), (3, 32, 32))
        assert profile.total_params(conv_only=True) / 1e6 == pytest.approx(0.27, abs=0.01)
        assert profile.total_ops(conv_only=True) / 1e6 == pytest.approx(81.1, rel=0.05)

    @pytest.mark.slow
    def test_resnet18_imagenet_costs(self, rng):
        profile = profile_model(resnet18(rng=rng), (3, 224, 224))
        assert profile.total_params() / 1e6 == pytest.approx(11.83, rel=0.05)
        assert profile.total_ops() / 1e6 == pytest.approx(3743, rel=0.05)

    @pytest.mark.slow
    def test_squeezenet_imagenet_costs(self, rng):
        profile = profile_model(squeezenet(rng=rng), (3, 224, 224))
        assert profile.total_params() / 1e6 == pytest.approx(1.23, rel=0.05)
        assert profile.total_ops() / 1e6 == pytest.approx(1722, rel=0.05)

    @pytest.mark.slow
    def test_googlenet_imagenet_costs(self, rng):
        profile = profile_model(googlenet(rng=rng), (3, 224, 224))
        assert profile.total_params() / 1e6 == pytest.approx(6.8, rel=0.05)
        assert profile.total_ops() / 1e6 == pytest.approx(3004, rel=0.06)


class TestImageNetModels:
    def test_resnet18_forward_small_input(self, rng):
        model = resnet18(num_classes=5, rng=rng)
        out = model(Tensor(rng.standard_normal((1, 3, 64, 64))))
        assert out.shape == (1, 5)

    def test_squeezenet_forward_small_input(self, rng):
        model = squeezenet(num_classes=5, rng=rng)
        out = model(Tensor(rng.standard_normal((1, 3, 64, 64))))
        assert out.shape == (1, 5)

    def test_googlenet_forward_small_input(self, rng):
        model = googlenet(num_classes=5, rng=rng)
        out = model(Tensor(rng.standard_normal((1, 3, 64, 64))))
        assert out.shape == (1, 5)

    def test_fire_module_channel_count(self, rng):
        from repro.models.squeezenet import FireModule
        fire = FireModule(8, 4, 8, 8, rng=rng)
        out = fire(Tensor(rng.standard_normal((1, 8, 6, 6))))
        assert out.shape == (1, 16, 6, 6)

    def test_inception_module_channel_count(self, rng):
        from repro.models.googlenet import InceptionModule
        module = InceptionModule(16, 4, 4, 8, 2, 4, 4, rng=rng)
        out = module(Tensor(rng.standard_normal((1, 16, 8, 8))))
        assert out.shape == (1, 20, 8, 8)


class TestRegistry:
    def test_available_models_contains_paper_architectures(self):
        names = available_models()
        for expected in ("plain20", "resnet20", "resnet18", "squeezenet", "googlenet"):
            assert expected in names

    def test_build_model_by_name(self, rng):
        model = build_model("lenet", num_classes=3, rng=rng)
        out = model(Tensor(rng.standard_normal((1, 1, 12, 12))))
        assert out.shape == (1, 3)

    def test_build_model_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("vgg-1000")

    def test_default_input_shapes(self):
        assert default_input_shape("plain20") == (3, 32, 32)
        assert default_input_shape("resnet18") == (3, 224, 224)
        with pytest.raises(KeyError):
            default_input_shape("unknown")

    def test_models_are_trainable(self, rng):
        """Every registry model produces finite gradients on a tiny input."""
        from repro.nn.loss import cross_entropy
        for name in ("lenet", "plain8", "resnet8"):
            model = build_model(name, num_classes=3, rng=rng,
                                in_channels=1 if name == "lenet" else 3)
            channels = 1 if name == "lenet" else 3
            x = Tensor(rng.standard_normal((2, channels, 16, 16)))
            loss = cross_entropy(model(x), np.array([0, 1]))
            loss.backward()
            grads = [p.grad for p in model.parameters() if p.grad is not None]
            assert grads and all(np.all(np.isfinite(g)) for g in grads)
