"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ALFConfig
from repro.data import DataLoader, make_synthetic_dataset
from repro.models import lenet


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_dataset():
    """A small, learnable 4-class synthetic dataset."""
    return make_synthetic_dataset(160, num_classes=4, image_shape=(1, 10, 10), seed=0)


@pytest.fixture
def tiny_loaders(tiny_dataset):
    train, test = tiny_dataset.split(0.75)
    return (DataLoader(train, batch_size=24, shuffle=True, seed=0),
            DataLoader(test, batch_size=64))


@pytest.fixture
def tiny_model(rng):
    return lenet(num_classes=4, in_channels=1, width=8, rng=rng)


@pytest.fixture
def fast_alf_config():
    """An ALF configuration that prunes within a handful of optimisation steps."""
    return ALFConfig(lr_task=0.05, threshold=5e-2, lr_autoencoder=5e-2,
                     pr_max=0.6, mask_init=0.2)
