"""Unit tests for functional ops: conv, pooling, batch norm, softmax heads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.utils import check_gradient


def reference_conv2d(x, w, stride, padding):
    """Direct (slow) convolution used as ground truth for the im2col path."""
    n, ci, h, wdt = x.shape
    co, _, kh, kw = w.shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wdt + 2 * padding - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, co, oh, ow))
    for b in range(n):
        for o in range(co):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[b, o, i, j] = np.sum(patch * w[o])
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        assert np.allclose(out.data, reference_conv2d(x, w, stride, padding), atol=1e-10)

    def test_bias_added_per_channel(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        w = np.zeros((2, 1, 1, 1))
        bias = np.array([1.5, -2.0])
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(bias))
        assert np.allclose(out.data[0, 0], 1.5)
        assert np.allclose(out.data[0, 1], -2.0)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.standard_normal((1, 3, 5, 5))),
                     Tensor(rng.standard_normal((4, 2, 3, 3))))

    def test_gradient_wrt_input(self, rng):
        w = rng.standard_normal((2, 2, 3, 3))
        check_gradient(lambda t: F.conv2d(t, Tensor(w), stride=1, padding=1).sum(),
                       rng.standard_normal((1, 2, 5, 5)))

    def test_gradient_wrt_weight(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        check_gradient(lambda t: F.conv2d(Tensor(x), t, stride=2, padding=1).sum(),
                       rng.standard_normal((3, 2, 3, 3)))

    def test_gradient_wrt_bias(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        w = rng.standard_normal((3, 2, 3, 3))
        check_gradient(lambda t: F.conv2d(Tensor(x), Tensor(w), t, padding=1).sum(),
                       rng.standard_normal((3,)))

    def test_output_size_formula(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(224, 7, 2, 3) == 112


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradient(self, rng):
        check_gradient(lambda t: F.max_pool2d(t, 2).sum(), rng.standard_normal((2, 2, 6, 6)))

    def test_avg_pool_gradient(self, rng):
        check_gradient(lambda t: F.avg_pool2d(t, 2).sum(), rng.standard_normal((2, 2, 6, 6)))

    def test_strided_max_pool_shape(self, rng):
        out = F.max_pool2d(Tensor(rng.standard_normal((1, 1, 7, 7))), 3, stride=2)
        assert out.shape == (1, 1, 3, 3)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.mean(axis=(2, 3)))


class TestDenseAndNorm:
    def test_linear_matches_numpy(self, rng):
        x = rng.standard_normal((4, 5))
        w = rng.standard_normal((3, 5))
        b = rng.standard_normal(3)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out.data, x @ w.T + b)

    def test_batch_norm_normalizes_training(self, rng):
        x = rng.standard_normal((8, 3, 4, 4)) * 5 + 2
        gamma = Tensor(np.ones(3), requires_grad=True)
        beta = Tensor(np.zeros(3), requires_grad=True)
        running_mean = np.zeros(3)
        running_var = np.ones(3)
        out = F.batch_norm(Tensor(x), gamma, beta, running_mean, running_var, training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_batch_norm_updates_running_stats(self, rng):
        x = rng.standard_normal((8, 3, 4, 4)) + 4.0
        running_mean = np.zeros(3)
        running_var = np.ones(3)
        F.batch_norm(Tensor(x), Tensor(np.ones(3)), Tensor(np.zeros(3)),
                     running_mean, running_var, training=True, momentum=1.0)
        assert np.allclose(running_mean, x.mean(axis=(0, 2, 3)), atol=1e-7)

    def test_batch_norm_eval_uses_running_stats(self, rng):
        x = rng.standard_normal((4, 2, 3, 3))
        running_mean = np.array([1.0, -1.0])
        running_var = np.array([4.0, 0.25])
        out = F.batch_norm(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)),
                           running_mean, running_var, training=False)
        expected = (x - running_mean.reshape(1, 2, 1, 1)) / np.sqrt(
            running_var.reshape(1, 2, 1, 1) + 1e-5)
        assert np.allclose(out.data, expected)

    def test_batch_norm_2d_input(self, rng):
        x = rng.standard_normal((16, 5))
        out = F.batch_norm(Tensor(x), Tensor(np.ones(5)), Tensor(np.zeros(5)),
                           np.zeros(5), np.ones(5), training=True)
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-8)

    def test_batch_norm_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            F.batch_norm(Tensor(rng.standard_normal((2, 3, 4))), Tensor(np.ones(3)),
                         Tensor(np.zeros(3)), np.zeros(3), np.ones(3), training=True)

    def test_dropout_identity_in_eval(self, rng):
        x = rng.standard_normal((4, 4))
        out = F.dropout(Tensor(x), p=0.5, training=False)
        assert np.array_equal(out.data, x)

    def test_dropout_scales_surviving_activations(self, rng):
        x = np.ones((1000,))
        out = F.dropout(Tensor(x), p=0.4, training=True, rng=np.random.default_rng(0))
        surviving = out.data[out.data > 0]
        assert np.allclose(surviving, 1.0 / 0.6)


class TestSoftmaxHeads:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((5, 7))), axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_log_softmax_consistent_with_softmax(self, rng):
        x = Tensor(rng.standard_normal((4, 6)))
        assert np.allclose(F.log_softmax(x, axis=1).data, np.log(F.softmax(x, axis=1).data))

    def test_softmax_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + 100.0), axis=1).data
        assert np.allclose(a, b, atol=1e-9)

    def test_log_softmax_gradient(self, rng):
        check_gradient(lambda t: F.log_softmax(t, axis=1)[np.arange(3), [0, 1, 2]].sum(),
                       rng.standard_normal((3, 4)))

    def test_get_activation_lookup(self):
        assert F.get_activation("relu") is F.relu
        assert F.get_activation(None) is F.identity
        assert F.get_activation("NONE") is F.identity
        with pytest.raises(KeyError):
            F.get_activation("swish")


# --------------------------------------------------------------------------- #
# Property-based: im2col / col2im round trips and conv shape algebra
# --------------------------------------------------------------------------- #
@given(
    h=st.integers(3, 10), w=st.integers(3, 10),
    k=st.integers(1, 3), stride=st.integers(1, 2), padding=st.integers(0, 2),
)
@settings(max_examples=40, deadline=None)
def test_conv_output_shape_property(h, w, k, stride, padding):
    if h + 2 * padding < k or w + 2 * padding < k:
        return
    x = np.zeros((1, 1, h, w))
    wgt = np.zeros((1, 1, k, k))
    out = F.conv2d(Tensor(x), Tensor(wgt), stride=stride, padding=padding)
    assert out.shape[2] == F.conv_output_size(h, k, stride, padding)
    assert out.shape[3] == F.conv_output_size(w, k, stride, padding)


@given(st.integers(2, 6), st.integers(2, 6))
@settings(max_examples=20, deadline=None)
def test_im2col_col2im_adjoint(kh_extent, seed):
    """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 2, kh_extent + 3, kh_extent + 3))
    kernel, stride, padding = (3, 3), (1, 1), (1, 1)
    cols, out_hw = F.im2col(x, kernel, stride, padding)
    y = rng.standard_normal(cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * F.col2im(y, x.shape, kernel, stride, padding, out_hw)))
    assert lhs == pytest.approx(rhs, rel=1e-9)
