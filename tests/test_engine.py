"""Tests for the execution engine: backends, grad modes, and the tape.

Covers the three tentpole pieces of the engine refactor:

* the pluggable :class:`~repro.nn.backend.Backend` registry and the
  dtype threading (``use_backend`` / ``CompressionSpec.dtype``),
* the grad-mode switch (``no_grad`` / ``enable_grad`` + eval-mode
  modules running tape-free),
* the recorded-op tape (registered ops, profiling hooks, and the
  regression guarantee that inference paths allocate zero tape nodes).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.api as api
from repro import nn
from repro.core.trainer import ClassifierTrainer, evaluate_accuracy
from repro.data import DataLoader, make_synthetic_dataset
from repro.models import lenet
from repro.nn import functional as F
from repro.nn.backend import (
    NumpyBackend,
    available_backends,
    current_backend,
    get_backend,
    get_default_dtype,
    register_backend,
    use_backend,
)
from repro.nn.tensor import (
    Tensor,
    enable_grad,
    is_grad_enabled,
    no_grad,
    profile_ops,
    registered_ops,
    tape_nodes_created,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def dataset():
    return make_synthetic_dataset(128, num_classes=4, image_shape=(1, 12, 12), seed=3)


def tape_delta(fn):
    """Tape nodes allocated while running ``fn()``."""
    before = tape_nodes_created()
    fn()
    return tape_nodes_created() - before


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "numpy" in names and "numpy32" in names and "numpy64" in names

    def test_numpy32_defaults_to_float32(self):
        assert get_backend("numpy32").default_dtype == np.float32
        assert get_backend("numpy64").default_dtype == np.float64

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("tpu-v7")

    def test_use_backend_scopes_default_dtype(self):
        outer = get_default_dtype()
        with use_backend("numpy32"):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).dtype == np.float32
        assert get_default_dtype() == outer

    def test_dtype_only_override(self):
        with use_backend(dtype="float32"):
            assert current_backend().default_dtype == np.float32
            assert nn.zeros((3,)).dtype == np.float32

    def test_custom_backend_plugs_in_by_name(self):
        class TracingBackend(NumpyBackend):
            name = "tracing"
            einsum_calls = 0

            def einsum(self, subscripts, *operands):
                TracingBackend.einsum_calls += 1
                return super().einsum(subscripts, *operands)

        register_backend("tracing-test", TracingBackend, overwrite=True)
        with use_backend("tracing-test"):
            x = Tensor(np.random.default_rng(0).standard_normal((1, 2, 5, 5)))
            w = Tensor(np.random.default_rng(1).standard_normal((3, 2, 3, 3)))
            F.conv2d(x, w)
        assert TracingBackend.einsum_calls >= 1

    def test_models_built_under_float32_backend_are_float32(self, rng):
        with use_backend("numpy32"):
            model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        assert all(p.dtype == np.float32 for p in model.parameters())
        for _, buf in model.named_buffers():
            assert buf.dtype == np.float32

    def test_loader_emits_backend_dtype(self, dataset):
        loader = DataLoader(dataset, batch_size=16)
        with use_backend("numpy32"):
            images, _ = next(iter(loader))
            assert images.dtype == np.float32
        images, _ = next(iter(loader))
        assert images.dtype == get_default_dtype()


class TestGradModes:
    def test_no_grad_skips_tape(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with no_grad():
            delta = tape_delta(lambda: ((a * 2.0) + 1.0).sum())
        assert delta == 0

    def test_no_grad_output_does_not_require_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 3.0
        assert not out.requires_grad
        with pytest.raises(RuntimeError):
            out.sum().backward()

    def test_enable_grad_restores_inside_no_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
                out = (a * 2.0).sum()
        out.backward()
        assert np.allclose(a.grad, 2.0)

    def test_grad_mode_nesting_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_decorator_form(self):
        @no_grad()
        def inference(x):
            return (x * 2.0).sum()

        a = Tensor(np.ones(3), requires_grad=True)
        assert not inference(a).requires_grad

    def test_eval_module_forward_is_tape_free(self, rng):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        x = Tensor(rng.standard_normal((2, 1, 12, 12)))
        model.eval()
        assert tape_delta(lambda: model(x)) == 0

    def test_train_module_forward_records_tape(self, rng):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        x = Tensor(rng.standard_normal((2, 1, 12, 12)))
        model.train()
        assert tape_delta(lambda: model(x)) > 0

    def test_eval_module_honors_explicit_enable_grad(self, rng):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        x = Tensor(rng.standard_normal((2, 1, 12, 12)), requires_grad=True)
        model.eval()
        with enable_grad():
            out = model(x).sum()
        out.backward()
        assert x.grad is not None

    def test_frozen_submodule_does_not_detach_training_graph(self, rng):
        # A frozen (eval-mode) layer inside a training model must stay on
        # the tape: gradients have to reach the layers upstream of it.
        conv = nn.Conv2d(1, 2, 3, rng=rng)
        bn = nn.BatchNorm2d(2)
        head = nn.Sequential(nn.Flatten(), nn.Linear(2 * 8 * 8, 2, rng=rng))
        model = nn.Sequential(conv, bn, head)
        model.train()
        bn.eval()  # e.g. frozen running statistics
        out = model(Tensor(rng.standard_normal((2, 1, 10, 10)))).sum()
        out.backward()
        assert conv.weight.grad is not None
        assert np.any(conv.weight.grad != 0)

    def test_set_default_dtype_does_not_corrupt_registry_cache(self):
        from repro.nn.backend import set_backend
        previous = current_backend()
        try:
            set_backend("numpy32")
            nn.set_default_dtype("float64")
            assert get_default_dtype() == np.float64
            # The cached registry instance must be untouched.
            assert get_backend("numpy32").default_dtype == np.float32
        finally:
            set_backend(previous)

    def test_conv2d_bias_grad_keeps_bias_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((1, 3, 1, 1)), requires_grad=True)
        F.conv2d(x, w, b).sum().backward()
        assert b.grad.shape == (1, 3, 1, 1)

    def test_backward_still_works_after_eval_roundtrip(self, rng):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        x = Tensor(rng.standard_normal((2, 1, 12, 12)))
        model.eval()
        model(x)
        model.train()
        out = model(x).sum()
        out.backward()
        assert all(p.grad is not None for p in model.parameters())


class TestInferenceIsTapeFree:
    """Regression tests for the no-tape guarantee on every accuracy probe."""

    def test_trainer_evaluate_allocates_no_tape_nodes(self, rng, dataset):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        trainer = ClassifierTrainer(model, lr=0.05)
        loader = DataLoader(dataset, batch_size=32)
        assert tape_delta(lambda: trainer.evaluate(loader)) == 0

    def test_evaluate_accuracy_allocates_no_tape_nodes(self, rng, dataset):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        loader = DataLoader(dataset, batch_size=32)
        assert tape_delta(lambda: evaluate_accuracy(model, loader)) == 0

    def test_evaluate_restores_training_mode(self, rng, dataset):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        loader = DataLoader(dataset, batch_size=64)
        model.train()
        evaluate_accuracy(model, loader)
        assert model.training

    def test_pipeline_accuracy_probe_allocates_no_tape_nodes(self, dataset):
        # epochs=0 exercises the dense profile and both accuracy probes of
        # the pipeline without any training: nothing may touch the tape.
        delta = tape_delta(lambda: api.compress(
            "lenet", method="magnitude", data=dataset, hardware=None, epochs=0))
        assert delta == 0


class TestFloat32Parity:
    """float32 end-to-end compress() stays within tolerance of float64."""

    @pytest.mark.parametrize("method", ["alf", "magnitude"])
    def test_compress_accuracy_parity(self, method, dataset):
        reports = {
            dtype: api.compress("lenet", method=method, data=dataset,
                                hardware=None, epochs=1, seed=0, dtype=dtype)
            for dtype in ("float64", "float32")
        }
        acc64 = reports["float64"].accuracy
        acc32 = reports["float32"].accuracy
        assert all(p.dtype == np.float32
                   for p in reports["float32"].model.parameters())
        # One epoch on the small synthetic task: the fast path must report
        # an accuracy within a few points of the float64 reference.
        assert abs(acc64 - acc32) <= 0.08
        # The cost accounting is dtype-independent.
        assert reports["float32"].cost == reports["float64"].cost

    def test_sweep_dtype_override(self, dataset):
        specs = [api.CompressionSpec(method="magnitude"),
                 api.CompressionSpec(method="lowrank")]
        result = api.run_sweep(specs, model="lenet", input_shape=(1, 12, 12),
                               data=dataset, hardware=None, dtype="float32")
        for report in result.reports:
            assert all(p.dtype == np.float32 for p in report.model.parameters())

    def test_sweep_rejects_mixed_dtypes(self):
        specs = [api.CompressionSpec(method="magnitude", dtype="float32"),
                 api.CompressionSpec(method="lowrank", dtype="float64")]
        with pytest.raises(ValueError):
            api.run_sweep(specs, model="lenet", input_shape=(1, 12, 12))


class TestTapeIntrospection:
    def test_core_ops_are_registered(self):
        ops = registered_ops()
        for name in ("add", "mul", "matmul", "conv2d", "max_pool2d",
                     "avg_pool2d", "ste_bridge", "clip_mask"):
            assert name in ops

    def test_profile_ops_counts_conv(self, rng):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        x = Tensor(rng.standard_normal((2, 1, 12, 12)))
        with profile_ops() as stats:
            model(x)
        assert stats["conv2d"][0] >= 2
        assert stats["conv2d"][1] >= 0.0

    def test_spec_validates_dtype_and_backend(self):
        with pytest.raises(ValueError):
            api.CompressionSpec(method="magnitude", dtype="int32").validate()
        with pytest.raises(KeyError):
            api.CompressionSpec(method="magnitude", backend="nope").validate()
