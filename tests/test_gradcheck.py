"""Finite-difference gradient checks across the ``nn.functional`` ops.

Every registered functional op (conv2d, the pools, batch_norm,
softmax/log_softmax, dropout in eval) is verified against central finite
differences in **both float32 and float64**, exercising the tape engine's
registered backward rules in the dtype of the fast path as well as the
reference dtype.

The numeric gradient is always accumulated in float64 (perturbing a
float32 input but reading the loss in full precision) so the check
measures the analytic rule's correctness, not float32 round-off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor, enable_grad

#: (eps, atol, rtol) per dtype: float32 needs a coarser step and looser
#: tolerances because the forward itself rounds to ~1e-7.
TOLERANCES = {
    np.float64: (1e-6, 1e-7, 1e-5),
    np.float32: (1e-3, 2e-3, 2e-2),
}


def gradcheck(fn, *arrays, dtype=np.float64, seed=0):
    """Check the analytic gradient of ``fn`` w.r.t. every input array.

    ``fn`` maps Tensors to one output Tensor of any shape; the output is
    reduced to a scalar with a fixed random weighting so every output
    element contributes to the check.  Raises ``AssertionError`` with a
    diagnostic on mismatch; returns ``True`` otherwise.
    """
    dtype = np.dtype(dtype)
    eps, atol, rtol = TOLERANCES[dtype.type]
    arrays = [np.asarray(a, dtype=dtype) for a in arrays]
    weights = np.random.default_rng(seed).standard_normal(
        fn(*[Tensor(a) for a in arrays]).shape)

    def scalar(values) -> float:
        out = fn(*[Tensor(v) for v in values])
        return float(np.sum(out.data.astype(np.float64) * weights))

    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*tensors)
    (out * Tensor(weights.astype(dtype))).sum().backward()

    for index, (tensor, base) in enumerate(zip(tensors, arrays)):
        assert tensor.grad is not None, f"input {index} received no gradient"
        analytic = tensor.grad.astype(np.float64)
        numeric = np.zeros(base.shape, dtype=np.float64)
        flat = base.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            upper = scalar(arrays)
            flat[i] = original - eps
            lower = scalar(arrays)
            flat[i] = original
            num_flat[i] = (upper - lower) / (2.0 * eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index} ({dtype}): "
                f"max abs error {max_err:.3e}")
    return True


@pytest.fixture(params=[np.float64, np.float32], ids=["float64", "float32"])
def dtype(request):
    return request.param


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestFunctionalGradcheck:
    def test_conv2d(self, dtype, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3)) * 0.5
        b = rng.standard_normal(4)
        gradcheck(lambda x_, w_, b_: F.conv2d(x_, w_, b_, stride=2, padding=1),
                  x, w, b, dtype=dtype)

    def test_conv2d_no_bias(self, dtype, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3)) * 0.5
        gradcheck(lambda x_, w_: F.conv2d(x_, w_, stride=1, padding=0),
                  x, w, dtype=dtype)

    def test_max_pool2d(self, dtype, rng):
        # A distinct-valued input avoids window ties, where the subgradient
        # choice (split between ties) legitimately differs from the
        # one-sided numeric estimate.
        x = rng.permutation(2 * 3 * 16).reshape(2, 3, 4, 4) * 0.1
        gradcheck(lambda x_: F.max_pool2d(x_, 2), x, dtype=dtype)

    def test_avg_pool2d(self, dtype, rng):
        x = rng.standard_normal((2, 2, 6, 6))
        gradcheck(lambda x_: F.avg_pool2d(x_, 3, stride=3), x, dtype=dtype)

    def test_global_avg_pool2d(self, dtype, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        gradcheck(F.global_avg_pool2d, x, dtype=dtype)

    def test_linear(self, dtype, rng):
        x = rng.standard_normal((4, 5))
        w = rng.standard_normal((3, 5))
        b = rng.standard_normal(3)
        gradcheck(F.linear, x, w, b, dtype=dtype)

    def test_batch_norm_training(self, dtype, rng):
        x = rng.standard_normal((4, 3, 2, 2)) * 2.0
        gamma = rng.standard_normal(3) * 0.5 + 1.0
        beta = rng.standard_normal(3)

        def fn(x_, g_, b_):
            running_mean = np.zeros(3, dtype=dtype)
            running_var = np.ones(3, dtype=dtype)
            return F.batch_norm(x_, g_, b_, running_mean, running_var,
                                training=True)

        gradcheck(fn, x, gamma, beta, dtype=dtype)

    def test_batch_norm_eval(self, dtype, rng):
        x = rng.standard_normal((4, 3))
        gamma = np.ones(3)
        beta = np.zeros(3)
        running_mean = rng.standard_normal(3).astype(dtype)
        running_var = (rng.random(3) + 0.5).astype(dtype)

        def fn(x_, g_, b_):
            return F.batch_norm(x_, g_, b_, running_mean, running_var,
                                training=False)

        gradcheck(fn, x, gamma, beta, dtype=dtype)

    def test_softmax(self, dtype, rng):
        x = rng.standard_normal((3, 5))
        gradcheck(lambda x_: F.softmax(x_, axis=1), x, dtype=dtype)

    def test_log_softmax(self, dtype, rng):
        x = rng.standard_normal((3, 5))
        gradcheck(lambda x_: F.log_softmax(x_, axis=1), x, dtype=dtype)

    def test_dropout_eval_is_identity_gradient(self, dtype, rng):
        # With an explicit enable_grad, gradients flow through the
        # eval-mode (identity) dropout path even inside no-grad contexts.
        x = rng.standard_normal((4, 4))
        with enable_grad():
            gradcheck(lambda x_: F.dropout(x_, p=0.5, training=False),
                      x, dtype=dtype)

    def test_relu_away_from_kink(self, dtype, rng):
        x = rng.standard_normal((5, 5))
        x = np.where(np.abs(x) < 0.1, 0.5, x)  # keep clear of the kink
        gradcheck(F.relu, x, dtype=dtype)
