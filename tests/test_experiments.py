"""Tests for the experiment harnesses (one per paper table / figure)."""

import numpy as np
import pytest

from repro.experiments import (
    SCALES,
    ablations,
    cifar_comparison,
    config_space,
    get_scale,
    hardware_breakdown,
    imagenet_comparison,
    method_taxonomy,
    paper_values,
)
from repro.metrics import pareto_front


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"ci", "small", "paper"}
        assert get_scale("paper").image_size == 32
        assert get_scale("paper").train_samples == 50_000

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_proxy_builders(self):
        preset = get_scale("ci")
        plain = preset.build_proxy("plain", rng=np.random.default_rng(0))
        resnet = preset.build_proxy("resnet", rng=np.random.default_rng(0))
        assert plain.depth == 8 and resnet.depth == 8
        with pytest.raises(KeyError):
            preset.build_proxy("vgg")

    def test_loaders_shapes(self):
        preset = get_scale("ci")
        train_loader, test_loader = preset.build_loaders(seed=0)
        images, labels = next(iter(train_loader))
        assert images.shape[1:] == (3, preset.image_size, preset.image_size)
        assert labels.max() < preset.num_classes


class TestTable1Taxonomy:
    def test_derived_matches_paper(self):
        assert method_taxonomy.taxonomy_matches_paper()

    def test_alf_has_all_three_advantages(self):
        rows = {r.method: r for r in method_taxonomy.derived_taxonomy()}
        alf = rows["ALF"]
        assert alf.no_pretrained and alf.learning_policy and alf.no_exploration

    def test_rule_based_methods_have_none(self):
        rows = {r.method: r for r in method_taxonomy.derived_taxonomy()}
        for name in ("Low-Rank Decomposition", "Prune (Handcrafted)"):
            row = rows[name]
            assert not (row.no_pretrained or row.learning_policy or row.no_exploration)

    def test_render_contains_all_methods(self):
        text = method_taxonomy.render()
        for method in paper_values.TABLE1_TAXONOMY:
            assert method in text


class TestTable2Cifar:
    def test_cost_columns_match_paper(self):
        result = cifar_comparison.run(measure_accuracy=False)
        resnet = result.by_method("ResNet-20")
        assert resnet.params / 1e6 == pytest.approx(0.27, abs=0.01)
        assert resnet.ops / 1e6 == pytest.approx(81.1, rel=0.05)
        alf = result.by_method("ALF")
        # Headline claims: ~70% fewer parameters, ~61% fewer operations.
        reductions = cifar_comparison.headline_reductions(result)
        assert reductions["params_reduction"] == pytest.approx(0.70, abs=0.08)
        assert reductions["ops_reduction"] == pytest.approx(0.61, abs=0.10)

    def test_alf_has_fewest_params_and_ops(self):
        result = cifar_comparison.run(measure_accuracy=False)
        alf = result.by_method("ALF")
        for method in ("Plain-20", "ResNet-20", "AMC", "FPGM"):
            row = result.by_method(method)
            assert alf.ops <= row.ops
            assert alf.params <= (row.params if row.params is not None else np.inf)

    def test_render_includes_paper_reference_columns(self):
        result = cifar_comparison.run(measure_accuracy=False)
        text = result.render()
        assert "Paper OPs" in text and "ALF" in text

    def test_alf_cost_tracks_remaining_fraction(self):
        sparse = cifar_comparison.alf_compressed_cost(remaining_fraction=0.2)
        dense = cifar_comparison.alf_compressed_cost(remaining_fraction=0.8)
        assert sparse["ops"] < dense["ops"]
        assert sparse["params"] < dense["params"]

    @pytest.mark.slow
    def test_accuracy_measurement_orders_methods(self):
        measurements = cifar_comparison.measure_accuracies(scale="ci", seed=0)
        # The uncompressed baseline should not be (meaningfully) worse than ALF
        # at this tiny proxy scale.
        assert measurements.resnet >= measurements.alf - 5.0
        assert 0.0 <= measurements.alf <= 100.0
        assert 0.0 < measurements.alf_remaining_filters <= 1.0


class TestTable3ImageNet:
    @pytest.fixture(scope="class")
    def table3(self):
        return imagenet_comparison.run(seed=0)

    @pytest.mark.slow
    def test_reference_architecture_costs(self, table3):
        resnet = table3.by_method("ResNet-18")
        assert resnet.params / 1e6 == pytest.approx(11.83, rel=0.05)
        assert resnet.ops / 1e6 == pytest.approx(3743, rel=0.05)
        squeeze = table3.by_method("SqueezeNet")
        assert squeeze.params / 1e6 == pytest.approx(1.23, rel=0.05)

    @pytest.mark.slow
    def test_alf_relative_ops_factors(self, table3):
        factors = imagenet_comparison.relative_ops_factors(table3)
        # Paper: x1.4 / x2.4 / x3.0 fewer OPs than SqueezeNet / GoogLeNet / ResNet-18.
        assert factors["vs_squeezenet"] == pytest.approx(1.4, abs=0.4)
        assert factors["vs_googlenet"] == pytest.approx(2.4, abs=0.6)
        assert factors["vs_resnet18"] == pytest.approx(3.0, abs=0.7)

    @pytest.mark.slow
    def test_alf_on_pareto_front(self, table3):
        front = {r.method for r in pareto_front(table3.method_results())}
        assert "ALF" in front

    @pytest.mark.slow
    def test_pruned_variants_cheaper_than_resnet18(self, table3):
        base_ops = table3.by_method("ResNet-18").ops
        for method in ("LCNN", "FPGM", "AMC", "ALF"):
            assert table3.by_method(method).ops < base_ops


class TestFig3Hardware:
    @pytest.fixture(scope="class")
    def fig3(self):
        return hardware_breakdown.run(architecture="plain20", batch=16)

    def test_headline_energy_and_latency_reductions(self, fig3):
        summary = hardware_breakdown.summary_vs_paper(fig3)
        assert summary["measured_energy_reduction"] == pytest.approx(
            summary["paper_energy_reduction"], abs=0.10)
        assert summary["measured_latency_reduction"] == pytest.approx(
            summary["paper_latency_reduction"], abs=0.10)

    def test_rows_cover_all_19_convolutions(self, fig3):
        from repro.models.plain import plain_layer_names
        assert [r.name for r in fig3.rows] == plain_layer_names()

    def test_rf_energy_dominates_deeper_layers(self, fig3):
        deep = [r for r in fig3.rows if r.name.startswith("CONV4")]
        for row in deep:
            assert row.vanilla_register_file > row.vanilla_dram

    def test_dram_energy_increases_in_early_alf_layers(self, fig3):
        """The expansion layer adds off-chip traffic, most visible early on."""
        early = [r for r in fig3.rows if r.name.startswith("CONV2")]
        assert any(r.alf_dram > r.vanilla_dram for r in early)

    def test_alf_total_energy_lower(self, fig3):
        total_vanilla = sum(r.vanilla_total_energy for r in fig3.rows)
        total_alf = sum(r.alf_total_energy for r in fig3.rows)
        assert total_alf < total_vanilla

    def test_per_layer_fraction_override(self):
        result = hardware_breakdown.run(
            architecture="plain20", batch=4,
            per_layer_fractions={"CONV312": 0.05})
        row = [r for r in result.rows if r.name == "CONV312"][0]
        # An extremely pruned layer loses parallelism; it should not be much
        # faster than vanilla, and can be slower (the paper's anomaly).
        assert row.alf_latency >= 0.5 * row.vanilla_latency

    def test_resnet20_variant_runs(self):
        result = hardware_breakdown.run(architecture="resnet20", batch=2)
        assert result.energy_reduction > 0

    def test_render(self, fig3):
        text = fig3.render()
        assert "CONV312" in text


class TestFig2ConfigSpace:
    def test_fig2a_config_list_matches_paper_axes(self):
        labels = [c[0] for c in config_space.FIG2A_CONFIGS]
        assert "xavier|nc|nc" in labels and "he|relu|bn" in labels
        assert len(labels) == 6

    def test_fig2b_config_list_matches_paper_axes(self):
        labels = [c[0] for c in config_space.FIG2B_CONFIGS]
        assert len(labels) == 9
        assert "xavier|tanh" in labels and "rand|relu" in labels

    def test_fig2c_variants_match_paper(self):
        labels = [v[0] for v in config_space.FIG2C_VARIANTS]
        assert len(labels) == 5
        assert "lr=1e-3,t=1e-4" in labels

    @pytest.mark.slow
    def test_fig2a_runs_and_reports(self):
        results = config_space.run_fig2a(scale="ci", seeds=(0,), epochs=2)
        assert len(results) == 6
        assert all(0.0 <= r.mean_accuracy <= 1.0 for r in results)
        text = config_space.render_config_results(results, "Fig. 2a")
        assert "xavier|nc|nc" in text

    @pytest.mark.slow
    def test_fig2c_threshold_ordering(self):
        curves = config_space.run_fig2c(scale="ci", seed=0)
        by_label = {c.label: c for c in curves}
        # Larger clipping threshold prunes at least as aggressively.
        assert (by_label["lr=1e-3,t=5e-4"].final_remaining_percent
                <= by_label["lr=1e-3,t=5e-5"].final_remaining_percent + 1e-9)
        # A slower autoencoder optimizer prunes less.
        assert (by_label["lr=1e-5,t=1e-4"].final_remaining_percent
                >= by_label["lr=1e-3,t=1e-4"].final_remaining_percent - 1e-9)


class TestAblations:
    def test_ccode_max_sweep(self):
        points = ablations.sweep_ccode_max(channel_counts=(16, 64), kernel_sizes=(1, 3))
        assert len(points) == 4
        for point in points:
            ratio = ablations.alf_block_cost_ratio(
                point.in_channels, point.out_channels, point.kernel_size, point.bound)
            assert ratio <= 1.0 + 1e-9
        text = ablations.render_ccode_max(points)
        assert "Ccode,max" in text

    def test_bound_fraction_grows_with_kernel(self):
        points = ablations.sweep_ccode_max(channel_counts=(64,), kernel_sizes=(1, 3, 5))
        fractions = [p.bound_fraction for p in points]
        assert fractions == sorted(fractions)

    def test_schedule_curve_monotone(self):
        curve = ablations.schedule_curve()
        values = [v for _, v in curve]
        assert values[0] > 0.9
        assert values[-1] == 0.0
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @pytest.mark.slow
    def test_ste_ablation_runs(self):
        runs = ablations.run_ste_ablation(scale="ci", epochs=3)
        assert len(runs) == 2
        assert {r.label for r in runs} == {"STE (paper)", "no STE (naive gradient)"}
        text = ablations.render_ablation(runs, "STE ablation")
        assert "STE" in text

    @pytest.mark.slow
    def test_schedule_ablation_constant_prunes_at_least_as_much(self):
        runs = ablations.run_schedule_ablation(scale="ci", epochs=4)
        by_label = {r.label: r for r in runs}
        scheduled = by_label["nu_prune schedule (paper)"]
        constant = by_label["constant regularization"]
        assert constant.remaining_filters <= scheduled.remaining_filters + 0.15


class TestPaperValues:
    def test_headline_claims_present(self):
        claims = paper_values.HEADLINE_CLAIMS
        assert claims["params_reduction"] == 0.70
        assert claims["ops_reduction"] == 0.61
        assert claims["latency_reduction"] == 0.41
        assert claims["energy_reduction"] == 0.29

    def test_tables_contain_alf_rows(self):
        assert "ALF" in paper_values.TABLE2_CIFAR
        assert "ALF" in paper_values.TABLE3_IMAGENET
        assert paper_values.TABLE2_CIFAR["ALF"]["params_m"] == 0.07
