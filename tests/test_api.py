"""Tests for the unified ``repro.api`` compression pipeline."""

import numpy as np
import pytest

import repro.api as api
from repro.core import ALFConfig
from repro.data import DataLoader, make_synthetic_dataset

INPUT_SHAPE = (1, 10, 10)

#: Fast operating points for the end-to-end smoke tests (methods not listed
#: use their registered defaults).
FAST_CONFIGS = {
    "alf": api.ALFSpec(alf=ALFConfig(lr_task=0.05, threshold=5e-2,
                                     lr_autoencoder=5e-2, pr_max=0.6,
                                     mask_init=0.2)),
    "amc": api.AMCSpec(target_ops_fraction=0.6, iterations=1, population=2),
    "lcnn": api.LCNNSpec(dictionary_fraction=0.5, sparsity=2,
                         kmeans_iterations=3),
}


class TestRegistry:
    def test_all_six_methods_registered(self):
        assert api.available_methods() == [
            "alf", "amc", "fpgm", "lcnn", "lowrank", "magnitude"]

    @pytest.mark.parametrize("name", ["alf", "magnitude", "fpgm", "amc",
                                      "lcnn", "lowrank"])
    def test_resolution_by_name(self, name):
        entry = api.get_method(name)
        assert entry.name == name
        assert entry.policy in ("Automatic", "Handcrafted", "RL-Agent")
        assert entry.config_type is not None

    def test_aliases_resolve(self):
        assert api.canonical_name("Low-Rank") == "lowrank"
        assert api.canonical_name("svd") == "lowrank"
        assert api.get_method("low_rank").name == "lowrank"

    def test_unknown_method_lists_alternatives(self):
        with pytest.raises(KeyError, match="alf"):
            api.get_method("deep-compression")

    def test_spec_rejects_mismatched_config(self):
        spec = api.CompressionSpec(method="fpgm", config=api.LCNNSpec())
        with pytest.raises(TypeError):
            spec.validate()

    def test_config_defaults_resolved_per_method(self):
        spec = api.CompressionSpec(method="magnitude")
        assert isinstance(spec.resolved_config(), api.MagnitudeSpec)

    def test_alf_spec_rejects_out_of_range_forced_fractions(self):
        with pytest.raises(ValueError):
            api.ALFSpec(remaining_fraction=1.5).validate()
        with pytest.raises(ValueError):
            api.ALFSpec(stage_remaining={64: 1.5}).validate()
        with pytest.raises(ValueError):
            api.ALFSpec(layer_fractions={"CONV312": 0.0}).validate()
        api.ALFSpec(stage_remaining={64: 1.0}, layer_fractions={"CONV312": 0.5}).validate()


class TestProtocolConformance:
    @pytest.mark.parametrize("name", ["alf", "magnitude", "fpgm", "amc",
                                      "lcnn", "lowrank"])
    def test_adapter_implements_protocol(self, name):
        spec = api.CompressionSpec(method=name, input_shape=INPUT_SHAPE)
        adapter = api.create_method(spec)
        assert isinstance(adapter, api.CompressionMethod)
        assert adapter.name == name
        assert adapter.policy == api.get_method(name).policy

    @pytest.mark.parametrize("name", ["magnitude", "fpgm", "lcnn", "lowrank"])
    def test_prepare_finalize_without_training(self, name, tiny_model):
        spec = api.CompressionSpec(method=name, input_shape=INPUT_SHAPE,
                                   hardware_batch=1)
        adapter = api.create_method(spec)
        adapter.prepare(tiny_model)
        compressed = adapter.finalize()
        assert isinstance(compressed, api.CompressedModel)
        assert compressed.method == name
        assert compressed.cost["params"] > 0
        assert compressed.cost["ops"] > 0
        assert compressed.layer_shapes, "hardware workloads must be produced"

    def test_finalize_requires_prepare(self):
        spec = api.CompressionSpec(method="magnitude", input_shape=INPUT_SHAPE)
        adapter = api.create_method(spec)
        with pytest.raises(RuntimeError):
            adapter.finalize()


class TestCompressEndToEnd:
    @pytest.mark.parametrize("method", ["alf", "magnitude", "fpgm", "amc",
                                        "lcnn", "lowrank"])
    def test_compress_smoke(self, method, tiny_model, tiny_loaders):
        report = api.compress(
            tiny_model, method=method, config=FAST_CONFIGS.get(method),
            data=tiny_loaders, input_shape=INPUT_SHAPE, epochs=1,
            hardware_batch=1, seed=0,
        )
        assert isinstance(report, api.CompressionReport)
        assert report.method == method
        # Cost block: params / OPs for both executions plus the reductions.
        assert report.dense.cost["params"] > 0 and report.dense.cost["ops"] > 0
        assert report.cost["params"] > 0 and report.cost["ops"] > 0
        assert np.isfinite(report.params_reduction)
        assert np.isfinite(report.ops_reduction)
        # Hardware block: Eyeriss energy and latency of both executions.
        assert report.dense_hardware is not None
        assert report.compressed_hardware is not None
        assert report.compressed_hardware.total_energy > 0
        assert report.compressed_hardware.total_latency > 0
        assert np.isfinite(report.energy_reduction)
        assert np.isfinite(report.latency_reduction)
        # Accuracy measured on the returned runnable model.
        assert 0.0 <= report.accuracy <= 1.0
        summary = report.summary()
        for key in ("params_reduction", "ops_reduction", "energy_reduction",
                    "latency_reduction", "accuracy"):
            assert key in summary

    def test_finetuned_pruned_model_stays_pruned(self, tiny_model, tiny_loaders):
        """Regression: fine-tuning must not regrow the zeroed filters."""
        report = api.compress(
            tiny_model, method="magnitude",
            config=api.MagnitudeSpec(prune_ratio=0.5),
            data=tiny_loaders, input_shape=INPUT_SHAPE, epochs=2,
            hardware=None)
        plan = report.compressed.detail
        modules = dict(report.model.named_modules())
        for decision in plan.decisions:
            conv = modules[decision.name]
            keep = np.zeros(decision.total_filters, dtype=bool)
            keep[decision.kept_filters] = True
            assert np.abs(conv.weight.data[~keep]).sum() == 0.0, (
                f"pruned filters of {decision.name} regrew during fine-tuning")

    def test_pruning_actually_reduces_cost(self, tiny_model):
        report = api.compress(tiny_model, method="magnitude",
                              config=api.MagnitudeSpec(prune_ratio=0.5),
                              input_shape=INPUT_SHAPE, hardware=None)
        assert report.cost["params"] < report.dense.cost["params"]
        assert report.cost["ops"] < report.dense.cost["ops"]
        assert report.remaining_filter_fraction == pytest.approx(0.5, abs=0.1)

    def test_caller_model_is_not_mutated_by_default(self, tiny_model):
        before = tiny_model.conv1.weight.data.copy()
        api.compress(tiny_model, method="magnitude", input_shape=INPUT_SHAPE,
                     hardware=None)
        np.testing.assert_array_equal(tiny_model.conv1.weight.data, before)

    def test_registry_name_builds_model(self):
        report = api.compress("lenet", method="lowrank", hardware=None)
        assert report.cost["params"] > 0

    def test_dense_profile_carried_in_report(self, tiny_model):
        """The report ships the dense baseline profile (no rebuilding)."""
        report = api.compress(tiny_model, method="fpgm",
                              input_shape=INPUT_SHAPE, hardware=None,
                              conv_only=False)
        profile = report.dense_profile
        assert profile.total_params() == report.dense.cost["params"]
        assert profile.total_ops() == report.dense.cost["ops"]

    def test_alf_report_exposes_deployment_records(self, tiny_model):
        report = api.compress(
            tiny_model, method="alf",
            config=api.ALFSpec(remaining_fraction=0.5),
            input_shape=INPUT_SHAPE, hardware=None)
        records = report.compressed.detail.records
        assert records and all(r.kept_filters <= r.original_filters
                               for r in records)
        assert report.remaining_filter_fraction == pytest.approx(0.5, abs=0.1)

    def test_render_mentions_method(self, tiny_model):
        report = api.compress(tiny_model, method="fpgm",
                              input_shape=INPUT_SHAPE, hardware=None)
        assert "fpgm" in report.render()


class TestRunSweep:
    def test_table2_specs_cover_the_method_set(self):
        methods = [spec.method for spec in api.table2_specs()]
        assert sorted(methods) == api.available_methods()

    def test_sweep_runs_all_methods_with_shared_baseline(self, rng):
        from repro.models import lenet
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        specs = [api.CompressionSpec(method=m, config=FAST_CONFIGS.get(m))
                 for m in api.available_methods()]
        sweep = api.run_sweep(specs, model=model, hardware=None,
                              input_shape=INPUT_SHAPE)
        assert sweep.methods() == api.available_methods()
        # The dense baseline is computed once and shared by every report.
        assert all(report.dense is sweep.dense for report in sweep.reports)
        table = sweep.comparison_table()
        assert {row.method for row in table.rows} == set(api.available_methods())
        rendered = sweep.render()
        for method in api.available_methods():
            assert method in rendered

    def test_sweep_with_data_measures_accuracy(self, rng):
        from repro.models import lenet
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        dataset = make_synthetic_dataset(80, num_classes=4,
                                         image_shape=INPUT_SHAPE, seed=0)
        specs = [api.CompressionSpec(method="magnitude", epochs=1)]
        sweep = api.run_sweep(specs, model=model, data=dataset,
                              hardware=None, input_shape=INPUT_SHAPE)
        report = sweep.by_method("magnitude")
        assert report.accuracy is not None
        assert sweep.dense.accuracy is not None

    def test_sweep_rejects_empty_specs(self):
        with pytest.raises(ValueError):
            api.run_sweep([], model="lenet")

    def test_sweep_rejects_mismatched_accounting_conventions(self):
        """The dense baseline is shared, so conventions must be uniform."""
        specs = [api.CompressionSpec(method="magnitude", conv_only=False),
                 api.CompressionSpec(method="fpgm")]
        with pytest.raises(ValueError, match="dense baseline"):
            api.run_sweep(specs, model="lenet")

    def test_sweep_trains_the_dense_accuracy_probe(self, rng):
        """With training requested, the dense row is trained too (on a copy)."""
        from repro.models import lenet
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        before = model.conv1.weight.data.copy()
        dataset = make_synthetic_dataset(80, num_classes=4,
                                         image_shape=INPUT_SHAPE, seed=0)
        sweep = api.run_sweep(
            [api.CompressionSpec(method="magnitude", epochs=2)],
            model=model, data=dataset, hardware=None, input_shape=INPUT_SHAPE)
        assert sweep.dense.accuracy is not None
        np.testing.assert_array_equal(model.conv1.weight.data, before)


class TestFormatting:
    def test_format_reduction_handles_growth(self):
        from repro.metrics import format_reduction
        assert format_reduction(0.61) == "-61%"
        assert format_reduction(-0.23) == "+23%"
        assert format_reduction(None) == "-"


class TestBackwardCompatibility:
    def test_core_and_baseline_reexports_resolve(self):
        from repro.core import ALFMethod, ALFSpec  # noqa: F401
        from repro.baselines import (  # noqa: F401
            AMCMethod, FPGMMethod, LCNNMethod, LowRankMethod, MagnitudeMethod,
            MagnitudeSpec,
        )
        assert ALFMethod is api.ALFMethod
        assert MagnitudeSpec is api.MagnitudeSpec

    def test_top_level_facade_reexports(self):
        import repro
        assert repro.compress is api.compress
        assert repro.run_sweep is api.run_sweep

    def test_legacy_imports_still_work(self):
        from repro.core import ALFConfig, ALFTrainer, compress_model, convert_to_alf  # noqa: F401
        from repro.baselines import AMCPruner, FPGMPruner, LCNNCompressor  # noqa: F401
        from repro.baselines import LowRankDecomposer, MagnitudePruner  # noqa: F401
