"""Determinism / isolation / failure-path tests for sharded ``run_sweep()``.

A parallel sweep runner is only trustworthy if (a) every executor strategy
produces the *same* :class:`SweepResult` as the serial reference, (b) no
shard leaks backend / dtype / grad-mode / op-hook state into its
neighbours or into the caller, and (c) one poisoned spec cannot take the
other shards' reports down with it.  This module pins all three down, plus
the serialization guarantees process shards rely on.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

import repro.api as api
from repro import nn
from repro.api.executor import (
    EngineState,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.data import make_synthetic_dataset
from repro.models import lenet
from repro.nn import Tensor, no_grad
from repro.nn.backend import current_backend, get_default_dtype
from repro.nn.tensor import (
    grad_mode_override,
    installed_op_hooks,
    tape_nodes_created,
)

EXECUTORS = ["serial", "thread", "process"]
INPUT_SHAPE = (1, 12, 12)

#: Light method set for cost-only determinism runs (no agent search).
LIGHT_METHODS = ["magnitude", "lowrank", "lcnn"]


def build_model(seed: int = 0):
    return lenet(num_classes=4, in_channels=1, width=8,
                 rng=np.random.default_rng(seed))


def sweep_table(sweep: api.SweepResult):
    """Every table-level quantity of a sweep, for exact comparison."""
    rows = [(r.method, r.cost["params"], r.cost["macs"], r.cost["ops"],
             r.accuracy, r.remaining_filter_fraction,
             r.energy_reduction, r.latency_reduction)
            for r in sweep.reports]
    return (sweep.dense.cost, sweep.dense.accuracy, rows)


def cost_specs(**overrides):
    return [api.CompressionSpec(method=m, **overrides) for m in LIGHT_METHODS]


# --------------------------------------------------------------------------- #
# Executor registry / resolution
# --------------------------------------------------------------------------- #
class TestExecutorRegistry:
    def test_builtin_executors_registered(self):
        for name in EXECUTORS:
            assert name in api.available_executors()

    def test_unknown_executor_raises(self):
        with pytest.raises(KeyError, match="unknown executor"):
            api.get_executor("gpu-cluster")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            api.register_executor("serial", SerialExecutor)

    def test_env_var_selects_default_executor(self, monkeypatch):
        monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "thread")
        assert isinstance(resolve_executor(None), ThreadExecutor)

    def test_explicit_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "thread")
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(api.EXECUTOR_ENV_VAR, raising=False)
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_executor_instances_pass_through(self):
        instance = ThreadExecutor()
        assert resolve_executor(instance) is instance

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            SerialExecutor().resolved_workers(4, 0)


# --------------------------------------------------------------------------- #
# Determinism: every executor == the serial reference
# --------------------------------------------------------------------------- #
class TestDeterministicMerge:
    @pytest.fixture(scope="class")
    def serial_cost_sweep(self):
        return api.run_sweep(cost_specs(), model=build_model(), hardware=None,
                             input_shape=INPUT_SHAPE, executor="serial")

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_cost_sweep_matches_serial(self, executor, serial_cost_sweep):
        sweep = api.run_sweep(cost_specs(), model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, executor=executor,
                              max_workers=2)
        assert sweep_table(sweep) == sweep_table(serial_cost_sweep)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_reports_merge_in_spec_order(self, executor):
        sweep = api.run_sweep(cost_specs(), model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, executor=executor,
                              max_workers=3)
        assert sweep.methods() == LIGHT_METHODS

    def test_trained_sweep_identical_across_executors(self):
        dataset = make_synthetic_dataset(80, num_classes=4,
                                         image_shape=INPUT_SHAPE, seed=0)
        specs = [api.CompressionSpec(method="magnitude", epochs=1),
                 api.CompressionSpec(method="lowrank", epochs=1)]
        tables = []
        for executor in EXECUTORS:
            sweep = api.run_sweep(specs, model=build_model(), data=dataset,
                                  hardware=None, input_shape=INPUT_SHAPE,
                                  executor=executor, max_workers=2)
            tables.append(sweep_table(sweep))
        assert tables[0] == tables[1] == tables[2]

    def test_float32_sweep_identical_across_executors(self):
        """The float32 fast path must shard exactly like float64."""
        dataset = make_synthetic_dataset(80, num_classes=4,
                                         image_shape=INPUT_SHAPE, seed=0)
        specs = [api.CompressionSpec(method="magnitude", epochs=1,
                                     dtype="float32"),
                 api.CompressionSpec(method="lcnn", dtype="float32")]
        tables = []
        for executor in EXECUTORS:
            sweep = api.run_sweep(specs, model=build_model(), data=dataset,
                                  hardware=None, input_shape=INPUT_SHAPE,
                                  executor=executor, max_workers=2)
            tables.append(sweep_table(sweep))
        assert tables[0] == tables[1] == tables[2]

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_hardware_tables_match_serial(self, executor):
        specs = [api.CompressionSpec(method="magnitude"),
                 api.CompressionSpec(method="fpgm")]
        reference = api.run_sweep(specs, model=build_model(),
                                  hardware=api.EYERISS_PAPER,
                                  input_shape=INPUT_SHAPE, executor="serial")
        sweep = api.run_sweep(specs, model=build_model(),
                              hardware=api.EYERISS_PAPER,
                              input_shape=INPUT_SHAPE, executor=executor,
                              max_workers=2)
        assert sweep_table(sweep) == sweep_table(reference)
        assert sweep.reports[0].energy_reduction is not None

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_dense_baseline_identity_is_preserved(self, executor):
        """Worker copies of the dense baseline are dropped in the merge."""
        sweep = api.run_sweep(cost_specs(), model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, executor=executor,
                              max_workers=2)
        assert all(report.dense is sweep.dense for report in sweep.reports)

    def test_parent_backend_scope_reaches_workers(self):
        """A use_backend scope around run_sweep applies inside every shard."""
        for executor in EXECUTORS:
            with nn.use_backend("numpy32"):
                sweep = api.run_sweep(
                    [api.CompressionSpec(method="magnitude")],
                    model=build_model(), hardware=None,
                    input_shape=INPUT_SHAPE, executor=executor, max_workers=2)
            model = sweep.reports[0].model
            assert all(p.dtype == np.float32 for p in model.parameters()), executor

    def test_env_selected_executor_runs_the_sweep(self, monkeypatch):
        monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "thread")
        reference = api.run_sweep(cost_specs(), model=build_model(),
                                  hardware=None, input_shape=INPUT_SHAPE,
                                  executor="serial")
        sweep = api.run_sweep(cost_specs(), model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, max_workers=2)
        assert sweep_table(sweep) == sweep_table(reference)


# --------------------------------------------------------------------------- #
# Isolation: no engine state leaks across shards or into the caller
# --------------------------------------------------------------------------- #
class TestShardIsolation:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_backend_spec_does_not_leak(self, executor):
        backend_before = current_backend()
        dtype_before = get_default_dtype()
        specs = [api.CompressionSpec(method=m, backend="numpy32")
                 for m in LIGHT_METHODS]
        api.run_sweep(specs, model=build_model(), hardware=None,
                      input_shape=INPUT_SHAPE, executor=executor,
                      max_workers=2)
        assert current_backend() is backend_before
        assert get_default_dtype() == dtype_before

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_grad_mode_and_tape_stay_clean(self, executor):
        """After a sweep: default grad mode, and eval stays tape-free."""
        api.run_sweep(cost_specs(), model=build_model(), hardware=None,
                      input_shape=INPUT_SHAPE, executor=executor,
                      max_workers=2)
        assert grad_mode_override() is None
        assert nn.is_grad_enabled()
        probe = build_model()
        probe.eval()
        x = Tensor(np.random.default_rng(0).standard_normal((2,) + INPUT_SHAPE))
        before = tape_nodes_created()
        probe(x)
        assert tape_nodes_created() - before == 0

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_caller_no_grad_scope_survives_the_sweep(self, executor):
        with no_grad():
            api.run_sweep([api.CompressionSpec(method="magnitude")],
                          model=build_model(), hardware=None,
                          input_shape=INPUT_SHAPE, executor=executor)
            assert grad_mode_override() is False
        assert grad_mode_override() is None

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_leaked_op_hooks_are_restored(self, executor, leaky_method):
        hooks_before = installed_op_hooks()
        api.run_sweep([api.CompressionSpec(method=leaky_method),
                       api.CompressionSpec(method="magnitude")],
                      model=build_model(), hardware=None,
                      input_shape=INPUT_SHAPE, executor=executor,
                      max_workers=2)
        assert installed_op_hooks() == hooks_before

    def test_serial_sweep_accepts_unregistered_backend_instances(self):
        """No registry name to travel by → shards run under ambient state."""
        from repro.nn.backend import NumpyBackend

        class AnonBackend(NumpyBackend):
            name = "anon-unregistered"

        with nn.use_backend(AnonBackend(np.float64)):
            sweep = api.run_sweep([api.CompressionSpec(method="magnitude")],
                                  model=build_model(), hardware=None,
                                  input_shape=INPUT_SHAPE, executor="serial")
        assert sweep.methods() == ["magnitude"]

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_executors_reject_unregistered_backends(self, executor):
        """No silent fallback: workers cannot restore a nameless backend."""
        from repro.nn.backend import NumpyBackend

        class AnonBackend(NumpyBackend):
            name = "anon-unregistered"

        with nn.use_backend(AnonBackend(np.float64)):
            with pytest.raises(RuntimeError, match="register_backend"):
                api.run_sweep([api.CompressionSpec(method="magnitude")],
                              model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, executor=executor)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_executors_reject_name_colliding_subclasses(self, executor):
        """An unregistered subclass inheriting a built-in's name must not be
        silently replaced by the registered implementation in workers."""
        from repro.nn.backend import NumpyBackend

        class ShadowBackend(NumpyBackend):  # inherits name == "numpy"
            pass

        with nn.use_backend(ShadowBackend(np.float64)):
            with pytest.raises(RuntimeError, match="register_backend"):
                api.run_sweep([api.CompressionSpec(method="magnitude")],
                              model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, executor=executor)

    def test_engine_state_round_trips_by_pickle(self):
        with nn.use_backend("numpy32"):
            state = EngineState.capture()
        dtype_before = get_default_dtype()
        restored = pickle.loads(pickle.dumps(state))
        with restored.scope():
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == dtype_before


# --------------------------------------------------------------------------- #
# Failure path: a poisoned spec must not lose the other shards
# --------------------------------------------------------------------------- #
@pytest.fixture
def boom_method():
    """A registered method whose fit always raises."""
    from dataclasses import dataclass

    from repro.api.adapters import CompressionAdapter

    @dataclass
    class BoomConfig:
        message: str = "poisoned spec"

    @api.register_method("boom-test", BoomConfig, policy="—",
                         summary="always raises (test only)")
    class BoomMethod(CompressionAdapter):
        def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
            raise RuntimeError(self.config.message)

    yield "boom-test"
    api.unregister_method("boom-test")


@pytest.fixture
def leaky_method():
    """A registered method that installs an op hook and never removes it."""
    from dataclasses import dataclass

    from repro.api.adapters import MagnitudeMethod
    from repro.api.spec import MagnitudeSpec
    from repro.nn.tensor import add_op_hook

    @dataclass
    class LeakyConfig(MagnitudeSpec):
        pass

    @api.register_method("leaky-test", LeakyConfig, policy="—",
                         summary="leaks an op hook (test only)")
    class LeakyMethod(MagnitudeMethod):
        def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
            add_op_hook(lambda name, seconds, layer: None)  # deliberately leaked
            return super().fit(train_loader, val_loader, epochs)

    yield "leaky-test"
    api.unregister_method("leaky-test")


class TestFailurePath:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_on_error_raise_propagates(self, executor, boom_method):
        with pytest.raises(RuntimeError, match="poisoned spec"):
            api.run_sweep([api.CompressionSpec(method=boom_method)],
                          model=build_model(), hardware=None,
                          input_shape=INPUT_SHAPE, executor=executor)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_on_error_skip_keeps_healthy_shards(self, executor, boom_method):
        specs = [api.CompressionSpec(method="magnitude"),
                 api.CompressionSpec(method=boom_method),
                 api.CompressionSpec(method="lowrank")]
        sweep = api.run_sweep(specs, model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, executor=executor,
                              max_workers=2, on_error="skip")
        assert sweep.methods() == ["magnitude", "lowrank"]
        assert len(sweep.failures) == 1
        failure = sweep.failures[0]
        assert failure.index == 1
        assert failure.spec.method == boom_method
        assert failure.error_type == "RuntimeError"
        assert "poisoned spec" in failure.message
        assert boom_method in str(failure)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_skipped_failure_matches_serial_tables(self, executor, boom_method):
        """The healthy shards' numbers are unaffected by the poisoned one."""
        healthy = api.run_sweep(cost_specs(), model=build_model(),
                                hardware=None, input_shape=INPUT_SHAPE,
                                executor="serial")
        specs = cost_specs()
        specs.insert(1, api.CompressionSpec(method=boom_method))
        sweep = api.run_sweep(specs, model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, executor=executor,
                              max_workers=2, on_error="skip")
        assert sweep_table(sweep) == sweep_table(healthy)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            api.run_sweep([api.CompressionSpec(method="magnitude")],
                          model=build_model(), hardware=None,
                          input_shape=INPUT_SHAPE, on_error="ignore")

    def test_successful_sweep_has_no_failures(self):
        sweep = api.run_sweep([api.CompressionSpec(method="magnitude")],
                              model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE, on_error="skip")
        assert sweep.failures == []


# --------------------------------------------------------------------------- #
# Serialization: the wire formats process shards rely on
# --------------------------------------------------------------------------- #
class TestSerialization:
    def test_spec_pickle_round_trip(self):
        for spec in api.table2_specs(seed=3):
            assert pickle.loads(pickle.dumps(spec)) == spec

    def test_spec_dict_round_trip_through_json(self):
        for spec in api.table2_specs(seed=3):
            payload = json.loads(json.dumps(spec.to_dict()))
            assert api.CompressionSpec.from_dict(payload) == spec

    def test_spec_dict_preserves_int_stage_keys(self):
        spec = api.CompressionSpec(
            method="alf",
            config=api.ALFSpec(stage_remaining={16: 0.45, 64: 0.28}))
        payload = json.loads(json.dumps(spec.to_dict()))
        restored = api.CompressionSpec.from_dict(payload)
        assert restored.config.stage_remaining == {16: 0.45, 64: 0.28}

    def test_spec_dict_rejects_built_models(self):
        spec = api.CompressionSpec(method="magnitude", model=build_model(),
                                   input_shape=INPUT_SHAPE)
        with pytest.raises(TypeError, match="registry name"):
            spec.to_dict()

    def test_spec_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            api.CompressionSpec.from_dict({"method": "alf", "gpu": True})

    @pytest.fixture(scope="class")
    def report(self):
        return api.compress(build_model(), method="magnitude",
                            input_shape=INPUT_SHAPE,
                            hardware=api.EYERISS_PAPER)

    def test_report_pickle_round_trip(self, report):
        restored = pickle.loads(pickle.dumps(report))
        assert restored.summary() == report.summary()
        assert restored.model is not None

    def test_report_dict_round_trip_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        restored = api.CompressionReport.from_dict(payload)
        assert restored.summary() == report.summary()
        assert restored.spec == report.spec
        assert [s.name for s in restored.compressed.layer_shapes] == \
            [s.name for s in report.compressed.layer_shapes]
        assert restored.render()  # table rendering works on the wire form

    def test_report_dict_is_model_free(self, report):
        restored = api.CompressionReport.from_dict(report.to_dict())
        assert restored.compressed.model is None

    def test_report_dict_rejects_unknown_schema(self, report):
        payload = report.to_dict()
        payload["schema"] = "repro-report/99"
        with pytest.raises(ValueError, match="schema"):
            api.CompressionReport.from_dict(payload)
