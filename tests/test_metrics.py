"""Tests for metrics: profiling, OPs/Params counters, comparison helpers, tables."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ALFConfig, convert_to_alf, compress_model, alf_blocks
from repro.metrics import (
    ComparisonTable,
    MethodResult,
    OPS_PER_MAC,
    compression_summary,
    count_macs,
    count_ops,
    count_params,
    dominates,
    format_count,
    format_percent,
    pareto_front,
    profile_model,
    render_table,
)
from repro.models import lenet, plain8
from repro.nn import Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU, Sequential


class TestProfiling:
    def test_conv_macs_and_params_closed_form(self, rng):
        model = Sequential(Conv2d(3, 8, 3, padding=1, bias=False, rng=rng))
        profile = profile_model(model, (3, 16, 16))
        layer = profile.layers[0]
        assert layer.params == 3 * 8 * 9
        assert layer.macs == 3 * 8 * 9 * 16 * 16
        assert layer.ops == OPS_PER_MAC * layer.macs

    def test_linear_costs(self, rng):
        model = Sequential(Flatten(), Linear(48, 10, rng=rng))
        profile = profile_model(model, (3, 4, 4))
        layer = profile.layers[0]
        assert layer.kind == "linear"
        assert layer.params == 48 * 10 + 10
        assert layer.macs == 480

    def test_strided_conv_costs_shrink(self, rng):
        dense = Sequential(Conv2d(4, 4, 3, padding=1, stride=1, rng=rng))
        strided = Sequential(Conv2d(4, 4, 3, padding=1, stride=2, rng=rng))
        assert (profile_model(strided, (4, 16, 16)).total_macs()
                == profile_model(dense, (4, 16, 16)).total_macs() // 4)

    def test_conv_only_excludes_linear(self, rng):
        model = lenet(num_classes=5, in_channels=1, width=4, rng=rng)
        profile = profile_model(model, (1, 12, 12))
        assert profile.total_params(conv_only=True) < profile.total_params()

    def test_counts_are_per_image_regardless_of_batch(self, rng):
        model = plain8(rng=rng)
        a = profile_model(model, (3, 16, 16), batch_size=1).total_macs()
        b = profile_model(model, (3, 16, 16), batch_size=4).total_macs()
        assert a == b

    def test_alf_block_profiled_in_deployed_form(self, rng):
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        convert_to_alf(model, ALFConfig(), rng=rng)
        for block in alf_blocks(model):
            block.autoencoder.pruning_mask.mask.data[::2] = 0.0
        alf_profile = profile_model(model, (1, 12, 12))
        compressed = compress_model(model)
        compressed_profile = profile_model(compressed.model, (1, 12, 12))
        assert alf_profile.total_params() == compressed_profile.total_params()
        assert alf_profile.total_macs() == compressed_profile.total_macs()

    def test_profiling_restores_forward_methods(self, rng):
        model = plain8(rng=rng)
        profile_model(model, (3, 16, 16))
        # No instance-level "forward" attribute should remain after profiling.
        for module in model.modules():
            assert "forward" not in module.__dict__

    def test_by_name_lookup(self, rng):
        model = Sequential(Conv2d(1, 2, 3, rng=rng))
        profile = profile_model(model, (1, 5, 5))
        assert profile.by_name(profile.layers[0].name).kind == "conv"
        with pytest.raises(KeyError):
            profile.by_name("missing")

    def test_count_helpers_consistent(self, rng):
        model = plain8(rng=rng)
        shape = (3, 16, 16)
        assert count_ops(model, shape) == 2 * count_macs(model, shape)
        assert count_params(model, shape) == profile_model(model, shape).total_params()


class TestComparisonHelpers:
    def _rows(self):
        return [
            MethodResult("baseline", "—", 100.0, 100.0, 90.0),
            MethodResult("better", "auto", 50.0, 50.0, 89.0),
            MethodResult("dominated", "rule", 80.0, 90.0, 85.0),
        ]

    def test_reductions(self):
        rows = self._rows()
        table = ComparisonTable(baseline=rows[0], rows=rows[1:])
        reductions = table.reductions()
        assert reductions["better"]["params_reduction"] == pytest.approx(0.5)
        assert reductions["better"]["accuracy_drop"] == pytest.approx(1.0)

    def test_dominates(self):
        rows = self._rows()
        assert dominates(rows[1], rows[2])
        assert not dominates(rows[2], rows[1])
        assert not dominates(rows[1], rows[0])   # baseline has higher accuracy

    def test_pareto_front_contains_non_dominated(self):
        rows = self._rows()
        front = pareto_front(rows)
        names = {r.method for r in front}
        assert "better" in names and "baseline" in names
        assert "dominated" not in names

    def test_unknown_params_never_dominate(self):
        a = MethodResult("a", "x", None, 10.0, 90.0)
        b = MethodResult("b", "x", 5.0, 20.0, 80.0)
        assert not dominates(a, b)

    def test_compression_summary(self):
        summary = compression_summary(100, 200, 30, 80)
        assert summary["params_reduction"] == pytest.approx(0.7)
        assert summary["ops_reduction"] == pytest.approx(0.6)

    def test_method_result_reductions(self):
        row = MethodResult("m", "p", 30.0, 40.0, 88.0)
        assert row.params_reduction(100.0) == pytest.approx(0.7)
        assert row.ops_reduction(80.0) == pytest.approx(0.5)
        assert row.accuracy_drop(90.0) == pytest.approx(2.0)
        assert MethodResult("m", "p", None, 1.0, 1.0).params_reduction(10.0) is None


class TestTables:
    def test_format_count(self):
        assert format_count(1_500_000) == "1.50M"
        assert format_count(2_000, unit="K") == "2.00K"
        assert format_count(None) == "-"

    def test_format_percent(self):
        assert format_percent(0.375) == "37.5%"
        assert format_percent(0.1, signed=True) == "+10.0%"
        assert format_percent(None) == "-"

    def test_render_table_alignment(self):
        text = render_table(["a", "column"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "column" in lines[1]
        assert len(lines) == 5


@given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 3), st.integers(4, 12))
@settings(max_examples=20, deadline=None)
def test_conv_profile_matches_closed_form_property(ci, co, k, size):
    if size < k:
        return
    model = Sequential(Conv2d(ci, co, k, bias=False, rng=np.random.default_rng(0)))
    profile = profile_model(model, (ci, size, size))
    out = size - k + 1
    assert profile.total_macs() == ci * co * k * k * out * out
    assert profile.total_params() == ci * co * k * k
