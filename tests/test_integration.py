"""Integration tests: full pipelines across modules.

These tests exercise the ALF workflow end to end (build -> convert -> train
-> compress -> profile -> evaluate on the hardware model) and compare the
ALF path against a baseline pruner on the same data.
"""

import numpy as np
import pytest

from repro.baselines import FPGMPruner, effective_cost
from repro.core import (
    ALFConfig,
    ALFTrainer,
    ClassifierTrainer,
    alf_blocks,
    compress_model,
    convert_to_alf,
)
from repro.data import DataLoader, make_synthetic_dataset
from repro.hardware import compare_networks, evaluate_model
from repro.metrics import profile_model
from repro.models import lenet, plain8
from repro.nn import Tensor
from repro.nn.utils import seed_everything


def small_problem(seed=0, image=10, classes=4, samples=200):
    dataset = make_synthetic_dataset(samples, num_classes=classes,
                                     image_shape=(1, image, image), seed=seed)
    train, test = dataset.split(0.75)
    return (DataLoader(train, batch_size=25, shuffle=True, seed=seed),
            DataLoader(test, batch_size=64))


class TestEndToEndALF:
    def test_full_pipeline_train_compress_deploy(self):
        """Convert -> two-player training -> deployment keeps the model usable."""
        rng = seed_everything(0)
        train_loader, test_loader = small_problem()
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        config = ALFConfig(lr_task=0.05, threshold=1e-1, lr_autoencoder=4e-2,
                           pr_max=0.6, mask_init=0.6)
        convert_to_alf(model, config, rng=rng)
        trainer = ALFTrainer(model, config)
        history = trainer.fit(train_loader, test_loader, epochs=8)

        # Training made progress over random guessing (25% for 4 classes).
        assert history.final.val_accuracy > 0.30
        # Deployment: compressed model agrees with the ALF model exactly.
        result = compress_model(model)
        model.eval(), result.model.eval()
        images, labels = test_loader.full_batch()
        alf_logits = model(Tensor(images)).data
        compressed_logits = result.model(Tensor(images)).data
        assert np.allclose(alf_logits, compressed_logits, atol=1e-8)
        # The compressed model is a dense model: no ALF blocks remain.
        assert not alf_blocks(result.model)

    def test_alf_compresses_params_when_pruning_engages(self):
        rng = seed_everything(1)
        train_loader, test_loader = small_problem(seed=1)
        model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
        # Aggressive settings guarantee visible pruning within a few epochs.
        config = ALFConfig(lr_task=0.05, threshold=8e-2, lr_autoencoder=8e-2,
                           pr_max=0.7, mask_init=0.15)
        convert_to_alf(model, config, rng=rng)
        trainer = ALFTrainer(model, config)
        trainer.fit(train_loader, epochs=6)
        assert trainer.remaining_filter_fraction() < 1.0

        compressed = compress_model(model)
        dense = lenet(num_classes=4, in_channels=1, width=8, rng=np.random.default_rng(1))
        dense_params = profile_model(dense, (1, 10, 10)).total_params(conv_only=True)
        compressed_params = profile_model(compressed.model, (1, 10, 10)).total_params(conv_only=True)
        # With pruning engaged, the deployed conv layers must not exceed ~ the
        # original cost by more than the expansion overhead allows.
        assert compressed_params < dense_params * 1.6

    def test_alf_vs_fpgm_on_same_task(self):
        """Both compression routes stay usable on the same synthetic task."""
        rng = seed_everything(2)
        train_loader, test_loader = small_problem(seed=2)

        # Baseline: train a dense model, prune with FPGM, fine-tune.
        baseline = lenet(num_classes=4, in_channels=1, width=8,
                         rng=np.random.default_rng(2))
        baseline_trainer = ClassifierTrainer(baseline, lr=0.05)
        baseline_trainer.fit(train_loader, test_loader, epochs=5)
        plan = FPGMPruner().prune(baseline, prune_ratio=0.4)
        baseline_trainer.fit(train_loader, test_loader, epochs=3)
        fpgm_accuracy = baseline_trainer.evaluate(test_loader)

        # ALF route on an identical architecture.
        alf_model = lenet(num_classes=4, in_channels=1, width=8,
                          rng=np.random.default_rng(2))
        config = ALFConfig(lr_task=0.05, threshold=5e-2, lr_autoencoder=1e-2,
                           pr_max=0.5, mask_init=0.8)
        convert_to_alf(alf_model, config, rng=rng)
        alf_trainer = ALFTrainer(alf_model, config)
        alf_history = alf_trainer.fit(train_loader, test_loader, epochs=10)

        assert fpgm_accuracy > 0.3
        assert alf_history.final.val_accuracy > 0.3
        cost = effective_cost(baseline, plan, (1, 10, 10))
        assert cost["ops"] > 0


class TestHardwareIntegration:
    def test_compressed_model_cheaper_on_accelerator(self):
        """ALF-compressed plain-8 consumes less modelled energy than vanilla."""
        vanilla = plain8(rng=np.random.default_rng(0))
        vanilla_report = evaluate_model(vanilla, (3, 16, 16), batch=4, name="vanilla")

        compressed = plain8(rng=np.random.default_rng(0))
        blocks = convert_to_alf(compressed, ALFConfig(), rng=np.random.default_rng(1))
        for _, block in blocks:
            keep = max(1, block.out_channels // 3)
            mask = np.zeros(block.out_channels)
            mask[:keep] = 1.0
            block.autoencoder.pruning_mask.mask.data = mask
        alf_report = evaluate_model(compressed, (3, 16, 16), batch=4, name="alf")

        comparison = compare_networks(vanilla_report, alf_report)
        assert comparison.energy_reduction > 0.0

    def test_profile_consistent_with_hardware_macs(self):
        """The profiler's MAC count equals the sum of the hardware workloads' MACs."""
        from repro.hardware import conv_shapes_from_model
        model = plain8(rng=np.random.default_rng(0))
        profile_macs = profile_model(model, (3, 16, 16)).total_macs(conv_only=True)
        shapes = conv_shapes_from_model(model, (3, 16, 16), batch=1)
        assert sum(s.macs for s in shapes) == profile_macs


class TestDeterminism:
    def test_alf_training_is_reproducible(self):
        def run():
            rng = seed_everything(7)
            train_loader, _ = small_problem(seed=7, samples=80)
            model = lenet(num_classes=4, in_channels=1, width=8, rng=rng)
            config = ALFConfig(lr_task=0.05, threshold=4e-2, lr_autoencoder=2e-2,
                               mask_init=0.2, pr_max=0.6)
            convert_to_alf(model, config, rng=np.random.default_rng(7))
            trainer = ALFTrainer(model, config)
            trainer.fit(train_loader, epochs=2)
            return [p.data.copy() for p in model.parameters()]

        first = run()
        second = run()
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
