"""Tests for the layer-scoped op profiler and its end-to-end surfacing.

Covers four layers of the profiling subsystem:

* :mod:`repro.nn.profiler` unit behaviour — recording, layer attribution,
  top-k ranking, deterministic merging, and the JSON wire format;
* op-hook lifecycle bugfixes — idempotent :func:`repro.nn.remove_op_hook`
  and the restore-during-active-profile regression;
* the :func:`repro.nn.backend._initial_backend` env-parsing bugfix
  (``REPRO_DEFAULT_DTYPE`` typos must fail with a clear message, not an
  opaque numpy ``TypeError`` at import time);
* pipeline / sweep integration — ``compress(profile=True)`` phases,
  report round-trips, identical per-layer op *counts* across the
  ``serial`` / ``thread`` / ``process`` executors, the zero-overhead
  no-profile path, and the golden-rendered ``SweepResult`` table.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

import repro.api as api
from repro import nn
from repro.api.executor import op_hook_isolation
from repro.data import make_synthetic_dataset
from repro.models import lenet
from repro.nn.backend import _initial_backend
from repro.nn.profiler import (
    PROFILE_SCHEMA,
    OpProfile,
    OpStat,
    RunProfile,
    collect_profile,
    layer_op_seconds,
    profile_inference,
)
from repro.nn.tensor import (
    Tensor,
    add_op_hook,
    current_layer,
    installed_op_hooks,
    op_hooks_active,
    profile_ops,
    remove_op_hook,
    restore_op_hooks,
)

EXECUTORS = ["serial", "thread", "process"]
INPUT_SHAPE = (1, 12, 12)


def build_model(seed: int = 0):
    return lenet(num_classes=4, in_channels=1, width=8,
                 rng=np.random.default_rng(seed))


def layer_counts(profile: OpProfile):
    """Per-layer op call counts only — the executor-invariant quantity."""
    return {layer: {op: stat.calls for op, stat in per_layer.items()}
            for layer, per_layer in profile.layers.items()}


# --------------------------------------------------------------------------- #
# OpProfile / RunProfile unit behaviour
# --------------------------------------------------------------------------- #
class TestOpProfile:
    def test_record_aggregates_per_op_and_per_layer(self):
        profile = OpProfile()
        profile.record("matmul", 0.5, "net.fc1")
        profile.record("matmul", 0.25, "net.fc2")
        profile.record("add", 0.125, "net.fc1")
        assert profile.ops["matmul"].calls == 2
        assert profile.ops["matmul"].seconds == pytest.approx(0.75)
        assert profile.layers["net.fc1"]["matmul"].calls == 1
        assert profile.total_calls == 3
        assert profile.total_seconds == pytest.approx(0.875)
        assert not profile.is_empty()

    def test_layer_seconds_and_layer_op_seconds(self):
        profile = OpProfile()
        profile.record("conv2d", 1.0, "net.conv1")
        profile.record("relu", 0.5, "net.conv1")
        profile.record("conv2d", 2.0, "net.conv2")
        assert profile.layer_seconds() == {"net.conv1": 1.5, "net.conv2": 2.0}
        assert layer_op_seconds(profile, "conv2d") == {
            "net.conv1": 1.0, "net.conv2": 2.0}

    def test_top_ops_ranked_by_seconds_name_tiebroken(self):
        profile = OpProfile()
        profile.record("b-op", 1.0)
        profile.record("a-op", 1.0)
        profile.record("slow", 9.0)
        top = profile.top_ops(2)
        assert [name for name, _ in top] == ["slow", "a-op"]
        assert [name for name, _ in profile.top_layers(1)] == [""]

    def test_merge_is_order_deterministic(self):
        left = OpProfile()
        left.record("conv2d", 1.0, "layer0")
        right = OpProfile()
        right.record("relu", 0.5, "layer1")
        right.record("conv2d", 0.25, "layer0")
        merged = OpProfile().merge(left).merge(right)
        assert list(merged.ops) == ["conv2d", "relu"]
        assert list(merged.layers) == ["layer0", "layer1"]
        assert merged.ops["conv2d"].calls == 2
        assert merged.ops["conv2d"].seconds == pytest.approx(1.25)

    def test_round_trips_through_dict(self):
        profile = OpProfile()
        profile.record("conv2d", 0.125, "net.conv")
        profile.record("add", 0.0625)
        payload = profile.to_dict()
        assert payload["schema"] == PROFILE_SCHEMA
        restored = OpProfile.from_dict(payload)
        assert restored.to_dict() == payload
        assert layer_counts(restored) == layer_counts(profile)

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="unsupported op-profile schema"):
            OpProfile.from_dict({"schema": "bogus/9"})

    def test_render_top_mentions_ops_and_layers(self):
        profile = OpProfile()
        profile.record("conv2d", 0.25, "net.conv")
        text = profile.render_top(k=5)
        assert "conv2d" in text
        assert "net.conv" in text
        assert "1 calls" in text


class TestRunProfile:
    def test_phases_and_combined(self):
        train = OpProfile()
        train.record("matmul", 1.0, "fc")
        eval_profile = OpProfile()
        eval_profile.record("matmul", 0.5, "fc")
        run = RunProfile(train=train, eval=eval_profile)
        assert list(run.phases()) == ["train", "eval"]
        combined = run.combined()
        assert combined.ops["matmul"].calls == 2
        assert combined.ops["matmul"].seconds == pytest.approx(1.5)

    def test_round_trips_through_dict(self):
        train = OpProfile()
        train.record("conv2d", 0.25, "net.conv")
        run = RunProfile(train=train)
        restored = RunProfile.from_dict(run.to_dict())
        assert restored.dense is None
        assert restored.eval is None
        assert restored.to_dict() == run.to_dict()

    def test_render_handles_empty(self):
        assert RunProfile().render() == "RunProfile(empty)"


# --------------------------------------------------------------------------- #
# Layer attribution through Module.__call__
# --------------------------------------------------------------------------- #
class TestLayerAttribution:
    def test_collect_profile_attributes_ops_to_module_paths(self, tiny_model):
        x = Tensor(np.zeros((2,) + (1, 10, 10)))
        tiny_model.eval()
        with collect_profile() as profile:
            tiny_model(x)
        convs = layer_op_seconds(profile, "conv2d")
        assert len(convs) == 2  # lenet: two conv layers, forward order
        assert all("." in path for path in convs)
        assert all(seconds >= 0.0 for seconds in convs.values())
        # Distinct layers recorded separately, aggregate matches.
        assert profile.ops["conv2d"].calls == sum(
            per_layer["conv2d"].calls
            for per_layer in profile.layers.values() if "conv2d" in per_layer)

    def test_ops_outside_any_module_get_empty_layer(self):
        with collect_profile() as profile:
            t = Tensor(np.ones((2, 2)))
            (t + t).sum()
        assert set(profile.layers) == {""}

    def test_no_scope_pushed_without_hooks(self):
        observed = []

        class Probe(nn.Module):
            def forward(self, x):
                observed.append(current_layer())
                return x

        probe = Probe()
        probe(Tensor(np.ones((1,))))
        assert observed[-1] == ""  # hook-free path never pushes a scope
        with collect_profile():
            probe(Tensor(np.ones((1,))))
        assert observed[-1] == "Probe"

    def test_scope_uses_parent_attribute_names(self):
        seen = []

        class Leaf(nn.Module):
            def forward(self, x):
                seen.append(current_layer())
                return x

        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.branch = Leaf()

            def forward(self, x):
                return self.branch(x)

        with collect_profile():
            Net()(Tensor(np.ones((1,))))
        assert seen == ["Net.branch"]

    def test_profile_inference_restores_training_mode(self, tiny_model):
        tiny_model.train()
        profile = profile_inference(tiny_model, (1, 10, 10), batch=2)
        assert tiny_model.training
        assert profile.ops["conv2d"].calls == 2
        assert not installed_op_hooks()


# --------------------------------------------------------------------------- #
# Op-hook lifecycle bugfixes
# --------------------------------------------------------------------------- #
class TestHookLifecycle:
    def test_remove_op_hook_is_idempotent(self):
        hook = add_op_hook(lambda name, seconds, layer: None)
        remove_op_hook(hook)
        remove_op_hook(hook)  # pre-fix: ValueError: list.remove(x) ...
        assert hook not in installed_op_hooks()

    def test_restore_during_active_profile_context(self):
        """Regression: a snapshot restore firing mid-profile must not break exit.

        This reproduces a sweep shard's ``restore_op_hooks`` /
        ``op_hook_isolation`` resetting the thread's hook list while a
        ``profile_ops`` context opened around it is still active: the
        context's own hook is already gone when its ``finally`` runs.
        """
        snapshot = installed_op_hooks()
        with profile_ops() as stats:
            t = Tensor(np.ones((2, 2)))
            t + t
            restore_op_hooks(snapshot)  # shard-style reset, profile active
            t + t  # no longer observed — and exit must not raise
        assert stats["add"][0] == 1
        assert installed_op_hooks() == snapshot

    def test_op_hook_isolation_closing_over_profile(self):
        with profile_ops():
            with op_hook_isolation():
                add_op_hook(lambda name, seconds, layer: None)  # leaked
            # isolation restored its snapshot (profile hook included)
            assert len(installed_op_hooks()) == 1
        assert not installed_op_hooks()

    def test_collect_profile_survives_external_reset(self):
        with collect_profile() as profile:
            restore_op_hooks([])
        assert profile.is_empty()
        assert not installed_op_hooks()

    def test_op_hooks_active_tracks_install_state(self):
        assert not op_hooks_active()
        with collect_profile():
            assert op_hooks_active()
        assert not op_hooks_active()


# --------------------------------------------------------------------------- #
# REPRO_DEFAULT_DTYPE env parsing (import-time bugfix)
# --------------------------------------------------------------------------- #
class TestDefaultDtypeEnvParsing:
    def test_typo_raises_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_DTYPE", "flaot32")
        with pytest.raises(ValueError, match="REPRO_DEFAULT_DTYPE.*'flaot32'"):
            _initial_backend()

    def test_non_float_dtype_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_DTYPE", "int32")
        with pytest.raises(ValueError, match="not a floating dtype"):
            _initial_backend()

    @pytest.mark.parametrize("value, expected",
                             [("float32", np.float32), ("float64", np.float64)])
    def test_valid_values_accepted(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_DEFAULT_DTYPE", value)
        assert _initial_backend().default_dtype == np.dtype(expected)

    def test_unset_defaults_to_float64(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEFAULT_DTYPE", raising=False)
        assert _initial_backend().default_dtype == np.dtype(np.float64)

    def test_import_failure_names_the_variable(self):
        """A typo'd env var fails `import repro` with the curated message."""
        env = dict(os.environ, REPRO_DEFAULT_DTYPE="flaot32")
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.nn.backend"],
            env=env, capture_output=True, text=True)
        assert proc.returncode != 0
        assert "REPRO_DEFAULT_DTYPE" in proc.stderr
        assert "float32" in proc.stderr


# --------------------------------------------------------------------------- #
# Pipeline integration: compress(profile=True)
# --------------------------------------------------------------------------- #
class TestPipelineProfiling:
    def test_cost_only_run_profiles_dense_and_inference(self):
        report = api.compress(build_model(), method="magnitude",
                              hardware=None, input_shape=INPUT_SHAPE,
                              profile=True)
        profile = report.profile
        assert profile is not None
        assert profile.dense is not None and not profile.dense.is_empty()
        # Cost-only runs profile one synthetic inference batch as "eval".
        assert profile.eval is not None
        assert profile.eval.ops["conv2d"].calls == 2
        assert profile.eval.total_seconds > 0.0
        assert not installed_op_hooks()

    def test_trained_run_splits_train_and_eval(self):
        dataset = make_synthetic_dataset(80, num_classes=4,
                                         image_shape=INPUT_SHAPE, seed=0)
        report = api.compress(build_model(), method="magnitude",
                              data=dataset, hardware=None,
                              input_shape=INPUT_SHAPE, epochs=1,
                              finetune_epochs=1, profile=True)
        profile = report.profile
        assert profile is not None
        assert set(profile.phases()) == {"dense", "train", "eval"}
        # Training records backward/update arithmetic the eval probe lacks.
        assert profile.train.total_calls > profile.eval.total_calls
        combined = profile.combined()
        assert combined.total_calls == sum(
            phase.total_calls for phase in profile.phases().values())

    def test_no_profile_keeps_fast_path_untouched(self):
        report = api.compress(build_model(), method="magnitude",
                              hardware=None, input_shape=INPUT_SHAPE)
        assert report.profile is None
        assert not op_hooks_active()
        assert not installed_op_hooks()
        assert report.to_dict()["profile"] is None

    def test_report_profile_round_trips_wire_and_pickle(self):
        report = api.compress(build_model(), method="magnitude",
                              hardware=None, input_shape=INPUT_SHAPE,
                              profile=True)
        restored = api.CompressionReport.from_dict(report.to_dict())
        assert restored.profile is not None
        assert restored.profile.to_dict() == report.profile.to_dict()
        pickled = pickle.loads(pickle.dumps(report))
        assert pickled.profile.to_dict() == report.profile.to_dict()

    def test_spec_profile_round_trips(self):
        spec = api.CompressionSpec(method="magnitude", profile=True)
        assert api.CompressionSpec.from_dict(spec.to_dict()).profile is True
        assert api.CompressionSpec.from_dict(
            api.CompressionSpec(method="magnitude").to_dict()).profile is False


# --------------------------------------------------------------------------- #
# Sweep integration: determinism across executors
# --------------------------------------------------------------------------- #
class TestSweepProfiling:
    def profiled_sweep(self, executor):
        specs = [api.CompressionSpec(method=m, profile=True)
                 for m in ("magnitude", "lowrank")]
        return api.run_sweep(specs, model=build_model(), hardware=None,
                             input_shape=INPUT_SHAPE, executor=executor,
                             max_workers=2)

    @pytest.fixture(scope="class")
    def serial_sweep(self):
        return self.profiled_sweep("serial")

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_per_layer_op_counts_match_serial(self, executor, serial_sweep):
        sweep = self.profiled_sweep(executor)
        for reference, report in zip(serial_sweep.reports, sweep.reports):
            assert report.profile is not None
            for phase, ref_profile in reference.profile.phases().items():
                profile = report.profile.phases()[phase]
                assert layer_counts(profile) == layer_counts(ref_profile)
                # Counts are bit-identical; seconds are wall-clock and only
                # need to be positive wherever ops actually ran.
                if not profile.is_empty():
                    assert profile.total_seconds > 0.0
        combined = sweep.combined_profile()
        assert layer_counts(combined) == layer_counts(
            serial_sweep.combined_profile())

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_no_hooks_leak_out_of_profiled_sweeps(self, executor):
        before = installed_op_hooks()
        self.profiled_sweep(executor)
        assert installed_op_hooks() == before

    def test_unprofiled_sweep_has_no_profile(self):
        sweep = api.run_sweep([api.CompressionSpec(method="magnitude")],
                              model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE)
        assert sweep.combined_profile() is None
        assert all(r.profile is None for r in sweep.reports)

    def test_mixed_profile_flags_merge_only_profiled(self):
        sweep = api.run_sweep(
            [api.CompressionSpec(method="magnitude", profile=True),
             api.CompressionSpec(method="lowrank")],
            model=build_model(), hardware=None, input_shape=INPUT_SHAPE)
        assert sweep.reports[0].profile is not None
        assert sweep.reports[1].profile is None
        assert sweep.combined_profile() is not None


# --------------------------------------------------------------------------- #
# SweepResult.render(): golden table (accuracy-missing fallback normalized)
# --------------------------------------------------------------------------- #
class TestSweepRender:
    GOLDEN = (
        "Compression sweep\n"
        "Method    | Policy      | Params | OPs   | ΔParams | ΔOPs | ΔEnergy | ΔLatency | Acc[%]\n"
        "----------+-------------+--------+-------+---------+------+---------+----------+-------\n"
        "dense     | —           | 0.00M  | 0.10M | -       | -    | -       | -        | -     \n"
        "magnitude | Handcrafted | 0.00M  | 0.03M | -73%    | -70% | -       | -        | -     \n"
        "lowrank   | Handcrafted | 0.00M  | 0.07M | -38%    | -32% | -       | -        | -     "
    )

    def test_cost_only_golden_string(self):
        sweep = api.run_sweep([api.CompressionSpec(method="magnitude"),
                               api.CompressionSpec(method="lowrank")],
                              model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE)
        assert sweep.render() == self.GOLDEN

    def test_missing_cells_share_one_fallback_token(self):
        sweep = api.run_sweep([api.CompressionSpec(method="magnitude")],
                              model=build_model(), hardware=None,
                              input_shape=INPUT_SHAPE)
        dense_row = sweep.render().splitlines()[3]
        cells = [cell.strip() for cell in dense_row.split("|")]
        # ΔParams..Acc[%]: every not-applicable cell uses the same token.
        assert cells[4:] == ["-"] * 5

    def test_measured_accuracy_renders_as_percentage(self):
        dataset = make_synthetic_dataset(80, num_classes=4,
                                         image_shape=INPUT_SHAPE, seed=0)
        sweep = api.run_sweep([api.CompressionSpec(method="magnitude")],
                              model=build_model(), data=dataset,
                              hardware=None, input_shape=INPUT_SHAPE)
        rendered = sweep.render()
        acc_cell = rendered.splitlines()[3].split("|")[-1].strip()
        assert acc_cell == f"{sweep.dense.accuracy * 100:.1f}"


# --------------------------------------------------------------------------- #
# Experiments surfacing
# --------------------------------------------------------------------------- #
class TestExperimentProfiles:
    def test_hardware_breakdown_measured_columns(self):
        from repro.experiments import hardware_breakdown

        result = hardware_breakdown.run(architecture="plain20", batch=2,
                                        profile=True)
        assert result.vanilla_profile is not None
        assert result.alf_profile is not None
        assert all(row.vanilla_seconds is not None for row in result.rows)
        assert all(row.alf_seconds is not None for row in result.rows)
        rendered = result.render()
        assert "t (van) [s]" in rendered and "t (ALF) [s]" in rendered

    def test_hardware_breakdown_unprofiled_stays_clean(self):
        from repro.experiments import hardware_breakdown

        result = hardware_breakdown.run(architecture="plain20", batch=2)
        assert result.vanilla_profile is None
        assert all(row.alf_seconds is None for row in result.rows)
        assert "t (van) [s]" not in result.render()

    def test_table2_render_measured_column(self):
        from repro.experiments.cifar_comparison import Table2Result, TableRow

        result = Table2Result(rows=[
            TableRow("ResNet-20", "—", 1e5, 2e6, None,
                     measured_seconds=0.0125),
            TableRow("ALF", "Automatic", 3e4, 8e5, None),
        ])
        rendered = result.render()
        assert "t [ms]" in rendered
        assert "12.5" in rendered
        plain = Table2Result(rows=[TableRow("ResNet-20", "—", 1e5, 2e6, None)])
        assert "t [ms]" not in plain.render()
