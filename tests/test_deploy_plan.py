"""Compiled inference plans: bit-identity, arena safety, optimizations.

The headline contract (also asserted by the CI ``tests-deploy`` job under
``REPRO_DEFAULT_DTYPE=float32``): with default options, ``compile(model,
shape)`` produces a plan whose output bytes equal the eager
``Module.__call__`` output bytes for every zoo model, on every registered
numpy backend, at batch 1 and batch 8.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alf_block import ALFConv2d
from repro.core.config import ALFConfig
from repro.core.deploy import CompressedConv2d, compress_model
from repro.deploy import (
    MIN_BAND_ROWS,
    BufferArena,
    band_overrun,
    band_plan,
    compile,
    iter_bands,
)
from repro.models import available_models, bench_input_shape, build_model
from repro.nn import Tensor, no_grad
from repro.nn.backend import NumpyBackend, get_backend, use_backend
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, MaxPool2d, ReLU
from repro.nn.module import Sequential
from repro.nn.profiler import profile_inference


def _eager(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _compile_and_run(model, shape, batch, backend, seed=0, **kwargs):
    """Compile under ``backend`` and return (plan_out, eager_out, plan)."""
    backend = get_backend(backend) if isinstance(backend, str) else backend
    with use_backend(backend):
        plan = compile(model, shape, batch=batch, **kwargs)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((batch,) + shape).astype(plan.input_dtype)
        ref = _eager(model, backend.asarray(x))
        out = plan(x).data
    return out, ref, plan


# --------------------------------------------------------------------------- #
# Bit-identity across the zoo
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["numpy", "numpy32", "numpy64"])
@pytest.mark.parametrize("name", available_models())
def test_plan_bit_identical_across_zoo(name, backend):
    shape = bench_input_shape(name)
    model = build_model(name, rng=np.random.default_rng(7))
    for batch in (1, 8):
        out, ref, plan = _compile_and_run(model, shape, batch, backend)
        assert out.dtype == ref.dtype
        assert out.shape == ref.shape
        assert out.tobytes() == ref.tobytes(), (
            f"{name} batch={batch} on {backend}: plan diverged from eager")
        assert plan.stats.steps == len(plan.steps) > 0


def test_plan_rejects_wrong_shape_and_dtype():
    model = build_model("lenet", rng=np.random.default_rng(0))
    plan = compile(model, (1, 16, 16), batch=2)
    with pytest.raises(ValueError, match="input shape"):
        plan(np.zeros((1, 1, 16, 16), dtype=plan.input_dtype))
    with pytest.raises(ValueError, match="dtype"):
        wrong = "float32" if plan.input_dtype == np.float64 else "float64"
        plan(np.zeros((2, 1, 16, 16), dtype=wrong))


def test_plan_accepts_tensor_input():
    model = build_model("lenet", rng=np.random.default_rng(0))
    plan = compile(model, (1, 16, 16), batch=1)
    x = np.random.default_rng(1).standard_normal((1, 1, 16, 16))
    x = x.astype(plan.input_dtype)
    assert plan(Tensor(x.copy())).data.tobytes() == plan(x).data.tobytes()


# --------------------------------------------------------------------------- #
# Arena safety
# --------------------------------------------------------------------------- #
def test_two_plans_never_alias_buffers():
    model = build_model("plain8", rng=np.random.default_rng(0))
    plan_a = compile(model, (3, 32, 32), batch=2)
    plan_b = compile(model, (3, 32, 32), batch=2)
    ids_a = {id(b) for b in plan_a._arena._buffers}
    ids_b = {id(b) for b in plan_b._arena._buffers}
    assert ids_a and ids_b and not (ids_a & ids_b)

    x = np.random.default_rng(3).standard_normal((2, 3, 32, 32))
    x = x.astype(plan_a.input_dtype)
    out_a = plan_a(x).data
    out_b = plan_b(x).data
    assert out_a.tobytes() == out_b.tobytes()


def test_plan_calls_do_not_leak_state():
    """Reused buffers must not carry one call's data into the next."""
    model = build_model("plain8", rng=np.random.default_rng(0))
    plan = compile(model, (3, 32, 32), batch=1)
    rng = np.random.default_rng(4)
    x1 = rng.standard_normal((1, 3, 32, 32)).astype(plan.input_dtype)
    x2 = rng.standard_normal((1, 3, 32, 32)).astype(plan.input_dtype)
    first = plan(x1).data.copy()
    assert plan(x2).data.tobytes() != first.tobytes()
    assert plan(x1).data.tobytes() == first.tobytes()


def test_plan_output_is_a_copy():
    model = build_model("lenet", rng=np.random.default_rng(0))
    plan = compile(model, (1, 16, 16), batch=1)
    x = np.zeros((1, 1, 16, 16), dtype=plan.input_dtype)
    out = plan(x)
    snapshot = out.data.copy()
    plan(np.ones_like(x))  # overwrite arena buffers
    assert out.data.tobytes() == snapshot.tobytes()


def test_arena_rejects_stale_ref_release():
    """reserve→release→reserve→release must not alias two live values.

    The old check only caught a ref already sitting in the free list; a
    stale ref whose buffer had been recycled to a newer value slipped
    through and pushed the *live* value's buffer back into the pool.
    """
    arena = BufferArena()
    first = arena.reserve((4,), np.float64)
    arena.release(first)
    second = arena.reserve((2,), np.float64)
    assert second.buffer == first.buffer  # best-fit recycled the slot
    with pytest.raises(ValueError, match="re-reserved"):
        arena.release(first)  # stale handle: its buffer now backs `second`
    arena.release(second)  # the true owner still releases fine
    with pytest.raises(ValueError, match="released twice"):
        arena.release(second)


def test_arena_reuse_beats_naive_allocation():
    plan = compile(build_model("plain20", rng=np.random.default_rng(0)),
                   (3, 32, 32), batch=2)
    stats = plan.stats.arena
    assert stats.peak_bytes == plan.peak_buffer_bytes > 0
    assert stats.reuse_ratio > 1.5  # deep chains should recycle heavily


# --------------------------------------------------------------------------- #
# Streaming convolution under a memory budget
# --------------------------------------------------------------------------- #
def test_streaming_reduces_peak_memory():
    model = build_model("resnet20", rng=np.random.default_rng(0))
    full = compile(model, (3, 32, 32), batch=4)
    tight = compile(model, (3, 32, 32), batch=4, memory_budget=200_000)
    assert tight.stats.streamed_convs > 0
    assert tight.peak_buffer_bytes < full.peak_buffer_bytes

    x = np.random.default_rng(5).standard_normal((4, 3, 32, 32))
    x = x.astype(full.input_dtype)
    ref = full(x).data
    np.testing.assert_allclose(tight(x).data, ref, rtol=1e-6, atol=1e-9)


def test_band_plan_respects_budget_and_floor():
    row = 10_000
    assert band_plan(32, row, None) == 32
    assert band_plan(32, row, 40_000) == 4
    # floor: never stream below MIN_BAND_ROWS
    assert band_plan(32, row, 1) == MIN_BAND_ROWS
    bands = list(iter_bands(10, 4))
    assert bands[0] == (0, 4) and bands[-1][1] == 10
    assert sum(hi - lo for lo, hi in bands) == 10


def test_unachievable_budget_warns_and_reports_achievable_peak():
    """When the MIN_BAND_ROWS floor wins over memory_budget, the plan must
    say so (UserWarning naming the layer and the floor) and record the
    peak it actually achieves, instead of silently exceeding the budget."""
    assert band_overrun(4, 10_000, None) == 0
    assert band_overrun(4, 10_000, 50_000) == 0
    assert band_overrun(MIN_BAND_ROWS, 10_000, 1) == MIN_BAND_ROWS * 10_000 - 1
    model = build_model("resnet20", rng=np.random.default_rng(0))
    with pytest.warns(UserWarning, match="MIN_BAND_ROWS") as captured:
        plan = compile(model, (3, 32, 32), batch=4, memory_budget=1)
    assert any("not achievable for conv layer" in str(w.message)
               for w in captured)
    assert plan.stats.streamed_convs > 0
    assert plan.stats.streaming_peak_bytes > 1  # the honest peak, not the ask


# --------------------------------------------------------------------------- #
# Graph optimizations
# --------------------------------------------------------------------------- #
def test_dead_filter_elision_is_bit_exact():
    rng = np.random.default_rng(11)
    model = Sequential(
        Conv2d(3, 16, 3, padding=1, rng=rng),
        ReLU(),
        Conv2d(16, 8, 3, padding=1, rng=rng),
    )
    model.layer0.weight.data[4:12] = 0.0
    model.layer0.bias.data[4:12] = 0.0
    shape = (3, 16, 16)
    out, ref, plan = _compile_and_run(model, shape, 2, "numpy")
    assert plan.stats.elided_filters == 8
    assert out.tobytes() == ref.tobytes()
    # and disabling the pass changes nothing numerically
    out2, ref2, plan2 = _compile_and_run(model, shape, 2, "numpy",
                                         elide_dead=False)
    assert plan2.stats.elided_filters == 0
    assert out2.tobytes() == ref.tobytes()


def test_fold_bn_shrinks_plan_and_stays_close():
    model = build_model("resnet20", rng=np.random.default_rng(0))
    plain = compile(model, (3, 32, 32), batch=2)
    folded = compile(model, (3, 32, 32), batch=2, fold_bn=True)
    assert folded.stats.folded_ops > 0
    assert folded.stats.steps < plain.stats.steps

    x = np.random.default_rng(6).standard_normal((2, 3, 32, 32))
    x = x.astype(plain.input_dtype)
    # folding re-associates the BN affine into the conv weights, so the
    # tolerance scales with the working precision
    rtol = 1e-4 if plain.input_dtype == np.float32 else 1e-6
    np.testing.assert_allclose(folded(x).data, plain(x).data,
                               rtol=rtol, atol=rtol * 1e-2)


def test_bn_freeze_makes_plan_static():
    """Inference-mode BN statistics are frozen into plan constants."""
    model = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(0)),
                       BatchNorm2d(4), ReLU())
    out, ref, plan = _compile_and_run(model, (3, 8, 8), 1, "numpy")
    assert out.tobytes() == ref.tobytes()
    assert plan.stats.frozen_consts > 0


def test_compressed_conv_lowers_to_two_fused_steps():
    rng = np.random.default_rng(2)
    block = CompressedConv2d(
        code_weight=rng.standard_normal((6, 3, 3, 3)),
        expansion_weight=rng.standard_normal((10, 6, 1, 1)),
        stride=1, padding=1, bias=rng.standard_normal(10),
        sigma_inter="relu",
    )
    out, ref, plan = _compile_and_run(block, (3, 12, 12), 2, "numpy")
    conv_steps = [s for s in plan.steps if s.op_name == "conv2d"]
    assert len(conv_steps) == 2
    assert conv_steps[0].activation == "relu"
    assert conv_steps[1].activation is None
    assert out.tobytes() == ref.tobytes()


def test_compression_result_compile():
    rng = np.random.default_rng(0)
    model = Sequential(
        ALFConv2d(1, 8, 3, config=ALFConfig(), padding=1, rng=rng),
        ReLU(),
    )
    result = compress_model(model)
    plan = result.compile((1, 10, 10), batch=2)
    x = rng.standard_normal((2, 1, 10, 10)).astype(plan.input_dtype)
    assert plan(x).data.tobytes() == _eager(result.model, x).tobytes()


# --------------------------------------------------------------------------- #
# Profiler integration
# --------------------------------------------------------------------------- #
def test_profile_inference_attributes_plan_steps_to_layers():
    model = build_model("lenet", rng=np.random.default_rng(0))
    plan = compile(model, (1, 16, 16), batch=2)
    profile = profile_inference(plan, (1, 16, 16))
    assert profile.total_calls == plan.stats.steps
    layers = profile.layers
    # plan steps carry the module dot-paths the eager profiler would use
    eager = profile_inference(model, (1, 16, 16), batch=2)
    assert set(layers) <= set(eager.layers) | {""}
    assert any(name for name in layers if name)


def test_profile_inference_rejects_mismatched_plan_shape():
    model = build_model("lenet", rng=np.random.default_rng(0))
    plan = compile(model, (1, 16, 16), batch=1)
    with pytest.raises(ValueError, match="compiled for input shape"):
        profile_inference(plan, (1, 8, 8))


# --------------------------------------------------------------------------- #
# Satellite regression: pooling routes through the backend
# --------------------------------------------------------------------------- #
class _CountingBackend(NumpyBackend):
    """NumpyBackend that counts which protocol methods get exercised."""

    name = "counting"

    def __init__(self):
        super().__init__()
        self.calls = {}

    def _bump(self, key):
        self.calls[key] = self.calls.get(key, 0) + 1

    def im2col(self, *args, **kwargs):
        self._bump("im2col")
        return super().im2col(*args, **kwargs)

    def take_along_axis(self, *args, **kwargs):
        self._bump("take_along_axis")
        return super().take_along_axis(*args, **kwargs)

    def put_along_axis(self, *args, **kwargs):
        self._bump("put_along_axis")
        return super().put_along_axis(*args, **kwargs)

    def broadcast_to(self, *args, **kwargs):
        self._bump("broadcast_to")
        return super().broadcast_to(*args, **kwargs)

    def zeros(self, *args, **kwargs):
        self._bump("zeros")
        return super().zeros(*args, **kwargs)


def test_pooling_routes_through_backend():
    backend = _CountingBackend()
    rng = np.random.default_rng(0)
    model = Sequential(MaxPool2d(2), Conv2d(3, 4, 3, rng=rng))
    with use_backend(backend):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)), requires_grad=True)
        y = model(x)
        from repro.nn.functional import avg_pool2d
        z = avg_pool2d(y, 2)
        z.sum().backward()
    # forward max-pool: im2col + take_along_axis; backward: zeros + put_along_axis
    assert backend.calls.get("im2col", 0) >= 2
    assert backend.calls.get("take_along_axis", 0) >= 1
    assert backend.calls.get("put_along_axis", 0) >= 1
    # avg-pool backward spreads grads via broadcast_to
    assert backend.calls.get("broadcast_to", 0) >= 1


# --------------------------------------------------------------------------- #
# API entry point
# --------------------------------------------------------------------------- #
def test_api_compile_report_round_trip():
    from repro.api import compile_report, compress

    report = compress("lenet", method="alf", hardware_batch=2, hardware=None)
    plan = report.plan()
    assert plan.batch == 2
    assert plan.input_shape == (1, 16, 16)
    x = np.random.default_rng(9).standard_normal((2, 1, 16, 16))
    x = x.astype(plan.input_dtype)
    assert plan(x).data.tobytes() == _eager(report.model, x).tobytes()

    small = compile_report(report, batch=1)
    assert small.batch == 1


def test_api_compile_report_honors_spec_dtype():
    from repro.api import compress

    report = compress("lenet", method="alf", hardware_batch=1,
                      dtype="float32", hardware=None)
    assert report.plan().input_dtype == np.float32


# --------------------------------------------------------------------------- #
# Step specialization coverage
# --------------------------------------------------------------------------- #
def test_linear_head_lowers_to_specialized_matmul():
    # lenet covers conv -> flatten -> linear; the dense head must lower to
    # a specialized (out=) matmul step rather than a generic fallback.
    plan = compile(build_model("lenet", rng=np.random.default_rng(0)),
                   (1, 16, 16), batch=2)
    assert plan.stats.step_counts.get("matmul", 0) >= 1
    assert plan.stats.specialized > plan.stats.generic
