"""Tests for synthetic datasets, loaders and augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    CIFAR10_IMAGE_SHAPE,
    DataLoader,
    SyntheticImageDataset,
    compose,
    gaussian_noise,
    make_synthetic_dataset,
    random_crop,
    random_horizontal_flip,
    standard_cifar_augmentation,
    synthetic_cifar10,
    synthetic_imagenet,
)


class TestSyntheticDataset:
    def test_shapes_and_labels(self):
        ds = make_synthetic_dataset(60, num_classes=5, image_shape=(3, 16, 16), seed=0)
        assert ds.images.shape == (60, 3, 16, 16)
        assert ds.labels.shape == (60,)
        assert set(np.unique(ds.labels)) <= set(range(5))
        assert ds.num_classes == 5

    def test_deterministic_given_seed(self):
        a = make_synthetic_dataset(20, num_classes=3, image_shape=(1, 8, 8), seed=7)
        b = make_synthetic_dataset(20, num_classes=3, image_shape=(1, 8, 8), seed=7)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_synthetic_dataset(20, num_classes=3, image_shape=(1, 8, 8), seed=1)
        b = make_synthetic_dataset(20, num_classes=3, image_shape=(1, 8, 8), seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_classes_roughly_balanced(self):
        ds = make_synthetic_dataset(100, num_classes=4, image_shape=(1, 8, 8), seed=0)
        counts = np.bincount(ds.labels, minlength=4)
        assert counts.min() >= 20

    def test_classes_are_separable_by_simple_statistic(self):
        """Class-conditional means should differ far more across classes than noise."""
        ds = make_synthetic_dataset(200, num_classes=2, image_shape=(1, 12, 12),
                                    noise_std=0.1, seed=0)
        means = [ds.images[ds.labels == c].mean(axis=0).ravel() for c in range(2)]
        between = np.linalg.norm(means[0] - means[1])
        within = ds.images[ds.labels == 0].std()
        assert between > within * 0.5

    def test_subset_and_split(self):
        ds = make_synthetic_dataset(50, num_classes=5, image_shape=(1, 8, 8), seed=0)
        sub = ds.subset(10)
        assert len(sub) == 10
        first, second = ds.split(0.8)
        assert len(first) == 40 and len(second) == 10

    def test_image_shape_property(self):
        ds = make_synthetic_dataset(4, num_classes=2, image_shape=(3, 10, 12), seed=0)
        assert ds.image_shape == (3, 10, 12)


class TestCIFARAndImageNetStandIns:
    def test_cifar_geometry(self):
        train, test = synthetic_cifar10(train_size=40, test_size=20)
        assert train.images.shape[1:] == CIFAR10_IMAGE_SHAPE
        assert train.num_classes == 10
        assert len(train) == 40 and len(test) == 20

    def test_cifar_train_test_disjoint(self):
        train, test = synthetic_cifar10(train_size=30, test_size=10, seed=3)
        assert not np.array_equal(train.images[0], test.images[0])

    def test_imagenet_defaults_reduced(self):
        train, val = synthetic_imagenet(train_size=30, val_size=10)
        assert train.images.shape[1:] == (3, 64, 64)
        assert train.num_classes == 20


class TestDataLoader:
    def _dataset(self, n=50):
        return make_synthetic_dataset(n, num_classes=5, image_shape=(1, 8, 8), seed=0)

    def test_batch_sizes(self):
        loader = DataLoader(self._dataset(), batch_size=16)
        batches = list(loader)
        assert [len(b[1]) for b in batches] == [16, 16, 16, 2]
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(self._dataset(), batch_size=16, drop_last=True)
        assert [len(b[1]) for b in loader] == [16, 16, 16]
        assert len(loader) == 3

    def test_shuffle_changes_order_between_epochs(self):
        loader = DataLoader(self._dataset(), batch_size=50, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self):
        ds = self._dataset()
        loader = DataLoader(ds, batch_size=50, shuffle=False)
        images, labels = next(iter(loader))
        assert np.array_equal(labels, ds.labels)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._dataset(), batch_size=0)

    def test_augmentation_applied(self):
        calls = []

        def record(images, rng):
            calls.append(images.shape)
            return images

        loader = DataLoader(self._dataset(20), batch_size=10, augment=record)
        list(loader)
        assert len(calls) == 2

    def test_full_batch(self):
        ds = self._dataset(20)
        images, labels = DataLoader(ds, batch_size=4).full_batch()
        assert images.shape[0] == 20 and labels.shape[0] == 20


class TestAugmentation:
    def test_flip_preserves_shape_and_content_set(self, rng):
        images = rng.standard_normal((8, 3, 6, 6))
        flipped = random_horizontal_flip(images, rng, probability=1.0)
        assert flipped.shape == images.shape
        assert np.allclose(flipped, images[:, :, :, ::-1])

    def test_flip_probability_zero_is_identity(self, rng):
        images = rng.standard_normal((4, 1, 5, 5))
        assert np.array_equal(random_horizontal_flip(images, rng, probability=0.0), images)

    def test_random_crop_shape(self, rng):
        images = rng.standard_normal((4, 3, 8, 8))
        cropped = random_crop(images, rng, padding=2)
        assert cropped.shape == images.shape

    def test_gaussian_noise_changes_values(self, rng):
        images = np.zeros((2, 1, 4, 4))
        noisy = gaussian_noise(images, rng, std=0.1)
        assert not np.array_equal(noisy, images)

    def test_compose_applies_in_order(self, rng):
        transform = compose(lambda im, r: im + 1.0, lambda im, r: im * 2.0)
        out = transform(np.zeros((1, 1, 2, 2)), rng)
        assert np.allclose(out, 2.0)

    def test_standard_cifar_augmentation_callable(self, rng):
        transform = standard_cifar_augmentation()
        images = rng.standard_normal((4, 3, 8, 8))
        assert transform(images, rng).shape == images.shape


@given(st.integers(4, 40), st.integers(2, 6), st.integers(1, 64))
@settings(max_examples=20, deadline=None)
def test_dataset_size_and_label_range_property(samples, classes, seed):
    ds = make_synthetic_dataset(samples, num_classes=classes, image_shape=(1, 6, 6), seed=seed)
    assert len(ds) == samples
    assert ds.labels.min() >= 0 and ds.labels.max() < classes
    assert np.all(np.isfinite(ds.images))
