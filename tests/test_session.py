"""Tests for the streaming sweep API: sessions, futures, jobs and workers.

Four guarantees are pinned down:

* **Determinism** — results streamed through a :class:`SweepSession` are
  identical to the serial ``run_sweep`` reference on every executor,
  including the wire-level ``remote`` strategy and ``profile=True``
  merges.
* **Policy** — per-spec retry (``RetryPolicy``) and timeout are enforced
  by the session scheduler: retry-then-succeed, retries-exhausted and
  timeout-then-skip all resolve with the right ``attempts``/``category``.
* **Futures** — completion callbacks, progress events, ``as_completed``
  iteration and cancellation before/after scheduling behave like their
  ``concurrent.futures`` counterparts.
* **Wire formats** — ``repro-job/1`` round-trips through JSON with a
  digest-guarded dense baseline, workers speak the protocol over plain
  text streams, and every versioned payload rejects unknown schema tags.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass

import numpy as np
import pytest

import repro.api as api
from repro.api.executor import resolve_executor
from repro.data import DataLoader, make_synthetic_dataset
from repro.nn.profiler import RunProfile

INPUT_SHAPE = (1, 16, 16)  # lenet's native geometry: registry-name sweeps
EXECUTORS = ["serial", "thread", "process", "remote"]

#: Light method set for cost-only determinism runs (no agent search).
LIGHT_METHODS = ["magnitude", "lowrank", "lcnn"]


def cost_specs(**overrides):
    return [api.CompressionSpec(method=m, **overrides) for m in LIGHT_METHODS]


def sweep_table(sweep: api.SweepResult):
    """Every table-level quantity of a sweep, for exact comparison."""
    rows = [(r.method, r.cost["params"], r.cost["macs"], r.cost["ops"],
             r.accuracy, r.remaining_filter_fraction,
             r.energy_reduction, r.latency_reduction)
            for r in sweep.reports]
    return (sweep.dense.cost, sweep.dense.accuracy, rows)


def profile_calls(sweep: api.SweepResult):
    """Deterministic view of a merged sweep profile (calls, layer order)."""
    profile = sweep.combined_profile()
    assert profile is not None
    return ({op: stat.calls for op, stat in profile.ops.items()},
            list(profile.layers))


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(80, num_classes=4,
                                  image_shape=INPUT_SHAPE, seed=0)


# --------------------------------------------------------------------------- #
# Registry / environment resolution
# --------------------------------------------------------------------------- #
class TestExecutorResolution:
    def test_remote_executor_registered(self):
        assert "remote" in api.available_executors()
        assert isinstance(api.get_executor("remote"), api.RemoteExecutor)
        assert api.RemoteExecutor.wire is True

    def test_invalid_env_executor_raises_value_error(self, monkeypatch):
        monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "gpu-cluster")
        with pytest.raises(ValueError) as excinfo:
            resolve_executor(None)
        message = str(excinfo.value)
        assert api.EXECUTOR_ENV_VAR in message
        assert "gpu-cluster" in message
        for name in ("serial", "thread", "process", "remote"):
            assert name in message

    def test_valid_env_executor_still_resolves(self, monkeypatch):
        monkeypatch.setenv(api.EXECUTOR_ENV_VAR, "remote")
        assert isinstance(resolve_executor(None), api.RemoteExecutor)

    def test_explicit_unknown_name_keeps_key_error(self):
        # The env-var path gains the ValueError; programmatic lookups keep
        # the registry's KeyError contract.
        with pytest.raises(KeyError, match="unknown executor"):
            api.get_executor("gpu-cluster")

    def test_invalid_env_executor_fails_loudly_in_subprocess(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_SWEEP_EXECUTOR"] = "gpu-clutser"
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.api import resolve_executor; resolve_executor()"],
            env=env, capture_output=True, text=True)
        assert proc.returncode != 0
        assert "REPRO_SWEEP_EXECUTOR" in proc.stderr
        assert "gpu-clutser" in proc.stderr


# --------------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_defaults_mean_no_retry(self):
        policy = api.RetryPolicy().validate()
        assert policy.max_attempts == 1

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            api.RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ValueError, match="backoff"):
            api.RetryPolicy(backoff=-1.0).validate()

    def test_backoff_schedule(self):
        policy = api.RetryPolicy(max_attempts=4, backoff=0.1,
                                 backoff_multiplier=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            api.SweepSession(model="lenet", hardware=None, timeout=0.0)


# --------------------------------------------------------------------------- #
# Determinism: session streaming == serial reference, on every executor
# --------------------------------------------------------------------------- #
class TestSessionDeterminism:
    @pytest.fixture(scope="class")
    def serial_reference(self):
        return api.run_sweep(cost_specs(), model="lenet", hardware=None,
                             executor="serial")

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_cost_sweep_matches_serial(self, executor, serial_reference):
        sweep = api.run_sweep(cost_specs(), model="lenet", hardware=None,
                              executor=executor, max_workers=2)
        assert sweep_table(sweep) == sweep_table(serial_reference)
        assert sweep.methods() == LIGHT_METHODS

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_streamed_session_matches_serial(self, executor, serial_reference):
        """as_completed consumption must not disturb the spec-ordered merge."""
        with api.SweepSession(model="lenet", hardware=None,
                              executor=executor, max_workers=2) as session:
            futures = session.submit_all(cost_specs())
            seen = {f.spec.method for f in session.as_completed(futures)}
            sweep = session.result()
        assert seen == set(LIGHT_METHODS)
        assert sweep_table(sweep) == sweep_table(serial_reference)

    def test_trained_sweep_identical_across_executors(self, dataset):
        specs = [api.CompressionSpec(method="magnitude", epochs=1),
                 api.CompressionSpec(method="lowrank", epochs=1)]
        tables = []
        for executor in EXECUTORS:
            sweep = api.run_sweep(specs, model="lenet", data=dataset,
                                  hardware=None, executor=executor,
                                  max_workers=2)
            assert sweep.dense.accuracy is not None
            tables.append(sweep_table(sweep))
        assert all(table == tables[0] for table in tables)

    def test_profiled_sweep_merges_identically_across_executors(self, dataset):
        specs = [api.CompressionSpec(method="magnitude", epochs=1, profile=True),
                 api.CompressionSpec(method="lcnn", profile=True)]
        references = None
        for executor in EXECUTORS:
            sweep = api.run_sweep(specs, model="lenet", data=dataset,
                                  hardware=None, executor=executor,
                                  max_workers=2)
            calls = profile_calls(sweep)
            if references is None:
                references = calls
            assert calls == references, executor

    def test_remote_hardware_tables_match_serial(self):
        specs = [api.CompressionSpec(method="magnitude"),
                 api.CompressionSpec(method="fpgm")]
        reference = api.run_sweep(specs, model="lenet",
                                  hardware=api.EYERISS_PAPER, executor="serial")
        sweep = api.run_sweep(specs, model="lenet",
                              hardware=api.EYERISS_PAPER, executor="remote",
                              max_workers=2)
        assert sweep_table(sweep) == sweep_table(reference)
        assert sweep.reports[0].energy_reduction is not None

    def test_incremental_submits_match_batch(self, serial_reference):
        with api.SweepSession(model="lenet", hardware=None,
                              executor="serial") as session:
            for spec in cost_specs():
                session.submit(spec)
            sweep = session.result()
        assert sweep_table(sweep) == sweep_table(serial_reference)

    def test_dense_baseline_identity_is_preserved(self):
        with api.SweepSession(model="lenet", hardware=None,
                              executor="thread", max_workers=2) as session:
            session.submit_all(cost_specs())
            sweep = session.result()
        assert all(report.dense is sweep.dense for report in sweep.reports)


# --------------------------------------------------------------------------- #
# Futures: callbacks, events, as_completed, cancellation
# --------------------------------------------------------------------------- #
@pytest.fixture
def stall_method():
    """A method whose fit stalls, so pool scheduling can be observed."""
    from repro.api.adapters import MagnitudeMethod
    from repro.api.spec import MagnitudeSpec

    @dataclass
    class StallConfig(MagnitudeSpec):
        stall_seconds: float = 0.5

    @api.register_method("session-stall", StallConfig, policy="—",
                         summary="magnitude pruning behind a stall (test only)")
    class StallMethod(MagnitudeMethod):
        def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
            time.sleep(self.config.stall_seconds)
            return super().fit(train_loader, val_loader, epochs)

    yield "session-stall", StallConfig
    api.unregister_method("session-stall")


class TestFutures:
    def test_submit_returns_resolved_future_for_serial(self):
        with api.SweepSession(model="lenet", hardware=None,
                              executor="serial") as session:
            future = session.submit(api.CompressionSpec(method="magnitude"))
            assert future.done()
            assert future.category is None
            assert future.attempts == 1
            report = future.result()
        assert report.method == "magnitude"

    def test_done_callback_fires_and_late_registration_fires_immediately(self):
        calls = []
        with api.SweepSession(model="lenet", hardware=None,
                              executor="thread") as session:
            future = session.submit(api.CompressionSpec(method="magnitude"))
            future.add_done_callback(lambda f: calls.append(("during", f.index)))
            future.result()
            future.add_done_callback(lambda f: calls.append(("after", f.index)))
        assert ("during", 0) in calls
        assert ("after", 0) in calls

    def test_progress_events_follow_the_lifecycle(self):
        events = []
        with api.SweepSession(model="lenet", hardware=None,
                              executor="serial") as session:
            session.add_progress_callback(lambda e: events.append(e.kind))
            session.submit(api.CompressionSpec(method="magnitude"))
            session.result()
        assert events == ["submitted", "scheduled", "completed"]

    def test_cancel_before_scheduling(self, stall_method):
        name, config = stall_method
        with api.SweepSession(model="lenet", hardware=None,
                              executor="thread", max_workers=1) as session:
            busy = session.submit(api.CompressionSpec(
                method=name, config=config(stall_seconds=0.6), label="busy"))
            queued = session.submit(api.CompressionSpec(method="magnitude",
                                                        label="queued"))
            assert queued.cancel() is True
            assert queued.cancelled()
            assert queued.category == "cancelled"
            with pytest.raises(api.SweepCancelledError):
                queued.result()
            busy.result()  # the running shard is unaffected

    def test_cancel_after_completion_returns_false(self):
        with api.SweepSession(model="lenet", hardware=None,
                              executor="serial") as session:
            future = session.submit(api.CompressionSpec(method="magnitude"))
            assert future.done()
            assert future.cancel() is False
            assert not future.cancelled()

    def test_cancelled_future_recorded_as_skip_failure(self, stall_method):
        name, config = stall_method
        with api.SweepSession(model="lenet", hardware=None,
                              executor="thread", max_workers=1) as session:
            session.submit(api.CompressionSpec(
                method=name, config=config(stall_seconds=0.4), label="busy"))
            queued = session.submit(api.CompressionSpec(method="magnitude"))
            queued.cancel()
            sweep = session.result(on_error="skip")
        assert len(sweep.failures) == 1
        assert sweep.failures[0].category == "cancelled"
        assert sweep.failures[0].error_type == "SweepCancelledError"

    def test_submit_to_closed_session_raises(self):
        session = api.SweepSession(model="lenet", hardware=None)
        session.submit(api.CompressionSpec(method="magnitude"))
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(api.CompressionSpec(method="lowrank"))

    def test_result_without_submissions_raises(self):
        with api.SweepSession(model="lenet", hardware=None) as session:
            with pytest.raises(ValueError, match="no specs"):
                session.result()

    def test_mismatched_conventions_rejected_at_submit(self):
        with api.SweepSession(model="lenet", hardware=None) as session:
            session.submit(api.CompressionSpec(method="magnitude"))
            with pytest.raises(ValueError, match="dense baseline"):
                session.submit(api.CompressionSpec(method="fpgm",
                                                   conv_only=False))

    def test_failed_batch_registration_strands_no_futures(self):
        """A later spec failing registration must resolve the earlier ones."""
        with api.SweepSession(model="lenet", hardware=None,
                              executor="thread") as session:
            with pytest.raises(ValueError, match="dense baseline"):
                session.submit_all([
                    api.CompressionSpec(method="magnitude"),
                    api.CompressionSpec(method="fpgm", conv_only=False),
                ])
            assert session.wait(timeout=2.0)
            future = session.futures[0]
            assert future.done()
            assert future.category == "error"

    def test_session_dense_property_matches_sweep(self):
        with api.SweepSession(model="lenet", hardware=None) as session:
            session.submit(api.CompressionSpec(method="magnitude"))
            sweep = session.result()
            assert session.dense is sweep.dense


# --------------------------------------------------------------------------- #
# Retry / timeout policy (scheduler-enforced)
# --------------------------------------------------------------------------- #
@pytest.fixture
def flaky_method():
    """A method failing a configurable number of times per process."""
    from repro.api.adapters import MagnitudeMethod
    from repro.api.spec import MagnitudeSpec

    counters = {}

    @dataclass
    class FlakyConfig(MagnitudeSpec):
        fail_times: int = 1
        key: str = "default"

    @api.register_method("session-flaky", FlakyConfig, policy="—",
                         summary="fails N times, then works (test only)")
    class FlakyMethod(MagnitudeMethod):
        def fit(self, train_loader=None, val_loader=None, epochs: int = 0):
            seen = counters.get(self.config.key, 0)
            if seen < self.config.fail_times:
                counters[self.config.key] = seen + 1
                raise RuntimeError(
                    f"flaky failure {seen + 1}/{self.config.fail_times}")
            return super().fit(train_loader, val_loader, epochs)

    yield "session-flaky", FlakyConfig
    api.unregister_method("session-flaky")


class TestRetryAndTimeout:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_retry_then_succeed(self, flaky_method, executor):
        name, config = flaky_method
        reference = api.run_sweep(
            [api.CompressionSpec(method=name,
                                 config=config(fail_times=0, key=f"r0-{executor}"))],
            model="lenet", hardware=None, executor="serial")
        with api.SweepSession(model="lenet", hardware=None,
                              executor=executor) as session:
            future = session.submit(
                api.CompressionSpec(method=name,
                                    config=config(fail_times=1,
                                                  key=f"r1-{executor}")),
                retry=api.RetryPolicy(max_attempts=3, backoff=0.01))
            report = future.result()
            assert future.attempts == 2
            assert future.category is None
            sweep = session.result()
        assert report.cost == reference.reports[0].cost
        assert sweep_table(sweep)[2][0][1:] == sweep_table(reference)[2][0][1:]

    def test_retries_exhausted_resolve_as_error(self, flaky_method):
        name, config = flaky_method
        with api.SweepSession(model="lenet", hardware=None,
                              executor="thread") as session:
            future = session.submit(
                api.CompressionSpec(method=name,
                                    config=config(fail_times=10, key="spent")),
                retry=api.RetryPolicy(max_attempts=2, backoff=0.01))
            with pytest.raises(RuntimeError, match="flaky failure"):
                future.result()
            assert future.attempts == 2
            assert future.category == "error"
            sweep = session.result(on_error="skip")
        failure = sweep.failures[0]
        assert failure.attempts == 2
        assert failure.category == "error"
        assert failure.error_type == "RuntimeError"

    def test_retrying_events_are_emitted(self, flaky_method):
        name, config = flaky_method
        kinds = []
        with api.SweepSession(model="lenet", hardware=None,
                              executor="serial") as session:
            session.add_progress_callback(lambda e: kinds.append(e.kind))
            session.submit(
                api.CompressionSpec(method=name,
                                    config=config(fail_times=1, key="events")),
                retry=api.RetryPolicy(max_attempts=2))
            session.result()
        assert kinds == ["submitted", "scheduled", "retrying", "scheduled",
                         "completed"]

    def test_timeout_then_skip_keeps_healthy_shards(self, stall_method):
        name, config = stall_method
        specs = [api.CompressionSpec(method=name,
                                     config=config(stall_seconds=10.0),
                                     label="slow"),
                 api.CompressionSpec(method="magnitude")]
        with api.SweepSession(model="lenet", hardware=None,
                              executor="thread", max_workers=2) as session:
            slow = session.submit(specs[0], timeout=0.3)
            session.submit(specs[1])
            with pytest.raises(api.SweepTimeoutError, match="0.3s timeout"):
                slow.result()
            assert slow.category == "timeout"
            sweep = session.result(on_error="skip")
        assert sweep.methods() == ["magnitude"]
        failure = sweep.failures[0]
        assert failure.category == "timeout"
        assert failure.index == 0
        assert failure.error_type == "SweepTimeoutError"
        # run_sweep semantics on top of the same scheduler: on_error="raise"
        # would have re-raised; "skip" recorded the timeout as a failure.
        assert failure.attempts == 1

    def test_inline_timeout_enforced_post_hoc(self, stall_method):
        """Serial shards cannot be preempted; the deadline still binds."""
        name, config = stall_method
        with api.SweepSession(model="lenet", hardware=None,
                              executor="serial") as session:
            future = session.submit(
                api.CompressionSpec(method=name,
                                    config=config(stall_seconds=0.3)),
                timeout=0.05)
            assert future.done()
            assert future.category == "timeout"
            with pytest.raises(api.SweepTimeoutError, match="inline"):
                future.result()
            sweep = session.result(on_error="skip")
        assert sweep.failures[0].category == "timeout"

    def test_timeout_cancels_queued_shard_before_it_starts(self, stall_method):
        name, config = stall_method
        with api.SweepSession(model="lenet", hardware=None,
                              executor="thread", max_workers=1) as session:
            session.submit(api.CompressionSpec(
                method=name, config=config(stall_seconds=0.8), label="busy"))
            queued = session.submit(api.CompressionSpec(method="magnitude"),
                                    timeout=0.2)
            assert queued.exception() is not None
            assert queued.category == "timeout"
            sweep = session.result(on_error="skip")
        assert sweep.failures[0].category == "timeout"


# --------------------------------------------------------------------------- #
# repro-job/1 wire protocol + workers
# --------------------------------------------------------------------------- #
def make_job(spec=None, **overrides):
    dense = api.DenseBaseline(
        profile=None, cost={"params": 10.0, "macs": 20.0, "ops": 40.0},
        hardware=None, accuracy=0.5)
    defaults = dict(
        spec=spec or api.CompressionSpec(method="magnitude",
                                         input_shape=INPUT_SHAPE),
        model="lenet", seed=3, dense=dense, engine=None, hardware=None,
        data=api.LoaderPlan(kind="none"), job_id=7)
    defaults.update(overrides)
    return api.SweepJob(**defaults)


class TestJobWireFormat:
    def test_job_round_trips_through_json(self):
        job = make_job()
        payload = json.loads(json.dumps(job.to_dict()))
        assert payload["schema"] == api.JOB_SCHEMA
        restored = api.SweepJob.from_dict(payload)
        assert restored.spec == job.spec
        assert restored.model == "lenet"
        assert restored.seed == 3
        assert restored.job_id == 7
        assert restored.dense.cost == job.dense.cost
        assert restored.dense.accuracy == job.dense.accuracy

    def test_unknown_job_schema_rejected(self):
        payload = make_job().to_dict()
        payload["schema"] = "repro-job/9"
        with pytest.raises(ValueError, match="repro-job/1"):
            api.SweepJob.from_dict(payload)

    def test_tampered_dense_baseline_rejected_by_digest(self):
        payload = make_job().to_dict()
        payload["dense"]["cost"]["ops"] = 999.0
        with pytest.raises(ValueError, match="digest"):
            api.SweepJob.from_dict(payload)

    def test_engine_and_hardware_round_trip(self):
        from repro.api.executor import EngineState
        from repro.nn.backend import ExecutionState
        engine = EngineState(execution=ExecutionState(backend="numpy32",
                                                      dtype="float32"),
                             grad_override=False)
        job = make_job(engine=engine, hardware=api.EYERISS_PAPER)
        restored = api.SweepJob.from_dict(
            json.loads(json.dumps(job.to_dict())))
        assert restored.engine == engine
        assert restored.hardware == api.EYERISS_PAPER

    def test_synthetic_data_round_trips_exactly(self, dataset):
        train, val = dataset.split(0.8)
        plan = api.LoaderPlan(kind="synthetic", train_split=train,
                              val_split=val, seed=5)
        restored = api.LoaderPlan.from_payload(
            json.loads(json.dumps(plan.to_payload())))
        np.testing.assert_array_equal(restored.train_split.images, train.images)
        np.testing.assert_array_equal(restored.val_split.labels, val.labels)
        assert restored.seed == 5

    def test_template_loaders_have_no_wire_format(self, dataset):
        loader = DataLoader(dataset, batch_size=8)
        plan = api.LoaderPlan(kind="template", template=(loader, None))
        with pytest.raises(TypeError, match="remote"):
            plan.to_payload()

    def test_execute_job_matches_serial_pipeline(self):
        reference = api.run_sweep(
            [api.CompressionSpec(method="magnitude")], model="lenet",
            hardware=None, seed=3, executor="serial")
        dense = reference.dense
        shard_dense = api.DenseBaseline(profile=None, cost=dense.cost,
                                        hardware=None, accuracy=dense.accuracy)
        job = make_job(
            spec=reference.reports[0].spec, dense=shard_dense, seed=3)
        report = api.execute_job(
            api.SweepJob.from_dict(json.loads(json.dumps(job.to_dict()))))
        assert report.cost == reference.reports[0].cost

    def test_sweep_failure_round_trips(self):
        failure = api.SweepFailure(
            index=2, spec=api.CompressionSpec(method="magnitude"),
            error_type="RuntimeError", message="boom",
            exception=RuntimeError("boom"), attempts=3, category="timeout")
        payload = json.loads(json.dumps(failure.to_dict()))
        assert payload["schema"] == api.FAILURE_SCHEMA
        restored = api.SweepFailure.from_dict(payload)
        assert restored.index == 2
        assert restored.attempts == 3
        assert restored.category == "timeout"
        assert restored.exception is None
        assert restored.spec == failure.spec

    def test_sweep_failure_rejects_unknown_schema_and_category(self):
        failure = api.SweepFailure(
            index=0, spec=api.CompressionSpec(method="magnitude"),
            error_type="RuntimeError", message="boom")
        payload = failure.to_dict()
        bad_schema = dict(payload, schema="repro-failure/9")
        with pytest.raises(ValueError, match="repro-failure/1"):
            api.SweepFailure.from_dict(bad_schema)
        bad_category = dict(payload, category="melted")
        with pytest.raises(ValueError, match="category"):
            api.SweepFailure.from_dict(bad_category)

    def test_spec_rejects_unknown_schema_version(self):
        payload = api.CompressionSpec(method="magnitude").to_dict()
        assert payload["schema"] == "repro-spec/1"
        payload["schema"] = "repro-spec/2"
        with pytest.raises(ValueError, match="repro-spec/1"):
            api.CompressionSpec.from_dict(payload)

    def test_run_profile_rejects_unknown_schema_version(self):
        payload = RunProfile().to_dict()
        assert payload["schema"] == "repro-run-profile/1"
        payload["schema"] = "repro-run-profile/2"
        with pytest.raises(ValueError, match="repro-run-profile/1"):
            RunProfile.from_dict(payload)

    def test_report_schema_error_names_expected_tag(self):
        with pytest.raises(ValueError, match="repro-report/1"):
            api.CompressionReport.from_dict({"schema": "repro-report/9"})


class TestWorkerProtocol:
    def test_worker_round_trips_a_job_over_text_streams(self):
        reference = api.run_sweep([api.CompressionSpec(method="magnitude")],
                                  model="lenet", hardware=None, seed=3,
                                  executor="serial")
        dense = reference.dense
        job = make_job(
            spec=reference.reports[0].spec,
            dense=api.DenseBaseline(profile=None, cost=dense.cost,
                                    hardware=None, accuracy=dense.accuracy),
            seed=3)
        stdin = io.StringIO(json.dumps(job.to_dict()) + "\n"
                            + json.dumps({"op": "shutdown"}) + "\n")
        stdout = io.StringIO()
        assert api.worker_main(stdin, stdout) == 0
        lines = [line for line in stdout.getvalue().splitlines() if line]
        assert len(lines) == 1
        result = json.loads(lines[0])
        assert result["schema"] == api.JOB_RESULT_SCHEMA
        assert result["ok"] is True
        assert result["job_id"] == 7
        report = api.CompressionReport.from_dict(result["report"])
        assert report.cost == reference.reports[0].cost

    def test_worker_reports_job_failures_as_protocol_data(self):
        payload = make_job().to_dict()
        payload["model"] = "no-such-model"
        # Recompute nothing: model name is outside the digest-guarded dense
        # payload, so the job parses and fails at build time in the worker.
        stdin = io.StringIO(json.dumps(payload) + "\n")
        stdout = io.StringIO()
        api.worker_main(stdin, stdout)
        result = json.loads(stdout.getvalue().splitlines()[0])
        assert result["ok"] is False
        assert result["error"]["type"] == "KeyError"
        assert "no-such-model" in result["error"]["message"]

    def test_worker_survives_malformed_lines(self):
        stdin = io.StringIO("this is not json\n"
                            + json.dumps({"op": "shutdown"}) + "\n")
        stdout = io.StringIO()
        assert api.worker_main(stdin, stdout) == 0
        result = json.loads(stdout.getvalue().splitlines()[0])
        assert result["ok"] is False


class TestRemoteExecutor:
    def test_remote_requires_model_registry_name(self):
        from repro.models import lenet
        model = lenet(num_classes=4, in_channels=1, width=8,
                      rng=np.random.default_rng(0))
        with pytest.raises(TypeError, match="registry"):
            api.run_sweep([api.CompressionSpec(method="magnitude")],
                          model=model, hardware=None,
                          input_shape=(1, 12, 12), executor="remote")

    def test_bootstrap_failure_resolves_registered_futures(self):
        """A baseline that cannot materialize must not strand futures."""
        from repro.models import lenet
        model = lenet(num_classes=4, in_channels=1, width=8,
                      rng=np.random.default_rng(0))
        session = api.SweepSession(model=model, hardware=None,
                                   input_shape=(1, 12, 12), executor="remote")
        with session:
            with pytest.raises(TypeError, match="registry"):
                session.submit(api.CompressionSpec(method="magnitude"))
            future = session.futures[0]
            assert future.done()
            assert future.category == "error"
            assert session.wait(timeout=1.0)
            with pytest.raises(TypeError, match="registry"):
                future.result()

    def test_non_job_tasks_rejected_with_a_clear_error(self):
        """The remote transport moves repro-job/1 text, never task objects."""
        pool = api.RemoteExecutor().open(max_workers=1)
        try:
            with pytest.raises(TypeError, match="repro-job/1"):
                pool.submit(None, 0, object())
        finally:
            pool.close()
        with pytest.raises(TypeError, match="repro-job/1"):
            api.RemoteExecutor().run(None, [object()])

    def test_transport_failure_fails_the_shard_without_stranding_workers(self):
        """A worker slot must come back even when the round-trip itself dies."""
        bad = make_job().to_dict()
        bad["hardware"] = object()  # passes validation, defeats json.dumps
        good = make_job().to_dict()
        pool = api.RemoteExecutor().open(max_workers=1)
        try:
            # The failed shard discards its worker; the next shard must get
            # a fresh one instead of deadlocking on a lost capacity slot.
            first = pool.submit(None, 0, bad).result(timeout=60)
            second = pool.submit(None, 1, good).result(timeout=120)
        finally:
            pool.close()
        assert not first.ok and isinstance(first.error, TypeError)
        assert second.ok

    def test_remote_pool_spawns_workers_lazily(self):
        """A single job must not fork a whole host's worth of workers."""
        job = make_job()
        pool = api.RemoteExecutor().open(max_workers=4)
        try:
            result = pool.submit(None, 0, job.to_dict()).result(timeout=120)
            assert result.ok
            assert pool._spawned == 1
        finally:
            pool.close()

    def test_remote_rejects_template_loaders(self, dataset):
        train, val = dataset.split(0.8)
        loaders = (DataLoader(train, batch_size=8), DataLoader(val, batch_size=8))
        with pytest.raises(TypeError, match="remote"):
            api.run_sweep([api.CompressionSpec(method="magnitude")],
                          model="lenet", data=loaders, hardware=None,
                          executor="remote")

    def test_remote_worker_error_recorded_as_failure(self):
        # AMCSpec validation fails inside the worker (iterations <= 0): the
        # failure must come back as protocol data, not kill the sweep.
        specs = [api.CompressionSpec(method="magnitude"),
                 api.CompressionSpec(method="amc",
                                     config=api.AMCSpec(iterations=0))]
        sweep = api.run_sweep(specs, model="lenet", hardware=None,
                              executor="remote", on_error="skip")
        assert sweep.methods() == ["magnitude"]
        failure = sweep.failures[0]
        assert failure.index == 1
        assert failure.error_type == "RemoteJobError"
        assert "iterations" in failure.message

    def test_remote_reports_are_wire_reconstructed(self):
        sweep = api.run_sweep([api.CompressionSpec(method="magnitude")],
                              model="lenet", hardware=None, executor="remote")
        # No live model travels over the JSON protocol...
        assert sweep.reports[0].compressed.model is None
        # ...but the merge rebinds the parent's full dense baseline.
        assert sweep.reports[0].dense is sweep.dense
